//! End-to-end pipeline tests: source → PAG → every engine, checked
//! against the Andersen oracle and exact expected facts.

use dynsum::{compile, Andersen, DemandPointsTo, DynSum, NoRefine, RefinePts, StaSum};
use dynsum_workloads::corpus;

/// Resolves a variable's points-to set to sorted object labels.
fn labels(pag: &dynsum::Pag, engine: &mut dyn DemandPointsTo, var: &str) -> Vec<String> {
    let v = pag.find_var(var).unwrap_or_else(|| panic!("no var {var}"));
    let r = engine.points_to(v);
    assert!(r.resolved, "query on {var} must resolve");
    r.pts
        .objects()
        .into_iter()
        .map(|o| pag.obj(o).label.clone())
        .collect()
}

#[test]
fn boxes_keeps_containers_apart() {
    let c = compile(corpus::BOXES.source).unwrap();
    let mut engine = DynSum::new(&c.pag);
    let from_a = labels(&c.pag, &mut engine, "Main.main#x");
    let from_b = labels(&c.pag, &mut engine, "Main.main#y");
    assert_eq!(from_a.len(), 1, "x sees only the Apple: {from_a:?}");
    assert_eq!(from_b.len(), 1, "y sees only the Orange: {from_b:?}");
    assert_ne!(from_a, from_b);
}

#[test]
fn registry_globals_flow_context_insensitively() {
    let c = compile(corpus::REGISTRY.source).unwrap();
    let mut engine = DynSum::new(&c.pag);
    let got = labels(&c.pag, &mut engine, "Main.main#got");
    assert_eq!(got.len(), 1);
}

#[test]
fn shapes_dispatch_follows_receivers() {
    let c = compile(corpus::SHAPES.source).unwrap();
    let mut engine = DynSum::new(&c.pag);
    // s = new Circle(); c = s.clone2(): only Circle.clone2 runs, so the
    // result is the Circle allocation inside it.
    let cloned = labels(&c.pag, &mut engine, "Main.main#c");
    assert_eq!(
        cloned.len(),
        1,
        "on-the-fly call graph dispatches to Circle only: {cloned:?}"
    );
}

#[test]
fn every_corpus_query_is_oracle_sound() {
    for program in &corpus::ALL {
        let c = compile(program.source).unwrap();
        let oracle = Andersen::analyze(&c.pag);
        let mut dynsum = DynSum::new(&c.pag);
        for (v, info) in c.pag.vars() {
            if info.kind.is_global() {
                continue;
            }
            let r = dynsum.points_to(v);
            if !r.resolved {
                continue;
            }
            let oracle_set: std::collections::BTreeSet<_> =
                oracle.var_pts(v).iter().copied().collect();
            assert!(
                r.pts.objects().is_subset(&oracle_set),
                "{}: {} exceeded the oracle",
                program.name,
                info.name
            );
        }
    }
}

#[test]
fn all_engines_agree_on_all_corpus_variables() {
    for program in &corpus::ALL {
        let c = compile(program.source).unwrap();
        let mut dynsum = DynSum::new(&c.pag);
        let mut norefine = NoRefine::new(&c.pag);
        let mut refinepts = RefinePts::new(&c.pag);
        let mut stasum = StaSum::precompute(&c.pag);
        for (v, info) in c.pag.vars() {
            let rd = dynsum.points_to(v);
            let rn = norefine.points_to(v);
            let rr = refinepts.points_to(v);
            let rs = stasum.points_to(v);
            if rd.resolved && rn.resolved && rr.resolved && rs.resolved {
                let d = rd.pts.objects();
                assert_eq!(d, rn.pts.objects(), "{}: {} D!=N", program.name, info.name);
                assert_eq!(d, rr.pts.objects(), "{}: {} D!=R", program.name, info.name);
                assert_eq!(d, rs.pts.objects(), "{}: {} D!=S", program.name, info.name);
            }
            // Conservative aborts must coincide between the two
            // full-precision engines built on the same machinery.
            assert_eq!(
                rd.resolved, rn.resolved,
                "{}: {} resolution mismatch",
                program.name, info.name
            );
        }
    }
}

#[test]
fn exported_graphs_answer_identically() {
    for program in &corpus::ALL {
        let c = compile(program.source).unwrap();
        let text = dynsum::pag::text::write_pag(&c.pag);
        let back =
            dynsum::pag::text::parse_pag(&text).unwrap_or_else(|e| panic!("{}: {e}", program.name));
        let mut e1 = DynSum::new(&c.pag);
        let mut e2 = DynSum::new(&back);
        for (v, info) in c.pag.vars() {
            let v2 = back.find_var(&info.name).expect("var survives export");
            let r1 = e1.points_to(v);
            let r2 = e2.points_to(v2);
            assert_eq!(r1.resolved, r2.resolved);
            // Object identity is preserved by label.
            let l1: Vec<_> = r1
                .pts
                .objects()
                .into_iter()
                .map(|o| c.pag.obj(o).label.clone())
                .collect();
            let l2: Vec<_> = r2
                .pts
                .objects()
                .into_iter()
                .map(|o| back.obj(o).label.clone())
                .collect();
            assert_eq!(l1, l2, "{}: {}", program.name, info.name);
        }
    }
}

#[test]
fn context_insensitive_mode_matches_andersen_on_corpus() {
    for program in &corpus::ALL {
        let c = compile(program.source).unwrap();
        let oracle = Andersen::analyze(&c.pag);
        let mut ci = NoRefine::context_insensitive(&c.pag);
        for (v, info) in c.pag.vars() {
            let r = ci.points_to(v);
            if !r.resolved {
                continue;
            }
            let oracle_set: std::collections::BTreeSet<_> =
                oracle.var_pts(v).iter().copied().collect();
            assert_eq!(
                r.pts.objects(),
                oracle_set,
                "{}: {} CI-demand != Andersen",
                program.name,
                info.name
            );
        }
    }
}
