//! Divergence-corpus regression suite.
//!
//! Every `*.workload` file under `tests/divergence_corpus/` is a
//! minimal reproducer that the differential fuzzer (`fuzz_engines`)
//! once reduced from a real engine divergence, checked in together
//! with the engine fix. The test is data-driven: it re-runs the full
//! observe/judge pipeline on each file under the engine configuration
//! recorded in the file's header comments and asserts the divergence
//! stays fixed. Dropping a new reproducer into the directory is all it
//! takes to extend the suite — no code change required.

use std::fs;
use std::path::PathBuf;

use dynsum::workloads::fuzz::{judge, observe, ObserveOptions};
use dynsum::workloads::wire::parse_workload;
use dynsum_core::EngineConfig;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("divergence_corpus")
}

/// Reconstructs the engine configuration from the artifact's
/// `# engine config: key=value ...` header line, starting from the
/// defaults for any key the header does not mention.
fn config_from_header(text: &str) -> EngineConfig {
    let mut config = EngineConfig::default();
    let Some(line) = text
        .lines()
        .find_map(|l| l.trim().strip_prefix("# engine config:"))
    else {
        return config;
    };
    for pair in line.split_whitespace() {
        let Some((key, value)) = pair.split_once('=') else {
            continue;
        };
        match key {
            "budget" => config.budget = value.parse().expect("budget"),
            "max_field_depth" => config.max_field_depth = value.parse().expect("max_field_depth"),
            "max_ctx_depth" => config.max_ctx_depth = value.parse().expect("max_ctx_depth"),
            "max_refinements" => config.max_refinements = value.parse().expect("max_refinements"),
            "context_sensitive" => {
                config.context_sensitive = value.parse().expect("context_sensitive")
            }
            "max_cached_summaries" => {
                config.max_cached_summaries = match value {
                    "None" => None,
                    v => Some(
                        v.strip_prefix("Some(")
                            .and_then(|v| v.strip_suffix(')'))
                            .expect("max_cached_summaries")
                            .parse()
                            .expect("max_cached_summaries"),
                    ),
                }
            }
            other => panic!("unknown engine-config key `{other}` in corpus header"),
        }
    }
    config
}

#[test]
fn corpus_is_nonempty_and_every_reproducer_stays_fixed() {
    let dir = corpus_dir();
    let mut checked = 0usize;
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "workload"))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = fs::read_to_string(&path).expect("read reproducer");
        let config = config_from_header(&text);
        let w = parse_workload(&text)
            .unwrap_or_else(|e| panic!("{name}: reproducer no longer parses: {e}"));
        let divergences = judge(&observe(&w, &config, &ObserveOptions::default()));
        assert!(
            divergences.is_empty(),
            "{name}: divergence regressed:\n{}",
            divergences
                .iter()
                .map(|d| format!("  {d}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        checked += 1;
    }
    assert!(
        checked >= 2,
        "corpus must keep at least the REFINEPTS cap-exhaustion reproducers, found {checked}"
    );
}

#[test]
fn corpus_headers_round_trip_the_degenerate_config() {
    // The checked-in REFINEPTS reproducers came from the `degenerate`
    // fuzz regime; losing the header (or its parse) would silently turn
    // the regression test into a default-config no-op.
    let text = fs::read_to_string(corpus_dir().join("refinepts-cap-exhaustion-soundness.workload"))
        .expect("corpus file");
    let config = config_from_header(&text);
    assert_eq!(config.max_refinements, 2);
    assert_eq!(config.budget, 2_000);
    assert_eq!(config.max_cached_summaries, Some(0));
}
