//! Fault isolation of the `Session` batch path: a panicking query is
//! surfaced per-query while the rest of the batch completes, and the
//! fault leaves no trace in the session — every follow-up batch is
//! byte-identical to one on a clean cold session, at 1/2/4 threads
//! (the deterministic-reuse integrity invariant), and in the
//! single-thread case where chunk absorption order is pinned, the
//! snapshot bytes themselves are identical to a session that never saw
//! the poisoned query.

use dynsum::{
    BatchControl, ClientKind, EngineConfig, EngineKind, FaultPlan, Outcome, QueryResult, Session,
    SessionQuery,
};
use dynsum_clients::queries_for;
use dynsum_workloads::{generate, GeneratorOptions, Workload, PROFILES};
use proptest::prelude::*;

fn fingerprints(rs: &[QueryResult]) -> Vec<u64> {
    rs.iter().map(QueryResult::fingerprint).collect()
}

fn null_deref_batch(w: &Workload) -> Vec<SessionQuery<'_>> {
    queries_for(ClientKind::NullDeref, &w.info)
        .iter()
        .map(|q| SessionQuery::new(q.var))
        .collect()
}

/// One poisoned query per batch: the panic is reported exactly at its
/// index, every other query answers as on a clean cold session, and a
/// follow-up batch on the poisoned session is byte-identical to the
/// cold reference.
fn check_panic_isolation(w: &Workload, poison: usize) {
    let config = EngineConfig::default();
    let batch = null_deref_batch(w);
    if batch.is_empty() {
        return;
    }
    let poison = poison % batch.len();

    let mut cold = Session::with_config(&w.pag, EngineKind::DynSum, config);
    let reference = fingerprints(&cold.run_batch(&batch, 1));

    let mut plan = FaultPlan::default();
    plan.panic_queries.insert(poison);
    let control = BatchControl {
        faults: Some(plan),
        ..BatchControl::default()
    };

    for threads in [1usize, 2, 4] {
        let mut session = Session::with_config(&w.pag, EngineKind::DynSum, config);
        let results = session.run_batch_with(&batch, threads, &control);
        assert_eq!(results.len(), batch.len());
        for (i, r) in results.iter().enumerate() {
            if i == poison {
                assert_eq!(r.outcome, Outcome::Panicked, "threads={threads}");
                assert!(!r.resolved);
            } else {
                assert_eq!(
                    r.fingerprint(),
                    reference[i],
                    "{}: threads={threads}, un-poisoned query {i} disturbed by the panic",
                    w.name
                );
            }
        }
        assert_eq!(session.health().query_panics, 1);

        let after = fingerprints(&session.run_batch(&batch, threads));
        assert_eq!(
            after, reference,
            "{}: threads={threads}, the poisoned batch left a trace in the session",
            w.name
        );
    }
}

/// Cancel and deadline fuses must unwind as cleanly as panics: tripped
/// queries report their outcome, untouched queries answer as on a cold
/// session, and the session stays byte-identical afterwards.
fn check_fuse_isolation(w: &Workload, fused: usize, fuse_at: u64) {
    let config = EngineConfig::default();
    let batch = null_deref_batch(w);
    if batch.is_empty() {
        return;
    }
    let fused = fused % batch.len();

    let mut cold = Session::with_config(&w.pag, EngineKind::DynSum, config);
    let reference = fingerprints(&cold.run_batch(&batch, 1));

    let mut plan = FaultPlan::default();
    plan.cancel_after.insert(fused, fuse_at);
    let control = BatchControl {
        faults: Some(plan),
        ..BatchControl::default()
    };

    for threads in [1usize, 2, 4] {
        let mut session = Session::with_config(&w.pag, EngineKind::DynSum, config);
        let results = session.run_batch_with(&batch, threads, &control);
        for (i, r) in results.iter().enumerate() {
            if i == fused {
                // Either the fuse tripped or the query finished first —
                // in which case it must match the reference exactly.
                assert!(
                    r.outcome == Outcome::Cancelled || r.fingerprint() == reference[i],
                    "{}: threads={threads}, fused query neither cancelled nor clean",
                    w.name
                );
            } else {
                assert_eq!(r.fingerprint(), reference[i], "threads={threads}");
            }
        }
        let after = fingerprints(&session.run_batch(&batch, threads));
        assert_eq!(
            after, reference,
            "{}: threads={threads}, the cancelled batch left a trace in the session",
            w.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn a_panicking_query_is_isolated_on_generated_graphs(
        seed in 0u64..400,
        pidx in 0usize..PROFILES.len(),
        poison in 0usize..64,
    ) {
        let w = generate(
            &PROFILES[pidx],
            &GeneratorOptions { scale: 0.005, seed, ..GeneratorOptions::default() },
        );
        check_panic_isolation(&w, poison);
    }

    #[test]
    fn a_tripped_cancel_fuse_is_isolated_on_generated_graphs(
        seed in 400u64..800,
        pidx in 0usize..PROFILES.len(),
        fused in 0usize..64,
        fuse_at in 0u64..256,
    ) {
        let w = generate(
            &PROFILES[pidx],
            &GeneratorOptions { scale: 0.005, seed, ..GeneratorOptions::default() },
        );
        check_fuse_isolation(&w, fused, fuse_at);
    }
}

/// The strongest form of "no trace": with the poisoned query first in a
/// single-thread batch, the discarded worker scratch contains nothing,
/// so the session's snapshot bytes must equal those of a session that
/// never saw the poisoned query at all.
#[test]
fn a_leading_poisoned_query_leaves_snapshot_bytes_identical() {
    let w = generate(
        dynsum_workloads::BenchmarkProfile::find("bloat").unwrap(),
        &GeneratorOptions {
            scale: 0.01,
            seed: 11,
            ..GeneratorOptions::default()
        },
    );
    let batch = null_deref_batch(&w);
    assert!(batch.len() >= 2, "fixture needs a multi-query batch");

    let mut plan = FaultPlan::default();
    plan.panic_queries.insert(0);
    let control = BatchControl {
        faults: Some(plan),
        ..BatchControl::default()
    };
    let mut poisoned = Session::new(&w.pag, EngineKind::DynSum);
    let results = poisoned.run_batch_with(&batch, 1, &control);
    assert_eq!(results[0].outcome, Outcome::Panicked);

    let mut clean = Session::new(&w.pag, EngineKind::DynSum);
    clean.run_batch(&batch[1..], 1);

    let (mut a, mut b) = (Vec::new(), Vec::new());
    poisoned.save_snapshot(&mut a).unwrap();
    clean.save_snapshot(&mut b).unwrap();
    assert_eq!(a, b, "poisoned session's cache differs from never-saw-it");
}
