//! Robustness properties of the persistent snapshot subsystem
//! (`Session::save_snapshot` / `Session::load_snapshot`) on generated
//! workloads: a warm restart is outcome-invisible (byte-identical
//! per-query results at 1/2/4 threads), every truncated / corrupted /
//! version-bumped / PAG-mismatched image degrades to a clean cold start
//! without panicking, and saving after `invalidate_method` never
//! resurrects fenced summaries.

use dynsum::cfl::CtxId;
use dynsum::pag::ObjId;
use dynsum::{
    ClientKind, DemandPointsTo, DynSum, EngineConfig, EngineKind, QueryResult, Session,
    SessionQuery, SnapshotReject,
};
use dynsum_clients::queries_for;
use dynsum_workloads::{generate, BenchmarkProfile, GeneratorOptions, PROFILES};
use proptest::prelude::*;

/// The byte-level identity the snapshot guarantees: resolution flag plus
/// the sorted `(object, allocation context)` pairs.
fn fingerprint(r: &QueryResult) -> (bool, Vec<(ObjId, CtxId)>) {
    (r.resolved, r.pts.iter().collect())
}

/// Serves half the stream on a fresh session and returns its snapshot.
fn snapshot_after_half_stream(
    w: &dynsum_workloads::Workload,
    batch: &[SessionQuery<'_>],
    config: EngineConfig,
) -> Vec<u8> {
    let mut donor = Session::with_config(&w.pag, EngineKind::DynSum, config);
    donor.run_batch(&batch[..batch.len() / 2], 1);
    let mut bytes = Vec::new();
    donor.save_snapshot(&mut bytes).expect("Vec write");
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The outcome-invisibility claim: (save → restart → load → run) at
    /// 1/2/4 threads answers every query byte-identically to a cold
    /// sequential run that never saw a snapshot.
    #[test]
    fn warm_restart_is_outcome_invisible(
        seed in 0u64..500,
        pidx in 0usize..PROFILES.len(),
    ) {
        let w = generate(&PROFILES[pidx], &GeneratorOptions { scale: 0.01, seed, ..GeneratorOptions::default() });
        let queries = queries_for(ClientKind::NullDeref, &w.info);
        let cold: Vec<_> = {
            let mut engine = DynSum::new(&w.pag);
            queries.iter().map(|q| fingerprint(&engine.points_to(q.var))).collect()
        };
        let batch: Vec<SessionQuery<'_>> =
            queries.iter().map(|q| SessionQuery::new(q.var)).collect();
        let config = EngineConfig::default();
        let bytes = snapshot_after_half_stream(&w, &batch, config);
        for threads in [1usize, 2, 4] {
            let (mut session, load) =
                Session::load_snapshot(&bytes[..], &w.pag, EngineKind::DynSum, config);
            prop_assert!(load.is_warm(), "{}: self-saved snapshot rejected: {:?}", w.name, load);
            let results = session.run_batch(&batch, threads);
            prop_assert_eq!(results.len(), cold.len());
            for (i, (r, want)) in results.iter().zip(&cold).enumerate() {
                prop_assert_eq!(
                    &fingerprint(r),
                    want,
                    "{}: threads={} diverged on query {} after warm restart",
                    w.name,
                    threads,
                    i
                );
            }
        }
    }

    /// No byte stream can panic the loader or leak a partial restore:
    /// arbitrary truncations and flips of a genuine snapshot either load
    /// it intact (unreached by these mutations) or produce a working
    /// cold session.
    #[test]
    fn mutated_snapshots_degrade_to_working_cold_starts(
        seed in 0u64..500,
        cut_pm in 0u32..1000,
        flip_pm in 0u32..1000,
        flip_bits in 1u8..=255,
    ) {
        let w = generate(
            BenchmarkProfile::find("soot-c").unwrap(),
            &GeneratorOptions { scale: 0.01, seed, ..GeneratorOptions::default() },
        );
        let queries = queries_for(ClientKind::NullDeref, &w.info);
        let batch: Vec<SessionQuery<'_>> =
            queries.iter().map(|q| SessionQuery::new(q.var)).collect();
        let config = EngineConfig::default();
        let bytes = snapshot_after_half_stream(&w, &batch, config);

        let truncated = &bytes[..bytes.len() * cut_pm as usize / 1000];
        let (mut session, load) =
            Session::load_snapshot(truncated, &w.pag, EngineKind::DynSum, config);
        prop_assert!(!load.is_warm());
        prop_assert_eq!(session.summary_count(), 0);
        prop_assert_eq!(session.run_batch(&batch, 2).len(), batch.len());

        let mut flipped = bytes.clone();
        let at = (flipped.len() * flip_pm as usize / 1000).min(flipped.len() - 1);
        flipped[at] ^= flip_bits;
        let (mut session, load) =
            Session::load_snapshot(&flipped[..], &w.pag, EngineKind::DynSum, config);
        prop_assert!(!load.is_warm(), "flip of {flip_bits:#x} at byte {at} accepted");
        prop_assert_eq!(session.summary_count(), 0);
        prop_assert_eq!(session.run_batch(&batch, 2).len(), batch.len());
    }
}

/// A snapshot saved against one program must not load against another —
/// and the reason must say so.
#[test]
fn snapshots_do_not_cross_programs_or_versions() {
    let config = EngineConfig::default();
    let w1 = generate(
        BenchmarkProfile::find("soot-c").unwrap(),
        &GeneratorOptions {
            scale: 0.01,
            seed: 1,
            ..GeneratorOptions::default()
        },
    );
    let w2 = generate(
        BenchmarkProfile::find("soot-c").unwrap(),
        &GeneratorOptions {
            scale: 0.01,
            seed: 2,
            ..GeneratorOptions::default()
        },
    );
    let q1 = queries_for(ClientKind::NullDeref, &w1.info);
    let batch: Vec<SessionQuery<'_>> = q1.iter().map(|q| SessionQuery::new(q.var)).collect();
    let bytes = snapshot_after_half_stream(&w1, &batch, config);

    // Different program: rejected by fingerprint, session still works.
    let (mut cold, load) = Session::load_snapshot(&bytes[..], &w2.pag, EngineKind::DynSum, config);
    assert_eq!(load.reject(), Some(SnapshotReject::PagMismatch));
    let q2 = queries_for(ClientKind::NullDeref, &w2.info);
    let batch2: Vec<SessionQuery<'_>> = q2.iter().map(|q| SessionQuery::new(q.var)).collect();
    assert_eq!(cold.run_batch(&batch2, 2).len(), batch2.len());

    // Future format version: rejected, not misparsed.
    let mut bumped = bytes.clone();
    bumped[8..12].copy_from_slice(&(dynsum::SNAPSHOT_VERSION + 1).to_le_bytes());
    let (_, load) = Session::load_snapshot(&bumped[..], &w1.pag, EngineKind::DynSum, config);
    assert_eq!(
        load.reject(),
        Some(SnapshotReject::UnsupportedVersion {
            found: dynsum::SNAPSHOT_VERSION + 1
        })
    );

    // Different semantics: rejected by config digest.
    let other = EngineConfig {
        context_sensitive: false,
        ..config
    };
    let (_, load) = Session::load_snapshot(&bytes[..], &w1.pag, EngineKind::DynSum, other);
    assert_eq!(load.reject(), Some(SnapshotReject::ConfigMismatch));
}

/// Fencing survives persistence: a method invalidated before the save
/// has no summaries in the image, the restored session keeps its epoch
/// fence, and a pre-save stale shard still cannot resurrect them after
/// the restart.
#[test]
fn save_after_invalidation_never_resurrects_fenced_summaries() {
    let w = generate(
        BenchmarkProfile::find("soot-c").unwrap(),
        &GeneratorOptions {
            scale: 0.02,
            seed: 7,
            ..GeneratorOptions::default()
        },
    );
    let queries = queries_for(ClientKind::NullDeref, &w.info);
    let batch: Vec<SessionQuery<'_>> = queries.iter().map(|q| SessionQuery::new(q.var)).collect();
    let config = EngineConfig::default();

    let mut donor = Session::with_config(&w.pag, EngineKind::DynSum, config);
    // Detach a shard computed before the invalidation (the stale-state
    // hazard a long-lived process carries across an edit).
    let stale = {
        let mut h = donor.handle();
        for q in &queries {
            h.points_to(q.var);
        }
        h.into_summaries()
    };
    donor.run_batch(&batch, 1);
    let method = w
        .pag
        .methods()
        .map(|(m, _)| m)
        .find(|&m| {
            let mut probe = Session::with_config(&w.pag, EngineKind::DynSum, config);
            probe.run_batch(&batch, 1);
            probe.invalidate_method(m) > 0
        })
        .expect("some method has summaries");
    assert!(donor.invalidate_method(method) > 0);

    let mut bytes = Vec::new();
    donor.save_snapshot(&mut bytes).expect("Vec write");
    let (mut restored, load) =
        Session::load_snapshot(&bytes[..], &w.pag, EngineKind::DynSum, config);
    assert!(load.is_warm());
    // Nothing of the fenced method came back with the image...
    assert_eq!(restored.invalidate_method(method), 0);
    // ...and the restored epoch fence still rejects the pre-save shard's
    // entries for it (invalidate_method above bumped the epoch again,
    // which only widens the fence the snapshot already carried).
    let before = restored.stale_rejections();
    restored.absorb(stale);
    assert!(
        restored.stale_rejections() > before,
        "stale shard entries for the invalidated method must be fenced"
    );
    assert_eq!(restored.invalidate_method(method), 0);
    // Queries recompute the method correctly after all of that.
    let results = restored.run_batch(&batch, 2);
    let cold: Vec<_> = {
        let mut engine = DynSum::new(&w.pag);
        queries
            .iter()
            .map(|q| fingerprint(&engine.points_to(q.var)))
            .collect()
    };
    for (r, want) in results.iter().zip(&cold) {
        assert_eq!(&fingerprint(r), want);
    }
}
