//! Integration suite for the daemon protocol: every frame type
//! round-trips, every malformed/truncated/oversized input is answered
//! with a structured error frame — never a panic, never a dropped
//! connection — and the round-robin scheduler keeps a one-query client
//! ahead of a neighbour's bulk batch.

use dynsum::service::json::{parse, Json};
use dynsum::service::{Daemon, ServedWorkload, ServiceConfig, MAX_BATCH_VARS, MAX_FRAME_BYTES};
use dynsum::workloads::{motivating_pag, Motivating};
use dynsum::{EngineKind, Session};

fn daemon_over(m: &Motivating, config: ServiceConfig) -> Daemon<'_> {
    Daemon::new(
        vec![ServedWorkload {
            name: "motivating",
            pag: &m.pag,
        }],
        config,
    )
}

/// Ingests one frame and drains the scheduler, returning every response
/// frame (immediate and scheduled) parsed as JSON.
fn drive(daemon: &mut Daemon<'_>, client: u64, line: &str) -> Vec<Json> {
    let mut frames: Vec<String> = daemon.ingest(client, line);
    frames.extend(
        daemon
            .drain()
            .into_iter()
            .filter(|(c, _)| *c == client)
            .map(|(_, f)| f),
    );
    frames
        .iter()
        .map(|f| parse(f).expect("daemon emits valid JSON"))
        .collect()
}

fn is_ok(frame: &Json) -> bool {
    frame.get("ok").and_then(Json::as_bool) == Some(true)
}

fn error_code(frame: &Json) -> &str {
    assert_eq!(
        frame.get("ok").and_then(Json::as_bool),
        Some(false),
        "expected an error frame: {frame:?}"
    );
    frame
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .expect("error frames carry a code")
}

fn hello(daemon: &mut Daemon<'_>, client: u64) {
    let frames = drive(
        daemon,
        client,
        r#"{"op":"hello","id":1,"name":"t","engine":"dynsum"}"#,
    );
    assert!(is_ok(&frames[0]), "hello failed: {:?}", frames[0]);
}

#[test]
fn every_op_round_trips() {
    let m = motivating_pag();
    let dir = std::env::temp_dir().join(format!("dynsum-svc-proto-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut daemon = daemon_over(
        &m,
        ServiceConfig {
            snapshot_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        },
    );
    let c = daemon.connect();

    // hello: negotiates and reports session identity.
    let frames = drive(
        &mut daemon,
        c,
        r#"{"op":"hello","id":1,"name":"suite","engine":"dynsum","workload":"motivating","config":{"budget":50000}}"#,
    );
    assert!(is_ok(&frames[0]));
    assert_eq!(
        frames[0].get("engine").and_then(Json::as_str),
        Some("dynsum")
    );
    assert_eq!(frames[0].get("warm").and_then(Json::as_bool), Some(false));

    // query, by raw id and by the same semantics a direct Session run
    // gives (the byte-identity surface).
    let frames = drive(
        &mut daemon,
        c,
        &format!(r#"{{"op":"query","id":2,"var":{}}}"#, m.s1.as_raw()),
    );
    let result = frames[0].get("result").expect("query result");
    assert_eq!(
        result.get("outcome").and_then(Json::as_str),
        Some("resolved")
    );
    let wire_fp = result
        .get("fingerprint")
        .and_then(Json::as_str)
        .expect("fingerprint")
        .to_owned();
    let mut reference = Session::new(&m.pag, EngineKind::DynSum);
    let direct = reference.run_batch_vars(&[m.s1], 1);
    assert_eq!(
        wire_fp,
        format!("{:016x}", direct[0].fingerprint()),
        "daemon answers must be byte-identical to a direct session run"
    );

    // batch: results in input order.
    let frames = drive(
        &mut daemon,
        c,
        &format!(
            r#"{{"op":"batch","id":3,"vars":[{},{}]}}"#,
            m.s2.as_raw(),
            m.s1.as_raw(),
        ),
    );
    let results = frames[0]
        .get("results")
        .and_then(Json::as_arr)
        .expect("batch results");
    assert_eq!(results.len(), 2);
    assert_eq!(
        results[1].get("fingerprint").and_then(Json::as_str),
        Some(wire_fp.as_str()),
        "second batch slot is s1 again"
    );

    // cancel: unknown target is acknowledged as inactive.
    let frames = drive(&mut daemon, c, r#"{"op":"cancel","id":4,"target":999}"#);
    assert!(is_ok(&frames[0]));
    assert_eq!(frames[0].get("active").and_then(Json::as_bool), Some(false));

    // invalidate_method: a real method id is accepted.
    let frames = drive(
        &mut daemon,
        c,
        r#"{"op":"invalidate_method","id":5,"method":0}"#,
    );
    assert!(is_ok(&frames[0]));
    assert!(frames[0].get("evicted").and_then(Json::as_u64).is_some());

    // health: daemon, client, and session sections all present.
    let frames = drive(&mut daemon, c, r#"{"op":"health","id":6}"#);
    let health = &frames[0];
    assert!(is_ok(health));
    assert_eq!(
        health
            .get("daemon")
            .and_then(|d| d.get("sessions"))
            .and_then(Json::as_u64),
        Some(1)
    );
    assert!(
        health
            .get("client")
            .and_then(|cl| cl.get("queries"))
            .and_then(Json::as_u64)
            .expect("client counters")
            >= 3
    );
    assert!(health
        .get("session")
        .and_then(|s| s.get("engine"))
        .is_some());

    // save_snapshot: writes the keyed file into the directory.
    let frames = drive(&mut daemon, c, r#"{"op":"save_snapshot","id":7}"#);
    assert!(is_ok(&frames[0]));
    let path = frames[0]
        .get("path")
        .and_then(Json::as_str)
        .expect("snapshot path");
    assert!(std::path::Path::new(path).exists());

    // shutdown: acknowledged, and every later op is refused.
    let frames = drive(&mut daemon, c, r#"{"op":"shutdown","id":8}"#);
    assert!(is_ok(&frames[0]));
    assert!(daemon.shutdown_requested());
    let frames = drive(&mut daemon, c, r#"{"op":"health","id":9}"#);
    assert_eq!(error_code(&frames[0]), "shutting-down");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_truncated_and_oversized_frames_get_structured_errors() {
    let m = motivating_pag();
    let mut daemon = daemon_over(&m, ServiceConfig::default());
    let c = daemon.connect();
    hello(&mut daemon, c);

    let big_batch = format!(
        r#"{{"op":"batch","id":40,"vars":[{}]}}"#,
        vec!["1"; MAX_BATCH_VARS + 1].join(",")
    );
    let deep = format!(
        r#"{{"op":"query","id":41,"var":{}{}}}"#,
        "[".repeat(40),
        "]".repeat(40)
    );
    let oversized = " ".repeat(MAX_FRAME_BYTES + 1);
    let cases: Vec<(&str, &str)> = vec![
        ("", "parse"),
        ("{", "parse"),
        ("not json at all", "parse"),
        (r#"{"op":"query","id":42,"va"#, "parse"),
        (r#"{"op":"health","id":1,"id":2}"#, "parse"),
        ("[1,2,3]", "bad-frame"),
        ("{}", "bad-frame"),
        (r#"{"op":"query"}"#, "bad-frame"),
        (r#"{"op":"query","id":43}"#, "bad-frame"),
        (r#"{"op":"query","id":44,"var":true}"#, "bad-frame"),
        (r#"{"op":"query","id":45,"var":1,"extra":1}"#, "bad-frame"),
        (r#"{"op":"batch","id":46,"vars":[]}"#, "bad-frame"),
        (r#"{"op":"cancel","id":47}"#, "bad-frame"),
        (r#"{"op":"warp","id":48}"#, "unknown-op"),
        (r#"{"op":"hello","id":49,"engine":"zoom"}"#, "bad-config"),
        (
            r#"{"op":"hello","id":50,"config":{"nope":1}}"#,
            "bad-config",
        ),
        (
            r#"{"op":"hello","id":51,"config":{"deterministic_reuse":false}}"#,
            "bad-config",
        ),
        (r#"{"op":"query","id":53,"var":999999}"#, "unknown-var"),
        (
            r#"{"op":"query","id":54,"var":"no.such#var"}"#,
            "unknown-var",
        ),
        (
            r#"{"op":"invalidate_method","id":55,"method":999999}"#,
            "unknown-method",
        ),
        (big_batch.as_str(), "bad-frame"),
        (deep.as_str(), "parse"),
        (oversized.as_str(), "oversized"),
    ];
    for (line, want) in cases {
        let frames = drive(&mut daemon, c, line);
        assert_eq!(
            frames.len(),
            1,
            "exactly one error frame for {:?}",
            &line[..line.len().min(60)]
        );
        assert_eq!(
            error_code(&frames[0]),
            want,
            "wrong code for {:?}",
            &line[..line.len().min(60)]
        );
        // The connection survives: a well-formed query still answers.
        let frames = drive(
            &mut daemon,
            c,
            &format!(r#"{{"op":"query","id":99,"var":{}}}"#, m.s1.as_raw()),
        );
        assert!(
            is_ok(&frames[0]),
            "connection died after {:?}",
            &line[..line.len().min(60)]
        );
    }
}

#[test]
fn need_hello_duplicate_id_and_budget_exhaustion() {
    let m = motivating_pag();
    let mut daemon = daemon_over(&m, ServiceConfig::default());
    let c = daemon.connect();

    // Querying before hello is refused, and the connection stays up.
    let frames = drive(&mut daemon, c, r#"{"op":"query","id":1,"var":0}"#);
    assert_eq!(error_code(&frames[0]), "need-hello");
    let frames = drive(&mut daemon, c, r#"{"op":"save_snapshot","id":2}"#);
    assert_eq!(error_code(&frames[0]), "need-hello");

    // Config values of the wrong type are a bad-config error (the key
    // set is validated at parse time, the value types at apply time).
    let frames = drive(
        &mut daemon,
        c,
        r#"{"op":"hello","id":0,"config":{"budget":true}}"#,
    );
    assert_eq!(error_code(&frames[0]), "bad-config");
    hello(&mut daemon, c);

    // A second hello on the same connection is refused.
    let frames = drive(&mut daemon, c, r#"{"op":"hello","id":3}"#);
    assert_eq!(error_code(&frames[0]), "bad-frame");

    // Reusing an id that is still in flight is refused. Ingest both
    // frames before draining so the first is genuinely in flight.
    let line = format!(r#"{{"op":"query","id":7,"var":{}}}"#, m.s1.as_raw());
    assert!(daemon.ingest(c, &line).is_empty());
    let dup = daemon.ingest(c, &line);
    assert_eq!(error_code(&parse(&dup[0]).unwrap()), "duplicate-id");
    let finished = daemon.drain();
    assert_eq!(finished.len(), 1, "the original id 7 still answers");

    // save_snapshot without a configured directory is a snapshot-io
    // error, not a panic.
    let frames = drive(&mut daemon, c, r#"{"op":"save_snapshot","id":8}"#);
    assert_eq!(error_code(&frames[0]), "snapshot-io");

    // A client with a 1-edge allowance gets one query admitted, then
    // structured budget-exhausted errors.
    let c2 = daemon.connect();
    let frames = drive(
        &mut daemon,
        c2,
        r#"{"op":"hello","id":1,"name":"starved","budget":1}"#,
    );
    assert!(is_ok(&frames[0]));
    let line = format!(r#"{{"op":"query","id":2,"var":{}}}"#, m.s1.as_raw());
    let frames = drive(&mut daemon, c2, &line);
    assert!(is_ok(&frames[0]), "first query is admitted");
    let frames = drive(&mut daemon, c2, &line);
    assert_eq!(error_code(&frames[0]), "budget-exhausted");
    // The exhausted client can still ask for health.
    let frames = drive(&mut daemon, c2, r#"{"op":"health","id":3}"#);
    assert!(is_ok(&frames[0]));
    assert_eq!(
        frames[0]
            .get("client")
            .and_then(|cl| cl.get("rejected"))
            .and_then(Json::as_u64),
        Some(1)
    );
}

#[test]
fn round_robin_keeps_small_clients_ahead_of_bulk_batches() {
    let m = motivating_pag();
    let mut daemon = daemon_over(&m, ServiceConfig::default());
    let bulk = daemon.connect();
    let quick = daemon.connect();
    hello(&mut daemon, bulk);
    hello(&mut daemon, quick);

    // The bulk client enqueues 50 queries first; the quick client's
    // single query still completes on the second scheduler turn.
    let vars = vec![m.s1.as_raw().to_string(); 50].join(",");
    assert!(daemon
        .ingest(
            bulk,
            &format!(r#"{{"op":"batch","id":10,"vars":[{vars}]}}"#)
        )
        .is_empty());
    assert!(daemon
        .ingest(
            quick,
            &format!(r#"{{"op":"query","id":11,"var":{}}}"#, m.s1.as_raw())
        )
        .is_empty());
    let finished = daemon.drain();
    assert_eq!(finished.len(), 2);
    assert_eq!(
        finished[0].0, quick,
        "round-robin answers the one-query client before the 50-query batch"
    );
    assert_eq!(finished[1].0, bulk);

    // Both clients observed identical answers for the same variable —
    // multiplexing never bleeds one client's traffic into another's
    // results.
    let bulk_frame = parse(&finished[1].1).unwrap();
    let quick_frame = parse(&finished[0].1).unwrap();
    let bulk_fp = bulk_frame.get("results").and_then(Json::as_arr).unwrap()[0]
        .get("fingerprint")
        .and_then(Json::as_str)
        .unwrap()
        .to_owned();
    assert_eq!(
        quick_frame
            .get("result")
            .and_then(|r| r.get("fingerprint"))
            .and_then(Json::as_str),
        Some(bulk_fp.as_str())
    );
}

#[cfg(unix)]
#[test]
fn serve_pair_transport_survives_malformed_lines_and_shuts_down() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let m = motivating_pag();
    let (client_half, server_half) = UnixStream::pair().expect("socketpair");
    dynsum_cfl::sync::thread::scope(|scope| {
        scope.spawn(|| {
            let mut daemon = daemon_over(&m, ServiceConfig::default());
            let reader = server_half.try_clone().expect("clone");
            dynsum::service::serve_pair(&mut daemon, vec![(reader, server_half)]);
        });
        let mut writer = client_half.try_clone().expect("clone");
        let mut reader = BufReader::new(client_half);
        let mut recv = || {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read frame");
            parse(line.trim_end()).expect("valid JSON frame")
        };

        // Garbage first: structured parse error, connection stays up.
        writeln!(writer, "$$$ not a frame $$$").unwrap();
        assert_eq!(error_code(&recv()), "parse");

        // An oversized line is truncated by the reader and classified,
        // and the *next* line still parses cleanly.
        writeln!(writer, "{}", "x".repeat(MAX_FRAME_BYTES + 100)).unwrap();
        assert_eq!(error_code(&recv()), "oversized");

        writeln!(writer, r#"{{"op":"hello","id":1,"name":"wire"}}"#).unwrap();
        assert!(is_ok(&recv()));
        writeln!(writer, r#"{{"op":"query","id":2,"var":{}}}"#, m.s1.as_raw()).unwrap();
        let frame = recv();
        assert!(is_ok(&frame));
        assert_eq!(
            frame
                .get("result")
                .and_then(|r| r.get("outcome"))
                .and_then(Json::as_str),
            Some("resolved")
        );
        writeln!(writer, r#"{{"op":"shutdown","id":3}}"#).unwrap();
        assert!(is_ok(&recv()));
        // The serve loop exits; the scope joins the daemon thread.
    });
}
