//! Lifecycle properties of the size-capped, handle-reusing `Session`
//! cache: eviction at any cap (including 0) leaves every query result
//! byte-identical to the uncapped sequential run at any thread count;
//! hit/miss accounting balances exactly against per-query stats; warm
//! worker reuse and invalidation fencing behave across batches.

use dynsum::cfl::CtxId;
use dynsum::pag::ObjId;
use dynsum::{
    ClientKind, DemandPointsTo, DynSum, EngineConfig, EngineKind, QueryResult, Session,
    SessionQuery,
};
use dynsum_clients::queries_for;
use dynsum_workloads::{generate, BenchmarkProfile, GeneratorOptions, PROFILES};
use proptest::prelude::*;

/// The byte-level identity we claim: resolution flag plus the sorted
/// `(object, allocation context)` pairs.
fn fingerprint(r: &QueryResult) -> (bool, Vec<(ObjId, CtxId)>) {
    (r.resolved, r.pts.iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The determinism claim under eviction: evicting arbitrarily —
    /// random cap, including cap 0 — mid-stream at 1/2/4 threads leaves
    /// every query result byte-identical to the uncapped sequential
    /// run.
    #[test]
    fn eviction_never_changes_results(
        seed in 0u64..500,
        pidx in 0usize..PROFILES.len(),
        cap in 0usize..48,
    ) {
        let w = generate(
            &PROFILES[pidx],
            &GeneratorOptions { scale: 0.01, seed, ..GeneratorOptions::default() },
        );
        let queries = queries_for(ClientKind::NullDeref, &w.info);
        let uncapped: Vec<_> = {
            let mut engine = DynSum::new(&w.pag);
            queries
                .iter()
                .map(|q| fingerprint(&engine.points_to(q.var)))
                .collect()
        };
        let config = EngineConfig {
            max_cached_summaries: Some(cap),
            ..EngineConfig::default()
        };
        let batch: Vec<SessionQuery<'_>> =
            queries.iter().map(|q| SessionQuery::new(q.var)).collect();
        for threads in [1usize, 2, 4] {
            let mut session = Session::with_config(&w.pag, EngineKind::DynSum, config);
            // Several batches over the same session: eviction happens
            // mid-stream, between and within batches.
            let mid = batch.len() / 2;
            let mut results = session.run_batch(&batch[..mid], threads);
            results.extend(session.run_batch(&batch[mid..], threads));
            prop_assert_eq!(results.len(), uncapped.len());
            for (i, (r, want)) in results.iter().zip(&uncapped).enumerate() {
                prop_assert_eq!(
                    &fingerprint(r),
                    want,
                    "{}: cap={} threads={} diverged on query {}",
                    w.name,
                    cap,
                    threads,
                    i
                );
            }
            prop_assert!(
                session.summary_count() <= cap,
                "cap {} not enforced: {} cached",
                cap,
                session.summary_count()
            );
        }
    }
}

/// `stats().hits + misses` equals total lookups — each shard lookup is
/// counted exactly once even when it is served by the shared cache and
/// the shard merges later, across warm-worker batch reuse.
#[test]
fn lookup_accounting_balances_on_generated_workloads() {
    let w = generate(
        BenchmarkProfile::find("soot-c").unwrap(),
        &GeneratorOptions {
            scale: 0.02,
            seed: 11,
            ..GeneratorOptions::default()
        },
    );
    let queries = queries_for(ClientKind::NullDeref, &w.info);
    let batch: Vec<SessionQuery<'_>> = queries.iter().map(|q| SessionQuery::new(q.var)).collect();
    for threads in [1usize, 2, 4] {
        let mut session = Session::new(&w.pag, EngineKind::DynSum);
        let mut per_query_lookups = 0u64;
        for _ in 0..3 {
            for r in session.run_batch(&batch, threads) {
                per_query_lookups += r.stats.cache_hits + r.stats.cache_misses;
            }
        }
        let stats = session.cache_stats();
        assert_eq!(
            stats.lookups(),
            per_query_lookups,
            "threads={threads}: hits {} + misses {} != per-query lookups",
            stats.hits,
            stats.misses
        );
        assert!(stats.hits > 0, "warm batches must hit the shared cache");
    }
}

/// Worker scratch persists across batches and the determinism guarantee
/// survives the reuse (warm pools, snapshot-backed field stacks).
#[test]
fn warm_worker_reuse_stays_deterministic() {
    let w = generate(
        BenchmarkProfile::find("bloat").unwrap(),
        &GeneratorOptions {
            scale: 0.02,
            seed: 3,
            ..GeneratorOptions::default()
        },
    );
    let queries = queries_for(ClientKind::NullDeref, &w.info);
    let sequential: Vec<_> = {
        let mut engine = DynSum::new(&w.pag);
        queries
            .iter()
            .map(|q| fingerprint(&engine.points_to(q.var)))
            .collect()
    };
    let batch: Vec<SessionQuery<'_>> = queries.iter().map(|q| SessionQuery::new(q.var)).collect();
    let mut session = Session::new(&w.pag, EngineKind::DynSum);
    for round in 0..3 {
        let results = session.run_batch(&batch, 4);
        for (r, want) in results.iter().zip(&sequential) {
            assert_eq!(&fingerprint(r), want, "round {round}");
        }
        assert_eq!(session.warm_workers(), 4, "round {round}");
    }
    // The merged cache covers exactly the sequential key set even after
    // three rounds of warm reuse (nothing double-merged, nothing lost).
    let mut engine = DynSum::new(&w.pag);
    for q in &queries {
        engine.points_to(q.var);
    }
    assert_eq!(session.summary_count(), engine.summary_count());
}

/// Invalidation mid-stream: outstanding shards cannot resurrect evicted
/// methods, later batches repopulate them, and results never change.
#[test]
fn invalidation_between_batches_is_safe_and_exact() {
    let w = generate(
        BenchmarkProfile::find("jython").unwrap(),
        &GeneratorOptions {
            scale: 0.01,
            seed: 5,
            ..GeneratorOptions::default()
        },
    );
    let queries = queries_for(ClientKind::NullDeref, &w.info);
    let batch: Vec<SessionQuery<'_>> = queries.iter().map(|q| SessionQuery::new(q.var)).collect();
    let mut session = Session::new(&w.pag, EngineKind::DynSum);
    // Detach a cold shard first (the session cache is still empty, so
    // every summary the queries need lands in it), *then* populate the
    // shared cache — the shard is now a stale duplicate of it.
    let stale_shard = {
        let mut h = session.handle();
        for q in &queries {
            h.points_to(q.var);
        }
        h.into_summaries()
    };
    assert!(!stale_shard.is_empty());
    let first = session.run_batch(&batch, 2);
    let full = session.summary_count();
    assert!(full > 0);
    let method = {
        let mut probe = Session::new(&w.pag, EngineKind::DynSum);
        probe.run_batch(&batch, 1);
        w.pag
            .methods()
            .map(|(m, _)| m)
            .find(|&m| probe.invalidate_method(m) > 0)
            .expect("some method has summaries")
    };
    let evicted = session.invalidate_method(method);
    assert!(evicted > 0);
    session.absorb(stale_shard);
    assert!(
        session.stale_rejections() > 0,
        "the stale shard must be fenced"
    );
    assert_eq!(
        session.summary_count(),
        full - evicted,
        "fenced entries stay out; everything else deduplicates"
    );
    // Results after invalidation are still byte-identical.
    let second = session.run_batch(&batch, 2);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(fingerprint(a), fingerprint(b));
    }
    assert_eq!(session.summary_count(), full, "method fully repopulated");
}
