//! Integration tests over the synthetic benchmark suite: cross-engine
//! agreement at scale, oracle soundness, serialization, and the headline
//! performance shapes.

use dynsum::{Andersen, DemandPointsTo, DynSum, EngineConfig, NoRefine, RefinePts};
use dynsum_clients::{run_batches, run_client, ClientKind};
use dynsum_core::StaSum;
use dynsum_workloads::{generate, BenchmarkProfile, GeneratorOptions, PROFILES};

fn small(name: &str) -> dynsum_workloads::Workload {
    generate(
        BenchmarkProfile::find(name).unwrap(),
        &GeneratorOptions {
            scale: 0.01,
            seed: 11,
            ..GeneratorOptions::default()
        },
    )
}

#[test]
fn generated_graphs_are_oracle_sound_on_query_sites() {
    let w = small("bloat");
    let oracle = Andersen::analyze(&w.pag);
    let mut engine = DynSum::new(&w.pag);
    for cast in &w.info.casts {
        let r = engine.points_to(cast.var);
        if !r.resolved {
            continue;
        }
        let oracle_set: std::collections::BTreeSet<_> =
            oracle.var_pts(cast.var).iter().copied().collect();
        assert!(r.pts.objects().is_subset(&oracle_set));
    }
}

#[test]
fn engines_agree_on_generated_cast_sites() {
    let w = small("avrora");
    let config = EngineConfig::default();
    let mut dynsum = DynSum::with_config(&w.pag, config);
    let mut norefine = NoRefine::with_config(&w.pag, config);
    let mut refinepts = RefinePts::with_config(&w.pag, config);
    let mut stasum = StaSum::precompute_with(&w.pag, config, Default::default());
    for cast in &w.info.casts {
        let rd = dynsum.points_to(cast.var);
        let rn = norefine.points_to(cast.var);
        let rr = refinepts.points_to(cast.var);
        let rs = stasum.points_to(cast.var);
        if rd.resolved && rn.resolved && rr.resolved && rs.resolved {
            let d = rd.pts.objects();
            assert_eq!(d, rn.pts.objects());
            assert_eq!(d, rr.pts.objects());
            assert_eq!(d, rs.pts.objects());
        }
    }
}

#[test]
fn dynsum_beats_refinepts_on_every_benchmark_for_nullderef() {
    // The paper's strongest client (2.28x average). At small scale every
    // benchmark must still show DYNSUM doing less edge work.
    for profile in &PROFILES {
        let w = generate(
            profile,
            &GeneratorOptions {
                scale: 0.008,
                seed: 3,
                ..GeneratorOptions::default()
            },
        );
        let config = EngineConfig::default();
        let mut dynsum = DynSum::with_config(&w.pag, config);
        let mut refine = RefinePts::with_config(&w.pag, config);
        let rd = run_client(ClientKind::NullDeref, &w.pag, &w.info, &mut dynsum);
        let rr = run_client(ClientKind::NullDeref, &w.pag, &w.info, &mut refine);
        assert!(
            rd.stats.edges_traversed < rr.stats.edges_traversed,
            "{}: DYNSUM {} vs REFINEPTS {}",
            w.name,
            rd.stats.edges_traversed,
            rr.stats.edges_traversed
        );
    }
}

#[test]
fn warm_cache_halves_second_pass() {
    // Figure 4's mechanism, distilled: replaying the same query stream
    // on a warm engine costs a fraction of the cold pass.
    let w = small("soot-c");
    let mut engine = DynSum::new(&w.pag);
    let cold = run_client(ClientKind::SafeCast, &w.pag, &w.info, &mut engine);
    let warm = run_client(ClientKind::SafeCast, &w.pag, &w.info, &mut engine);
    // Local (PPTA) work is fully cached; the driver still walks the
    // global edges each time, so the floor is the global-edge share.
    assert!(
        (warm.stats.edges_traversed as f64) < 0.8 * cold.stats.edges_traversed as f64,
        "warm {} vs cold {}",
        warm.stats.edges_traversed,
        cold.stats.edges_traversed
    );
    assert!(warm.stats.cache_hits > warm.stats.cache_misses);
    // Verdicts identical.
    assert_eq!(cold.proven, warm.proven);
    assert_eq!(cold.refuted, warm.refuted);
}

#[test]
fn batch_cumulative_summaries_stay_below_stasum() {
    // Figure 5's claim: after all batches DYNSUM has computed only a
    // fraction of STASUM's static summaries.
    let w = small("jython");
    let stasum = StaSum::precompute(&w.pag);
    let mut dynsum = DynSum::new(&w.pag);
    let mut last = 0;
    for client in ClientKind::ALL {
        let batches = run_batches(client, &w.pag, &w.info, &mut dynsum, 10);
        if let Some(b) = batches.last() {
            last = b.cumulative_summaries;
        }
    }
    assert!(last > 0);
    assert!(
        (last as f64) < 0.9 * stasum.summary_count() as f64,
        "DYNSUM {} vs STASUM {}",
        last,
        stasum.summary_count()
    );
}

#[test]
fn generated_workloads_round_trip_through_text() {
    let w = small("luindex");
    let text = dynsum::pag::text::write_pag(&w.pag);
    let back = dynsum::pag::text::parse_pag(&text).expect("round trip");
    assert_eq!(back.num_edges(), w.pag.num_edges());
    assert_eq!(back.num_nodes(), w.pag.num_nodes());
    assert_eq!(back.stats().locality(), w.pag.stats().locality());
    // Spot-check a query on the re-imported graph.
    if let Some(cast) = w.info.casts.first() {
        let name = &w.pag.var(cast.var).name;
        let v2 = back.find_var(name).unwrap();
        let mut e1 = DynSum::new(&w.pag);
        let mut e2 = DynSum::new(&back);
        assert_eq!(
            e1.points_to(cast.var).pts.objects().len(),
            e2.points_to(v2).pts.objects().len()
        );
    }
}

#[test]
fn budget_controls_resolution_rate() {
    let w = small("xalan");
    let tight = EngineConfig {
        budget: 50,
        ..EngineConfig::default()
    };
    let mut tight_engine = DynSum::with_config(&w.pag, tight);
    let tight_report = run_client(ClientKind::NullDeref, &w.pag, &w.info, &mut tight_engine);
    let mut roomy_engine = DynSum::new(&w.pag);
    let roomy_report = run_client(ClientKind::NullDeref, &w.pag, &w.info, &mut roomy_engine);
    assert!(
        tight_report.unresolved > roomy_report.unresolved,
        "tight {} vs roomy {}",
        tight_report.unresolved,
        roomy_report.unresolved
    );
    assert!(roomy_report.resolution_rate() > tight_report.resolution_rate());
}

#[test]
fn deterministic_workloads_give_deterministic_analysis_results() {
    let a = small("jack");
    let b = small("jack");
    let mut ea = DynSum::new(&a.pag);
    let mut eb = DynSum::new(&b.pag);
    let ra = run_client(ClientKind::SafeCast, &a.pag, &a.info, &mut ea);
    let rb = run_client(ClientKind::SafeCast, &b.pag, &b.info, &mut eb);
    assert_eq!(ra.proven, rb.proven);
    assert_eq!(ra.refuted, rb.refuted);
    assert_eq!(ra.stats.edges_traversed, rb.stats.edges_traversed);
}
