//! Determinism properties of the `Session` API: `run_batch` at any
//! thread count must return exactly the points-to sets and client
//! verdicts of the sequential `DemandPointsTo` path — on generated
//! workload graphs, for warm and budget-starved configurations alike —
//! plus compile-time `Send`/`Sync` assertions for the session types.

use dynsum::cfl::CtxId;
use dynsum::pag::ObjId;
use dynsum::{
    ClientKind, DemandPointsTo, DynSum, EngineConfig, EngineKind, QueryHandle, QueryResult,
    Session, SessionQuery, StaSum, SummaryShard,
};
use dynsum_clients::{queries_for, verdict};
use dynsum_workloads::{generate, GeneratorOptions, Workload, PROFILES};
use proptest::prelude::*;

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn session_types_cross_threads() {
    // Session is shareable (&Session goes to every worker), handles and
    // detached shards move into/out of workers, queries are shared refs.
    assert_send::<Session<'static>>();
    assert_sync::<Session<'static>>();
    assert_send::<QueryHandle<'static, 'static>>();
    assert_send::<SummaryShard>();
    assert_send::<SessionQuery<'static>>();
    assert_sync::<SessionQuery<'static>>();
}

/// The byte-level identity we claim: resolution flag plus the sorted
/// `(object, allocation context)` pairs. Context ids are comparable
/// because context pools are per-query scratch.
fn fingerprint(r: &QueryResult) -> (bool, Vec<(ObjId, CtxId)>) {
    (r.resolved, r.pts.iter().collect())
}

/// Runs the NullDeref stream sequentially on a legacy engine, then on
/// `Session::run_batch` at 1/2/4 threads, asserting identical
/// fingerprints and verdicts throughout.
fn check_workload(w: &Workload, config: EngineConfig) -> usize {
    let queries = queries_for(ClientKind::NullDeref, &w.info);
    let mut engine = DynSum::with_config(&w.pag, config);
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| {
            let r = engine.points_to(q.var);
            (verdict(&w.pag, q, &r), fingerprint(&r))
        })
        .collect();
    let unresolved = sequential.iter().filter(|(_, (ok, _))| !ok).count();

    let batch: Vec<SessionQuery<'_>> = queries.iter().map(|q| SessionQuery::new(q.var)).collect();
    for threads in [1usize, 2, 4] {
        let mut session = Session::with_config(&w.pag, EngineKind::DynSum, config);
        let results = session.run_batch(&batch, threads);
        assert_eq!(results.len(), sequential.len());
        for ((q, (want_verdict, want_fp)), r) in queries.iter().zip(&sequential).zip(&results) {
            assert_eq!(
                &fingerprint(r),
                want_fp,
                "{}: threads={threads} diverged on {q:?}",
                w.name
            );
            assert_eq!(verdict(&w.pag, q, r), *want_verdict);
        }
        assert_eq!(
            session.summary_count(),
            engine.summary_count(),
            "{}: merged cache must cover exactly the sequential key set",
            w.name
        );
    }
    unresolved
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Warm-path determinism on random generator graphs.
    #[test]
    fn run_batch_matches_sequential_on_generated_graphs(
        seed in 0u64..500,
        pidx in 0usize..PROFILES.len(),
    ) {
        let w = generate(
            &PROFILES[pidx],
            &GeneratorOptions { scale: 0.01, seed, ..GeneratorOptions::default() },
        );
        check_workload(&w, EngineConfig::default());
    }
}

/// Budget starvation is the hard case: over-budget queries return
/// *partial* sets, and those must also be thread-count-independent
/// (deterministic reuse accounting guarantees it).
#[test]
fn tight_budgets_stay_deterministic_across_thread_counts() {
    let w = generate(
        dynsum_workloads::BenchmarkProfile::find("bloat").unwrap(),
        &GeneratorOptions {
            scale: 0.05,
            seed: 7,
            ..GeneratorOptions::default()
        },
    );
    let mut starved_somewhere = false;
    for budget in [300, 1500, 10_000] {
        let config = EngineConfig {
            budget,
            ..EngineConfig::default()
        };
        starved_somewhere |= check_workload(&w, config) > 0;
    }
    assert!(
        starved_somewhere,
        "test must exercise over-budget partial results to mean anything"
    );
}

/// The memorization-free and static engines parallelize trivially; spot
/// check STASUM (shared frozen store) against its legacy engine.
#[test]
fn stasum_sessions_match_legacy_engine() {
    let w = generate(
        dynsum_workloads::BenchmarkProfile::find("soot-c").unwrap(),
        &GeneratorOptions {
            scale: 0.01,
            seed: 3,
            ..GeneratorOptions::default()
        },
    );
    let queries = queries_for(ClientKind::SafeCast, &w.info);
    let mut legacy = StaSum::precompute(&w.pag);
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| fingerprint(&legacy.points_to(q.var)))
        .collect();
    let batch: Vec<SessionQuery<'_>> = queries.iter().map(|q| SessionQuery::new(q.var)).collect();
    let mut session = Session::new(&w.pag, EngineKind::StaSum);
    assert_eq!(session.summary_count(), legacy.summary_count());
    for threads in [1usize, 3] {
        let results = session.run_batch(&batch, threads);
        for (want, r) in sequential.iter().zip(&results) {
            assert_eq!(&fingerprint(r), want, "threads={threads}");
        }
    }
}
