//! The paper's running example, end to end: §3.4's expected answers,
//! §4.3's summary reuse, and agreement between the hand-built Figure 2
//! PAG and the frontend-compiled one.

use dynsum::{compile, DemandPointsTo, DynSum, NoRefine, RefinePts, StaSum};
use dynsum_workloads::{motivating_pag, MOTIVATING_SOURCE};

#[test]
fn hand_built_pag_gives_paper_answers() {
    let m = motivating_pag();
    let mut engine = DynSum::new(&m.pag);
    let r1 = engine.points_to(m.s1);
    assert!(r1.resolved);
    let objs1: Vec<_> = r1
        .pts
        .objects()
        .into_iter()
        .map(|o| m.pag.obj(o).label.clone())
        .collect();
    assert_eq!(objs1, vec!["o26"], "pts(s1) must be {{o26}} (§3.4)");
    let r2 = engine.points_to(m.s2);
    let objs2: Vec<_> = r2
        .pts
        .objects()
        .into_iter()
        .map(|o| m.pag.obj(o).label.clone())
        .collect();
    assert_eq!(objs2, vec!["o29"], "pts(s2) must be {{o29}} (§3.4)");
}

#[test]
fn summary_reuse_makes_s2_cheaper() {
    let m = motivating_pag();
    let mut engine = DynSum::new(&m.pag);
    engine.set_tracing(true);
    let r1 = engine.points_to(m.s1);
    let t1 = engine.take_trace().unwrap();
    let r2 = engine.points_to(m.s2);
    let t2 = engine.take_trace().unwrap();
    assert_eq!(t1.reuse_count(), 0, "first query computes everything fresh");
    assert!(
        t2.reuse_count() >= 3,
        "Table 1 marks several reuse steps for s2"
    );
    assert!(
        r2.stats.edges_traversed < r1.stats.edges_traversed,
        "s2 ({}) must be cheaper than s1 ({})",
        r2.stats.edges_traversed,
        r1.stats.edges_traversed
    );
    assert!(r2.stats.cache_hits > 0);
}

#[test]
fn all_engines_agree_on_the_motivating_queries() {
    let m = motivating_pag();
    let expect = |engine: &mut dyn DemandPointsTo, name: &str| {
        let r1 = engine.points_to(m.s1);
        let r2 = engine.points_to(m.s2);
        assert!(r1.resolved && r2.resolved, "{name} must resolve");
        let o1: Vec<_> = r1
            .pts
            .objects()
            .into_iter()
            .map(|o| m.pag.obj(o).label.clone())
            .collect();
        let o2: Vec<_> = r2
            .pts
            .objects()
            .into_iter()
            .map(|o| m.pag.obj(o).label.clone())
            .collect();
        assert_eq!(o1, vec!["o26"], "{name} pts(s1)");
        assert_eq!(o2, vec!["o29"], "{name} pts(s2)");
    };
    expect(&mut DynSum::new(&m.pag), "DYNSUM");
    expect(&mut NoRefine::new(&m.pag), "NOREFINE");
    expect(&mut RefinePts::new(&m.pag), "REFINEPTS");
    expect(&mut StaSum::precompute(&m.pag), "STASUM");
}

#[test]
fn refinement_needs_multiple_iterations_here() {
    // §3.4 walks REFINEPTS through four refinement iterations for s1.
    let m = motivating_pag();
    let mut engine = RefinePts::new(&m.pag);
    let r1 = engine.points_to(m.s1);
    assert!(
        r1.stats.refinement_iterations >= 3,
        "s1 needs several refinement iterations (paper shows 4), got {}",
        r1.stats.refinement_iterations
    );
}

#[test]
fn field_based_first_pass_conflates_s1_and_s2() {
    // The paper's first iteration returns {o26, o29} for s1. A client
    // that accepts anything sees exactly that over-approximation.
    let m = motivating_pag();
    let mut engine = RefinePts::new(&m.pag);
    let r = engine.query(m.s1, &|_| true);
    let objs: Vec<_> = r
        .pts
        .objects()
        .into_iter()
        .map(|o| m.pag.obj(o).label.clone())
        .collect();
    assert_eq!(
        objs,
        vec!["o26", "o29"],
        "field-based iteration 1 conflates both vectors' payloads"
    );
    assert_eq!(r.stats.refinement_iterations, 1);
}

#[test]
fn compiled_source_agrees_with_hand_built_graph() {
    let c = compile(MOTIVATING_SOURCE).unwrap();
    let mut engine = DynSum::new(&c.pag);
    for (var, expected_count) in [("Main.main#s1", 1), ("Main.main#s2", 1)] {
        let v = c.pag.find_var(var).unwrap();
        let r = engine.points_to(v);
        assert!(r.resolved);
        assert_eq!(
            r.pts.objects().len(),
            expected_count,
            "{var} must resolve to exactly one allocation site"
        );
    }
    // And the two results are the distinct Integer/String allocations.
    let s1 = c.pag.find_var("Main.main#s1").unwrap();
    let s2 = c.pag.find_var("Main.main#s2").unwrap();
    let o1 = engine.points_to(s1).pts.objects();
    let o2 = engine.points_to(s2).pts.objects();
    assert_ne!(o1, o2, "context sensitivity separates the two clients");
    let class_of = |objs: &std::collections::BTreeSet<dynsum::pag::ObjId>| {
        let o = *objs.iter().next().unwrap();
        c.pag
            .hierarchy()
            .name(c.pag.obj(o).class.expect("typed alloc"))
            .to_owned()
    };
    assert_eq!(class_of(&o1), "Integer");
    assert_eq!(class_of(&o2), "String");
}

#[test]
fn edge_work_is_pinned_on_the_motivating_example() {
    // Regression pin for `QueryStats::edges_traversed`: performance
    // refactors of the graph layout and the traversal loops must change
    // *cost*, never semantics or work accounting. If an intentional
    // algorithmic change moves these numbers, update them in the same
    // commit and say why.
    //
    // Current pins date from tagging field-stack frames with their
    // grammar provenance (`FieldFrame::Get`/`Put`): frames that used to
    // pop at the wrong production (load-against-load, store-against-
    // store) now persist, so the engines traverse a few more edges on
    // the way to the same — now sound — answers (previously 39/27/112).
    let m = motivating_pag();
    let mut dynsum = DynSum::new(&m.pag);
    assert_eq!(dynsum.points_to(m.s1).stats.edges_traversed, 52);
    assert_eq!(
        dynsum.points_to(m.s2).stats.edges_traversed,
        40,
        "s2 must reuse s1's summaries (fewer edges than s1's 52)"
    );
    let mut norefine = NoRefine::new(&m.pag);
    assert_eq!(norefine.points_to(m.s1).stats.edges_traversed, 52);
    assert_eq!(
        norefine.points_to(m.s2).stats.edges_traversed,
        52,
        "NOREFINE memorizes nothing, so s2 repeats the full traversal"
    );
    let mut refinepts = RefinePts::new(&m.pag);
    assert_eq!(refinepts.points_to(m.s1).stats.edges_traversed, 130);
    assert_eq!(refinepts.points_to(m.s2).stats.edges_traversed, 130);
}

#[test]
fn stasum_precomputes_more_than_dynsum_needs() {
    // Figure 5's point, on the smallest possible example.
    let m = motivating_pag();
    let stasum = StaSum::precompute(&m.pag);
    let mut dynsum = DynSum::new(&m.pag);
    dynsum.points_to(m.s1);
    dynsum.points_to(m.s2);
    assert!(
        dynsum.summary_count() < stasum.summary_count() * 2,
        "DYNSUM ({}) should not dwarf STASUM ({})",
        dynsum.summary_count(),
        stasum.summary_count()
    );
    assert!(stasum.summary_count() > 0);
}
