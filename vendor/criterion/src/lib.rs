//! Minimal, dependency-free stand-in for the parts of the `criterion`
//! crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the benches
//! link against this vendored shim. It keeps criterion's surface —
//! [`Criterion`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! benchmark groups, the [`criterion_group!`]/[`criterion_main!`]
//! macros — but replaces the statistics engine with a simple
//! time-boxed mean: each benchmark warms up once, then runs for a
//! bounded number of iterations (or wall-clock budget) and prints the
//! mean time per iteration. Good enough to compare engine variants
//! locally; not a rigorous measurement harness.
//!
//! ```
//! use criterion::Criterion;
//!
//! let mut c = Criterion::default();
//! c.bench_function("push", |b| b.iter(|| (0..100).sum::<u64>()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. This shim runs one routine
/// call per setup regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    /// Upper bound on measured iterations.
    max_iters: u64,
    /// Wall-clock budget for the measurement loop.
    budget: Duration,
    /// Measured mean, if the closure ran.
    mean: Option<Duration>,
}

impl Bencher {
    fn new(max_iters: u64, budget: Duration) -> Self {
        Bencher {
            max_iters,
            budget,
            mean: None,
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let started = Instant::now();
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        while iters < self.max_iters && started.elapsed() < self.budget {
            let t = Instant::now();
            black_box(routine());
            total += t.elapsed();
            iters += 1;
        }
        self.mean = Some(total / iters.max(1) as u32);
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine
    /// is measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let started = Instant::now();
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        while iters < self.max_iters && started.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
            iters += 1;
        }
        self.mean = Some(total / iters.max(1) as u32);
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs and reports a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs and reports one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (report flushing is immediate in this shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher::new(sample_size as u64, Duration::from_millis(500));
    f(&mut b);
    match b.mean {
        Some(mean) => println!("bench: {id:<40} {mean:>12.2?}/iter"),
        None => println!("bench: {id:<40} (no measurement)"),
    }
}

/// Declares a runnable group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }
}
