//! The model-checking runtime: a cooperative scheduler that serializes
//! virtual threads at synchronization operations, a store-history memory
//! model with vector clocks, and the unified choice-point machinery the
//! explorer drives.
//!
//! # Execution model
//!
//! Every virtual thread runs on a real OS thread, but at most one is
//! ever *active*: a thread runs freely between synchronization
//! operations (which cannot race — all shared state goes through the
//! instrumented types) and parks at each one until the scheduler hands
//! it the baton. Each handoff is a **choice point**: the explorer
//! decides which runnable thread performs its pending operation next.
//! Loads from atomics are a second kind of choice point: the memory
//! model computes the set of stores the load may legally observe (see
//! below) and the explorer picks one. Both kinds flow through the same
//! [`Exec::choose`] hook, so a schedule is just a sequence of small
//! integers — which is what makes failing schedules serializable and
//! replayable ([`crate::model::Trace`]).
//!
//! # Memory model
//!
//! A sound under-approximation of C11 for the operations the workspace
//! uses:
//!
//! * every atomic location keeps its full store history in modification
//!   order (append order — stores are never reordered within a
//!   location, a deliberate simplification);
//! * a load may observe any store not superseded for the loading thread:
//!   nothing older than a store that happens-before the load, nothing
//!   older than what the thread already read or wrote (per-location
//!   coherence floors);
//! * `Release` stores publish the writer's vector clock; `Acquire`
//!   loads that observe them join it (so `Relaxed` loads can keep
//!   seeing stale values of *other* locations — the reordering weak
//!   hardware actually performs);
//! * read-modify-writes always observe the latest store (C11 atomicity);
//! * `SeqCst` operations additionally synchronize through a global
//!   clock, approximating the single total order.
//!
//! Under-approximations can only hide behaviors real hardware has, never
//! invent impossible ones: every failure the checker reports corresponds
//! to a legal execution.

use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Re-exported memory orderings (the std enum, so facade code keeps
/// `Ordering::` spellings unchanged under the model).
pub use std::sync::atomic::Ordering;

/// Globally unique execution ids, so instrumented objects can detect
/// that a new execution started and re-register their locations.
static EXEC_IDS: AtomicU64 = AtomicU64::new(1);

/// Internal watchdog: a virtual thread parked longer than this has hit
/// a runtime bug (lost wakeup); fail loudly instead of hanging CI.
const PARK_TIMEOUT: Duration = Duration::from_secs(60);

/// Sentinel writer id for a location's initial store: it
/// happens-before everything (construction precedes the model run).
const INIT_WRITER: usize = usize::MAX;

/// Panic payload used to tear worker threads down once a failure is
/// recorded; the wrapper recognizes it and does not report it again.
pub(crate) struct Abort;

/// A vector clock over virtual thread ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn set(&mut self, tid: usize, v: u32) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = v;
    }

    fn incr(&mut self, tid: usize) -> u32 {
        let v = self.get(tid) + 1;
        self.set(tid, v);
        v
    }

    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }
}

/// One store in a location's modification order.
#[derive(Debug, Clone)]
struct Store {
    val: u64,
    /// Writer's clock published iff the store was `Release` or stronger;
    /// acquire loads that observe the store join it. (`SeqCst` ordering
    /// is modeled separately through [`Exec::sc_clock`], not per-store.)
    release: Option<VClock>,
    /// Writer thread + its clock component at store time, for
    /// happens-before tests ([`Exec::store_hb`]).
    by: usize,
    at: u32,
}

/// What a location is.
#[derive(Debug)]
enum LocKind {
    Atomic,
    Mutex { held_by: Option<usize> },
}

#[derive(Debug)]
struct Loc {
    kind: LocKind,
    stores: Vec<Store>,
}

/// Why a thread cannot run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Block {
    /// Waiting for a thread to finish.
    Join(usize),
    /// Waiting for a mutex location to be released.
    Lock(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    Runnable,
    Blocked(Block),
    Finished,
}

#[derive(Debug)]
struct ThreadSt {
    state: Run,
    clock: VClock,
    /// Per-location coherence floor: the smallest store index this
    /// thread may still legally observe.
    floors: Vec<usize>,
}

/// How choices are produced.
pub(crate) enum Mode {
    /// Systematic DFS: replay the recorded prefix, then take the first
    /// untried option at the frontier; the driver backtracks between
    /// executions.
    Dfs,
    /// Seeded pseudo-random choices (SplitMix64), recorded so a failing
    /// random schedule is just as replayable as a DFS one.
    Random(u64),
    /// Replay a fixed choice sequence exactly.
    Replay,
}

/// One recorded decision: how many options existed, which was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Choice {
    pub options: u32,
    pub chosen: u32,
}

/// State of one execution (one schedule). Reset between runs; the
/// `choices` vector is installed by the driver and harvested after.
pub(crate) struct Exec {
    pub exec_id: u64,
    pub mode: Mode,
    pub choices: Vec<Choice>,
    pub depth: usize,
    threads: Vec<ThreadSt>,
    active: Option<usize>,
    locs: Vec<Loc>,
    pub failure: Option<String>,
    steps: u64,
    max_steps: u64,
    max_threads: usize,
    sc_clock: VClock,
    /// OS threads still running (virtual threads whose wrapper has not
    /// returned); the driver waits for 0 before reusing the runtime.
    pub live: usize,
}

impl Exec {
    fn new() -> Exec {
        Exec {
            exec_id: 0,
            mode: Mode::Dfs,
            choices: Vec::new(),
            depth: 0,
            threads: Vec::new(),
            active: None,
            locs: Vec::new(),
            failure: None,
            steps: 0,
            max_steps: 0,
            max_threads: 0,
            sc_clock: VClock::default(),
            live: 0,
        }
    }

    /// Prepares the state for one execution.
    pub(crate) fn reset(
        &mut self,
        mode: Mode,
        choices: Vec<Choice>,
        max_steps: u64,
        max_threads: usize,
    ) {
        self.exec_id = EXEC_IDS.fetch_add(1, StdOrdering::Relaxed);
        self.mode = mode;
        self.choices = choices;
        self.depth = 0;
        self.threads.clear();
        self.active = None;
        self.locs.clear();
        self.failure = None;
        self.steps = 0;
        self.max_steps = max_steps;
        self.max_threads = max_threads;
        self.sc_clock = VClock::default();
        self.live = 0;
    }

    /// The unified decision hook: every scheduling choice and every
    /// load-visibility choice funnels through here. `n == 1` is not a
    /// decision and is not recorded, which keeps traces minimal.
    pub(crate) fn choose(&mut self, n: usize) -> usize {
        debug_assert!(n >= 1);
        if n <= 1 {
            return 0;
        }
        let chosen = match self.mode {
            Mode::Dfs | Mode::Replay => {
                if self.depth < self.choices.len() {
                    let c = self.choices[self.depth];
                    if c.options != n as u32 {
                        self.fail(format!(
                            "non-deterministic harness: choice point {} had {} options on \
                             a previous run but {} now (model closures must be deterministic)",
                            self.depth, c.options, n
                        ));
                        return 0;
                    }
                    c.chosen as usize
                } else if matches!(self.mode, Mode::Replay) {
                    // Past the recorded trace: the run being replayed
                    // ended here; defaulting keeps replay total.
                    0
                } else {
                    self.choices.push(Choice {
                        options: n as u32,
                        chosen: 0,
                    });
                    0
                }
            }
            Mode::Random(ref mut state) => {
                // SplitMix64 step, inlined to keep the shim dependency-free.
                *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = *state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let chosen = (z % n as u64) as usize;
                self.choices.push(Choice {
                    options: n as u32,
                    chosen: chosen as u32,
                });
                chosen
            }
        };
        self.depth += 1;
        if chosen >= n {
            self.fail(format!(
                "trace corrupt: choice {chosen} out of {n} options at point {}",
                self.depth - 1
            ));
            return 0;
        }
        chosen
    }

    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.active = None;
    }

    /// Registers a fresh virtual thread whose clock starts as a copy of
    /// the parent's (spawn is a happens-before edge).
    fn register_thread(&mut self, parent: Option<usize>) -> usize {
        let tid = self.threads.len();
        let clock = match parent {
            Some(p) => {
                let mut c = self.threads[p].clock.clone();
                c.incr(tid);
                c
            }
            None => VClock::default(),
        };
        self.threads.push(ThreadSt {
            state: Run::Runnable,
            clock,
            floors: Vec::new(),
        });
        tid
    }

    /// Registers a fresh shared-memory location with an initial store
    /// visible to (and happens-before) every thread.
    pub(crate) fn new_loc(&mut self, mutex: bool, initial: u64) -> usize {
        let id = self.locs.len();
        self.locs.push(Loc {
            kind: if mutex {
                LocKind::Mutex { held_by: None }
            } else {
                LocKind::Atomic
            },
            stores: vec![Store {
                val: initial,
                release: Some(VClock::default()),
                by: INIT_WRITER,
                at: 0,
            }],
        });
        id
    }

    /// `true` when `store` happens-before thread `tid`'s current point.
    fn store_hb(&self, store: &Store, tid: usize) -> bool {
        store.by == INIT_WRITER || self.threads[tid].clock.get(store.by) >= store.at
    }

    fn floor(&mut self, tid: usize, loc: usize) -> usize {
        let floors = &mut self.threads[tid].floors;
        if floors.len() <= loc {
            floors.resize(loc + 1, 0);
        }
        floors[loc]
    }

    fn set_floor(&mut self, tid: usize, loc: usize, idx: usize) {
        let floors = &mut self.threads[tid].floors;
        if floors.len() <= loc {
            floors.resize(loc + 1, 0);
        }
        if floors[loc] < idx {
            floors[loc] = idx;
        }
    }

    fn is_acquire(ord: Ordering) -> bool {
        matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn is_release(ord: Ordering) -> bool {
        matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    /// An atomic load: compute the observable window, let the explorer
    /// pick a store from it, apply coherence + synchronization effects.
    pub(crate) fn atomic_load(&mut self, tid: usize, loc: usize, ord: Ordering) -> u64 {
        if ord == Ordering::SeqCst {
            let sc = self.sc_clock.clone();
            self.threads[tid].clock.join(&sc);
        }
        let mut lo = self.floor(tid, loc);
        // Coherence: a load cannot observe a store older than the last
        // one that happens-before it.
        for (i, s) in self.locs[loc].stores.iter().enumerate().skip(lo) {
            if self.store_hb(s, tid) && i > lo {
                lo = i;
            }
        }
        let hi = self.locs[loc].stores.len() - 1;
        debug_assert!(lo <= hi);
        // Newest-first so the default (choice 0) is the naive
        // sequentially-consistent execution and staleness is explored
        // as alternatives.
        let idx = hi - self.choose(hi - lo + 1);
        let (val, release) = {
            let s = &self.locs[loc].stores[idx];
            (s.val, s.release.clone())
        };
        self.set_floor(tid, loc, idx);
        if Exec::is_acquire(ord) {
            if let Some(rel) = release {
                self.threads[tid].clock.join(&rel);
            }
        }
        if ord == Ordering::SeqCst {
            let clock = self.threads[tid].clock.clone();
            self.sc_clock.join(&clock);
        }
        val
    }

    /// An atomic store: append to modification order, publish the clock
    /// when `Release` or stronger.
    pub(crate) fn atomic_store(&mut self, tid: usize, loc: usize, val: u64, ord: Ordering) {
        if ord == Ordering::SeqCst {
            let sc = self.sc_clock.clone();
            self.threads[tid].clock.join(&sc);
        }
        let at = self.threads[tid].clock.get(tid);
        let release = if Exec::is_release(ord) {
            Some(self.threads[tid].clock.clone())
        } else {
            None
        };
        self.locs[loc].stores.push(Store {
            val,
            release,
            by: tid,
            at,
        });
        let idx = self.locs[loc].stores.len() - 1;
        self.set_floor(tid, loc, idx);
        if ord == Ordering::SeqCst {
            let clock = self.threads[tid].clock.clone();
            self.sc_clock.join(&clock);
        }
    }

    /// A read-modify-write: observes the *latest* store (C11 atomicity),
    /// applies `f`, appends the result. Returns the observed value.
    pub(crate) fn atomic_rmw(
        &mut self,
        tid: usize,
        loc: usize,
        ord: Ordering,
        f: impl FnOnce(u64) -> Option<u64>,
    ) -> u64 {
        if ord == Ordering::SeqCst {
            let sc = self.sc_clock.clone();
            self.threads[tid].clock.join(&sc);
        }
        let idx = self.locs[loc].stores.len() - 1;
        let (old, release) = {
            let s = &self.locs[loc].stores[idx];
            (s.val, s.release.clone())
        };
        self.set_floor(tid, loc, idx);
        if Exec::is_acquire(ord) {
            if let Some(rel) = release {
                self.threads[tid].clock.join(&rel);
            }
        }
        if let Some(new) = f(old) {
            let at = self.threads[tid].clock.get(tid);
            let release = if Exec::is_release(ord) {
                Some(self.threads[tid].clock.clone())
            } else {
                None
            };
            self.locs[loc].stores.push(Store {
                val: new,
                release,
                by: tid,
                at,
            });
            let idx = self.locs[loc].stores.len() - 1;
            self.set_floor(tid, loc, idx);
        }
        if ord == Ordering::SeqCst {
            let clock = self.threads[tid].clock.clone();
            self.sc_clock.join(&clock);
        }
        old
    }

    /// Scheduling decision: pick the next active thread among the
    /// runnable ones (a choice point when more than one is), detect
    /// deadlock and completion.
    fn advance(&mut self) {
        if self.failure.is_some() {
            self.active = None;
            return;
        }
        let runnable: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == Run::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if self.threads.iter().all(|t| t.state == Run::Finished) {
                self.active = None; // execution complete
            } else {
                let stuck: Vec<String> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| match t.state {
                        Run::Blocked(Block::Join(on)) => {
                            Some(format!("thread {i} joining thread {on}"))
                        }
                        Run::Blocked(Block::Lock(loc)) => {
                            Some(format!("thread {i} waiting for mutex #{loc}"))
                        }
                        _ => None,
                    })
                    .collect();
                self.fail(format!("deadlock: {}", stuck.join(", ")));
            }
            return;
        }
        let i = self.choose(runnable.len());
        if self.failure.is_some() {
            return;
        }
        self.active = Some(runnable[i]);
    }
}

/// What a synchronization operation asks the scheduler to do.
pub(crate) enum Step<R> {
    /// The operation completed with this result.
    Done(R),
    /// The operation cannot proceed; park until woken.
    Block(Block),
}

/// The shared runtime handle: one per [`crate::model::Builder`] run,
/// cloned into every virtual thread.
pub(crate) struct Rt {
    state: Mutex<Exec>,
    cv: Condvar,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Rt>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The current thread's model context, if it is a virtual thread.
pub(crate) fn ctx() -> Option<(Arc<Rt>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// `true` on virtual (model) threads — used by the panic filter.
pub(crate) fn in_model_thread() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

fn set_ctx(v: Option<(Arc<Rt>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = v);
}

impl Rt {
    pub(crate) fn new() -> Arc<Rt> {
        Arc::new(Rt {
            state: Mutex::new(Exec::new()),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, Exec> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub(crate) fn notify(&self) {
        self.cv.notify_all();
    }

    /// One driver-side wait for execution progress; returns the guard
    /// and whether the watchdog timed out.
    pub(crate) fn wait_done<'a>(&'a self, g: MutexGuard<'a, Exec>) -> (MutexGuard<'a, Exec>, bool) {
        let (ng, timeout) = self
            .cv
            .wait_timeout(g, PARK_TIMEOUT)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (ng, timeout.timed_out())
    }

    /// Parks until `tid` holds the baton; panics with [`Abort`] when the
    /// execution has failed (tearing the thread down).
    fn wait_for_turn<'a>(
        &'a self,
        mut g: MutexGuard<'a, Exec>,
        tid: usize,
    ) -> MutexGuard<'a, Exec> {
        loop {
            if g.failure.is_some() {
                drop(g);
                std::panic::panic_any(Abort);
            }
            if g.active == Some(tid) {
                return g;
            }
            let (ng, timeout) = self
                .cv
                .wait_timeout(g, PARK_TIMEOUT)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            g = ng;
            if timeout.timed_out() && g.active != Some(tid) && g.failure.is_none() {
                g.fail(format!("internal: thread {tid} starved (lost wakeup)"));
                self.notify();
            }
        }
    }

    /// Runs one synchronization operation for the calling virtual
    /// thread: wait for the baton, perform (or block and retry), then
    /// hand the baton back through a scheduling decision.
    pub(crate) fn yield_op<R>(
        self: &Arc<Rt>,
        tid: usize,
        mut f: impl FnMut(&mut Exec, usize) -> Step<R>,
    ) -> R {
        let mut g = self.lock();
        loop {
            g = self.wait_for_turn(g, tid);
            g.steps += 1;
            if g.steps > g.max_steps {
                let max = g.max_steps;
                g.fail(format!(
                    "step bound exceeded ({max} synchronization operations): \
                     livelock, or raise Builder::max_steps"
                ));
                self.notify();
                continue; // next wait_for_turn sees the failure and aborts
            }
            g.threads[tid].clock.incr(tid);
            match f(&mut g, tid) {
                Step::Done(r) => {
                    g.advance();
                    self.notify();
                    g = self.wait_for_turn(g, tid);
                    drop(g);
                    return r;
                }
                Step::Block(reason) => {
                    g.threads[tid].state = Run::Blocked(reason);
                    g.advance();
                    self.notify();
                    // Parked until a wake makes us Runnable *and* the
                    // scheduler picks us again; then retry the op.
                }
            }
        }
    }

    /// Registers and starts the root virtual thread (tid 0).
    pub(crate) fn start_root(self: &Arc<Rt>, body: impl FnOnce() + Send + 'static) {
        let mut g = self.lock();
        let tid = g.register_thread(None);
        debug_assert_eq!(tid, 0);
        g.live += 1;
        drop(g);
        let rt = Arc::clone(self);
        std::thread::spawn(move || run_virtual(rt, 0, body));
        // Kick off: schedule the first (only) thread.
        let mut g = self.lock();
        g.advance();
        self.notify();
    }

    /// Spawns a child virtual thread from the currently active thread.
    /// Registration happens inline (serialized); the spawn itself is a
    /// scheduling point.
    pub(crate) fn spawn_child(
        self: &Arc<Rt>,
        parent: usize,
        body: impl FnOnce() + Send + 'static,
    ) -> usize {
        let child = {
            let mut g = self.lock();
            if g.threads.len() >= g.max_threads {
                let max = g.max_threads;
                g.fail(format!("thread bound exceeded (max_threads = {max})"));
                self.notify();
                drop(g);
                std::panic::panic_any(Abort);
            }
            let child = g.register_thread(Some(parent));
            g.live += 1;
            child
        };
        let rt = Arc::clone(self);
        std::thread::spawn(move || run_virtual(rt, child, body));
        // The spawn is a synchronization event: give the scheduler a
        // chance to run the child (or anyone else) before the parent
        // continues.
        self.yield_op(parent, |_, _| Step::Done(()));
        child
    }

    /// Blocks until `target` finishes, establishing the join
    /// happens-before edge.
    pub(crate) fn join_thread(self: &Arc<Rt>, tid: usize, target: usize) {
        self.yield_op(tid, |g, me| {
            if g.threads[target].state == Run::Finished {
                let tclock = g.threads[target].clock.clone();
                g.threads[me].clock.join(&tclock);
                Step::Done(())
            } else {
                Step::Block(Block::Join(target))
            }
        });
    }

    /// Marks `tid` finished, wakes its joiners, reschedules.
    fn finish_thread(&self, tid: usize, panic_msg: Option<String>) {
        let mut g = self.lock();
        g.threads[tid].state = Run::Finished;
        if let Some(msg) = panic_msg {
            if g.failure.is_none() {
                g.failure = Some(format!("thread {tid} panicked: {msg}"));
            }
        }
        for t in g.threads.iter_mut() {
            if t.state == Run::Blocked(Block::Join(tid)) {
                t.state = Run::Runnable;
            }
        }
        g.advance();
        g.live -= 1;
        self.notify();
    }

    /// Mutex acquire as a blocking op with the release-clock handoff.
    pub(crate) fn mutex_lock(self: &Arc<Rt>, tid: usize, loc: usize) {
        self.yield_op(tid, |g, me| {
            match &mut g.locs[loc].kind {
                LocKind::Mutex { held_by } => {
                    if held_by.is_some() {
                        return Step::Block(Block::Lock(loc));
                    }
                    *held_by = Some(me);
                }
                LocKind::Atomic => unreachable!("lock on an atomic location"),
            }
            // Synchronize with the previous unlock (or construction).
            if let Some(rel) = g.locs[loc].stores.last().and_then(|s| s.release.clone()) {
                g.threads[me].clock.join(&rel);
            }
            Step::Done(())
        });
    }

    /// Mutex release: publish the clock, wake waiters.
    pub(crate) fn mutex_unlock(self: &Arc<Rt>, tid: usize, loc: usize) {
        self.yield_op(tid, |g, me| {
            match &mut g.locs[loc].kind {
                LocKind::Mutex { held_by } => {
                    debug_assert_eq!(*held_by, Some(me), "unlock by non-owner");
                    *held_by = None;
                }
                LocKind::Atomic => unreachable!("unlock on an atomic location"),
            }
            let at = g.threads[me].clock.get(me);
            let release = Some(g.threads[me].clock.clone());
            g.locs[loc].stores.push(Store {
                val: 0,
                release,
                by: me,
                at,
            });
            for t in g.threads.iter_mut() {
                if t.state == Run::Blocked(Block::Lock(loc)) {
                    t.state = Run::Runnable;
                }
            }
            Step::Done(())
        });
    }
}

/// The OS-thread wrapper around one virtual thread's body.
fn run_virtual(rt: Arc<Rt>, tid: usize, body: impl FnOnce()) {
    set_ctx(Some((Arc::clone(&rt), tid)));
    // Wait to be scheduled for the first time.
    let first = {
        let g = rt.lock();
        let mut aborted = false;
        let g2 = {
            // Inline wait_for_turn, but catching the failure case
            // without panicking (nothing to unwind yet).
            let mut g = g;
            loop {
                if g.failure.is_some() {
                    aborted = true;
                    break;
                }
                if g.active == Some(tid) {
                    break;
                }
                let (ng, _) = rt
                    .cv
                    .wait_timeout(g, PARK_TIMEOUT)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                g = ng;
            }
            g
        };
        drop(g2);
        !aborted
    };
    let panic_msg = if first {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)) {
            Ok(()) => None,
            Err(payload) => {
                if payload.is::<Abort>() {
                    None // teardown of an already-failed execution
                } else if let Some(s) = payload.downcast_ref::<&str>() {
                    Some((*s).to_string())
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    Some(s.clone())
                } else {
                    Some("panic with non-string payload".to_string())
                }
            }
        }
    } else {
        None
    };
    rt.finish_thread(tid, panic_msg);
    set_ctx(None);
}
