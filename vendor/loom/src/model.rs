//! The schedule explorer: bounded-exhaustive DFS over choice points
//! with a seeded random fallback, and replayable failing traces.
//!
//! A *schedule* is the sequence of decisions the runtime made — which
//! thread ran at each handoff, which store each load observed. The DFS
//! phase enumerates these sequences systematically (depth-first over
//! the choice tree, replaying the shared prefix each run); when the
//! tree is larger than [`Builder::max_schedules`], a second phase runs
//! [`Builder::random_schedules`] seeded-random schedules to sample the
//! remainder. Every failing schedule — DFS or random — is reported as a
//! [`Trace`] that [`Builder::replay`] re-executes deterministically.

use std::sync::Arc;

use crate::rt::{Choice, Mode, Rt};

/// Configuration for one exploration run.
///
/// The defaults suit kernel-sized harnesses (2–4 threads, a few dozen
/// synchronization operations): exhaustive where feasible, bounded and
/// randomized where not, always deterministic for a fixed seed.
#[derive(Debug, Clone)]
pub struct Builder {
    /// DFS budget: systematic schedules explored before falling back.
    pub max_schedules: usize,
    /// Random schedules run when DFS did not exhaust the tree.
    pub random_schedules: usize,
    /// Pad with extra random schedules until at least this many total
    /// ran — harnesses use it to guarantee an exploration floor even
    /// for small state spaces.
    pub min_schedules: usize,
    /// Seed for the random phase (fixed ⇒ reproducible CI).
    pub seed: u64,
    /// Per-schedule step bound (catches livelocks / unbounded spins).
    pub max_steps: u64,
    /// Maximum virtual threads per schedule.
    pub max_threads: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_schedules: 10_000,
            random_schedules: 2_000,
            min_schedules: 0,
            seed: 0x05EE_DC11,
            max_steps: 50_000,
            max_threads: 8,
        }
    }
}

/// A passing exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Total schedules executed (DFS + random).
    pub schedules: usize,
    /// `true` when the DFS phase enumerated the *entire* choice tree —
    /// the result is then exhaustive, not sampled.
    pub exhausted: bool,
}

/// A failing exploration: the first schedule that violated an
/// assertion (or deadlocked), with everything needed to re-run it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The panic message (or deadlock description) of the failing run.
    pub message: String,
    /// The failing schedule, replayable via [`Builder::replay`].
    pub trace: Trace,
    /// Schedules executed up to and including the failing one.
    pub schedules: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model check failed after {} schedule(s): {}\nfailing trace: {}\n\
             (replay with loom::model::Builder::replay(trace.parse()?))",
            self.schedules, self.message, self.trace
        )
    }
}

/// A serialized schedule: the recorded `(options, chosen)` pairs of
/// every decision the failing run made.
///
/// The wire form is `mc1:` followed by `options.chosen` pairs separated
/// by commas — stable, line-friendly, and diffable:
///
/// ```
/// use loom::model::Trace;
///
/// let t: Trace = "mc1:2.1,3.0,2.1".parse().unwrap();
/// assert_eq!(t.to_string(), "mc1:2.1,3.0,2.1");
/// assert_eq!(t.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    pub(crate) choices: Vec<Choice>,
}

impl Trace {
    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// `true` for the empty (single-schedule) trace.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }
}

impl std::fmt::Display for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mc1:")?;
        for (i, c) in self.choices.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}.{}", c.options, c.chosen)?;
        }
        Ok(())
    }
}

/// Error parsing a [`Trace`] wire string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError(String);

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid model-check trace: {}", self.0)
    }
}

impl std::error::Error for TraceParseError {}

impl std::str::FromStr for Trace {
    type Err = TraceParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s
            .strip_prefix("mc1:")
            .ok_or_else(|| TraceParseError("missing `mc1:` prefix".into()))?;
        let mut choices = Vec::new();
        for (i, pair) in body.split(',').enumerate() {
            if pair.is_empty() && body.is_empty() {
                break; // empty trace
            }
            let (o, c) = pair
                .split_once('.')
                .ok_or_else(|| TraceParseError(format!("pair {i}: missing `.` in `{pair}`")))?;
            let options: u32 = o
                .parse()
                .map_err(|_| TraceParseError(format!("pair {i}: bad options `{o}`")))?;
            let chosen: u32 = c
                .parse()
                .map_err(|_| TraceParseError(format!("pair {i}: bad choice `{c}`")))?;
            if options < 2 || chosen >= options {
                return Err(TraceParseError(format!(
                    "pair {i}: choice {chosen} out of range for {options} options"
                )));
            }
            choices.push(Choice { options, chosen });
        }
        Ok(Trace { choices })
    }
}

/// Outcome of one schedule.
struct RunOutcome {
    failure: Option<String>,
    choices: Vec<Choice>,
}

impl Builder {
    /// A builder with the default bounds.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Explores `f` and panics (with the failing trace in the message)
    /// on the first schedule that fails — the `loom::model` behavior.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        if let Err(failure) = self.check_result(f) {
            panic!("{failure}");
        }
    }

    /// Explores `f`, returning either a [`Report`] (all explored
    /// schedules passed) or the first [`Failure`].
    pub fn check_result<F>(&self, f: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_panic_filter();
        let f = Arc::new(f);
        let rt = Rt::new();
        let mut choices: Vec<Choice> = Vec::new();
        let mut schedules = 0usize;
        let mut exhausted = false;
        while schedules < self.max_schedules {
            let out = run_one(&rt, &f, Mode::Dfs, std::mem::take(&mut choices), self);
            schedules += 1;
            choices = out.choices;
            if let Some(message) = out.failure {
                return Err(Failure {
                    message,
                    trace: Trace { choices },
                    schedules,
                });
            }
            if !next_dfs(&mut choices) {
                exhausted = true;
                break;
            }
        }
        let mut extra = if exhausted { 0 } else { self.random_schedules };
        if schedules + extra < self.min_schedules {
            extra = self.min_schedules - schedules;
        }
        for i in 0..extra {
            let out = run_one(
                &rt,
                &f,
                Mode::Random(self.seed.wrapping_add(i as u64)),
                Vec::new(),
                self,
            );
            schedules += 1;
            if let Some(message) = out.failure {
                return Err(Failure {
                    message,
                    trace: Trace {
                        choices: out.choices,
                    },
                    schedules,
                });
            }
        }
        Ok(Report {
            schedules,
            exhausted,
        })
    }

    /// Re-executes exactly one schedule — the one `trace` records.
    /// Returns the failure it reproduces, or a [`Report`] if the trace
    /// no longer fails (e.g. after a fix).
    pub fn replay<F>(&self, trace: &Trace, f: F) -> Result<Report, Failure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_panic_filter();
        let f = Arc::new(f);
        let rt = Rt::new();
        let out = run_one(&rt, &f, Mode::Replay, trace.choices.clone(), self);
        match out.failure {
            Some(message) => Err(Failure {
                message,
                trace: Trace {
                    choices: out.choices,
                },
                schedules: 1,
            }),
            None => Ok(Report {
                schedules: 1,
                exhausted: false,
            }),
        }
    }
}

/// DFS backtrack: drop exhausted trailing decisions, bump the deepest
/// one with untried options. Returns `false` when the tree is done.
fn next_dfs(choices: &mut Vec<Choice>) -> bool {
    while let Some(last) = choices.last() {
        if last.chosen + 1 < last.options {
            let i = choices.len() - 1;
            choices[i].chosen += 1;
            return true;
        }
        choices.pop();
    }
    false
}

/// Runs one schedule to completion and harvests its outcome.
fn run_one<F>(rt: &Arc<Rt>, f: &Arc<F>, mode: Mode, choices: Vec<Choice>, b: &Builder) -> RunOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    {
        let mut g = rt.lock();
        g.reset(mode, choices, b.max_steps, b.max_threads);
    }
    let body = Arc::clone(f);
    rt.start_root(move || (*body)());
    // Wait for every OS thread of this schedule to retire.
    let mut g = rt.lock();
    loop {
        if g.live == 0 {
            break;
        }
        let (ng, timeout) = rt.wait_done(g);
        g = ng;
        if timeout && g.live > 0 && g.failure.is_none() {
            g.failure = Some("internal: execution hung (live threads)".to_string());
            rt.notify();
        }
    }
    RunOutcome {
        failure: g.failure.take(),
        choices: std::mem::take(&mut g.choices),
    }
}

/// Model-thread panics are reported through [`Failure`] (the payload is
/// captured by the runtime); silence the default stderr backtrace noise
/// for those threads only, forwarding everything else untouched.
fn install_panic_filter() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if crate::rt::in_model_thread() {
                return;
            }
            prev(info);
        }));
    });
}

/// Explores `f` under the default bounds, panicking on the first
/// failing schedule — the drop-in `loom::model` entry point.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f);
}
