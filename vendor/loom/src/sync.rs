//! Model-aware drop-ins for `std::sync` primitives.
//!
//! Each type carries a plain `std` primitive *and* a lazily registered
//! model location. On a virtual thread (inside [`crate::model()`]) every
//! operation becomes a scheduler yield point routed through the
//! store-history memory model; outside a model run the types behave
//! exactly like their `std` counterparts — so code compiled against
//! the facade keeps working even on paths the checker does not drive.
//!
//! Location registration is keyed by execution id: the same object
//! observed in a fresh schedule re-registers with its construction-time
//! value, which is what resets shared state between explored schedules.

use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

use crate::rt::{ctx, Exec, Step};

/// Memory orderings — re-exported from `std` so facade call sites keep
/// their `Ordering::Release` spellings under the model.
pub use std::sync::atomic::Ordering;

/// Atomic types instrumented for schedule exploration.
pub mod atomic {
    pub use super::Ordering;
    pub use super::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
}

/// Reference counting needs no instrumentation (its internal counter
/// races are `std`'s concern, not the checked kernels'), so `Arc` is
/// the real one.
pub use std::sync::Arc;

/// Lock outcome alias, matching `std::sync` (model mutexes never
/// poison: a panicking schedule aborts the whole execution instead).
pub use std::sync::{LockResult, PoisonError};

/// Shared location metadata: `(execution id, location id)` packed into
/// two plain atomics. Only virtual threads touch these, and virtual
/// threads are serialized, so `Relaxed` is enough.
#[derive(Debug, Default)]
struct Meta {
    exec: StdAtomicU64,
    loc: StdAtomicU64,
}

impl Meta {
    const fn new() -> Meta {
        Meta {
            exec: StdAtomicU64::new(0),
            loc: StdAtomicU64::new(0),
        }
    }

    /// The object's location in the current execution, registering it
    /// (with `initial` as the first store) on first contact.
    fn loc(&self, exec: &mut Exec, mutex: bool, initial: u64) -> usize {
        if self.exec.load(StdOrdering::Relaxed) == exec.exec_id {
            return self.loc.load(StdOrdering::Relaxed) as usize;
        }
        let loc = exec.new_loc(mutex, initial);
        self.loc.store(loc as u64, StdOrdering::Relaxed);
        self.exec.store(exec.exec_id, StdOrdering::Relaxed);
        loc
    }
}

macro_rules! instrumented_atomic {
    ($name:ident, $prim:ty, $std:ty, $to:expr, $from:expr) => {
        /// Instrumented atomic: routed through the model on virtual
        /// threads, plain `std` otherwise.
        #[derive(Debug, Default)]
        pub struct $name {
            std: $std,
            meta: Meta,
        }

        impl $name {
            /// Creates a new atomic with `v` as the initial value.
            pub const fn new(v: $prim) -> $name {
                $name {
                    std: <$std>::new(v),
                    meta: Meta::new(),
                }
            }

            fn with_loc<R>(&self, f: impl FnMut(&mut Exec, usize, usize) -> R) -> Option<R> {
                let (rt, tid) = ctx()?;
                let mut f = f;
                Some(rt.yield_op(tid, |g, t| {
                    let to: fn($prim) -> u64 = $to;
                    let loc = self
                        .meta
                        .loc(g, false, to(self.std.load(StdOrdering::Relaxed)));
                    Step::Done(f(g, t, loc))
                }))
            }

            /// Loads the value.
            pub fn load(&self, ord: Ordering) -> $prim {
                let from: fn(u64) -> $prim = $from;
                match self.with_loc(|g, t, loc| g.atomic_load(t, loc, ord)) {
                    Some(v) => from(v),
                    None => self.std.load(ord),
                }
            }

            /// Stores a value.
            pub fn store(&self, v: $prim, ord: Ordering) {
                let to: fn($prim) -> u64 = $to;
                match self.with_loc(|g, t, loc| g.atomic_store(t, loc, to(v), ord)) {
                    Some(()) => {}
                    None => self.std.store(v, ord),
                }
            }

            /// Swaps the value, returning the previous one.
            pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                let to: fn($prim) -> u64 = $to;
                let from: fn(u64) -> $prim = $from;
                match self.with_loc(|g, t, loc| g.atomic_rmw(t, loc, ord, |_| Some(to(v)))) {
                    Some(old) => from(old),
                    None => self.std.swap(v, ord),
                }
            }

            /// Compare-and-exchange; `Ok(previous)` on success.
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                _failure: Ordering,
            ) -> Result<$prim, $prim> {
                let to: fn($prim) -> u64 = $to;
                let from: fn(u64) -> $prim = $from;
                match self.with_loc(|g, t, loc| {
                    g.atomic_rmw(t, loc, success, |old| (old == to(current)).then(|| to(new)))
                }) {
                    Some(old) => {
                        if from(old) == current {
                            Ok(current)
                        } else {
                            Err(from(old))
                        }
                    }
                    None => self.std.compare_exchange(current, new, success, _failure),
                }
            }

            /// Consumes the atomic, returning the value. Outside the
            /// model this is exact; under the model it reads the latest
            /// store (callers hold `&mut`, so the location is quiescent).
            pub fn into_inner(self) -> $prim {
                let from: fn(u64) -> $prim = $from;
                match self.with_loc(|g, t, loc| g.atomic_load(t, loc, Ordering::SeqCst)) {
                    Some(v) => from(v),
                    None => self.std.into_inner(),
                }
            }
        }

        impl From<$prim> for $name {
            fn from(v: $prim) -> $name {
                $name::new(v)
            }
        }
    };
}

instrumented_atomic!(
    AtomicBool,
    bool,
    std::sync::atomic::AtomicBool,
    |v| v as u64,
    |v| v != 0
);
instrumented_atomic!(
    AtomicU32,
    u32,
    std::sync::atomic::AtomicU32,
    |v| v as u64,
    |v| v as u32
);
instrumented_atomic!(AtomicU64, u64, std::sync::atomic::AtomicU64, |v| v, |v| v);
instrumented_atomic!(
    AtomicUsize,
    usize,
    std::sync::atomic::AtomicUsize,
    |v| v as u64,
    |v| v as usize
);

macro_rules! atomic_arith {
    ($name:ident, $prim:ty, $to:expr, $from:expr) => {
        impl $name {
            /// Adds to the value (wrapping), returning the previous one.
            pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                let to: fn($prim) -> u64 = $to;
                let from: fn(u64) -> $prim = $from;
                match self.with_loc(|g, t, loc| {
                    g.atomic_rmw(t, loc, ord, |old| Some(to(from(old).wrapping_add(v))))
                }) {
                    Some(old) => from(old),
                    None => self.std.fetch_add(v, ord),
                }
            }
        }
    };
}

atomic_arith!(AtomicU32, u32, |v| v as u64, |v| v as u32);
atomic_arith!(AtomicU64, u64, |v| v, |v| v);
atomic_arith!(AtomicUsize, usize, |v| v as u64, |v| v as usize);

impl AtomicBool {
    /// Logical OR, returning the previous value.
    pub fn fetch_or(&self, v: bool, ord: Ordering) -> bool {
        match self
            .with_loc(|g, t, loc| g.atomic_rmw(t, loc, ord, |old| Some(((old != 0) | v) as u64)))
        {
            Some(old) => old != 0,
            None => self.std.fetch_or(v, ord),
        }
    }
}

/// Instrumented mutex: acquisition order is a scheduling decision,
/// lock/unlock transfer happens-before through the release clock, and
/// circular waits surface as deadlock failures.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    std: std::sync::Mutex<T>,
    meta: Meta,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `t`.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex {
            std: std::sync::Mutex::new(t),
            meta: Meta::new(),
        }
    }

    /// Acquires the mutex; the returned result is always `Ok` under the
    /// model (a panicking schedule fails the whole execution instead of
    /// poisoning).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match ctx() {
            Some((rt, tid)) => {
                let loc = {
                    let mut g = rt.lock();
                    self.meta.loc(&mut g, true, 0)
                };
                rt.mutex_lock(tid, loc);
                let inner = self
                    .std
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                Ok(MutexGuard {
                    inner: Some(inner),
                    model: Some((self, loc)),
                })
            }
            None => match self.std.lock() {
                Ok(inner) => Ok(MutexGuard {
                    inner: Some(inner),
                    model: None,
                }),
                Err(poison) => Err(PoisonError::new(MutexGuard {
                    inner: Some(poison.into_inner()),
                    model: None,
                })),
            },
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> LockResult<T> {
        match self.std.into_inner() {
            Ok(v) => Ok(v),
            Err(poison) => Err(PoisonError::new(poison.into_inner())),
        }
    }

    /// Mutable access without locking (callers hold `&mut`).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        match self.std.get_mut() {
            Ok(v) => Ok(v),
            Err(poison) => Err(PoisonError::new(poison.into_inner())),
        }
    }
}

/// Guard for an instrumented [`Mutex`]; releasing is a yield point.
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(&'a Mutex<T>, usize)>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard alive")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard alive")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the data before the model unlock so the next owner
        // (scheduled inside `mutex_unlock`) finds the std mutex free.
        self.inner = None;
        if let Some((mx, loc)) = self.model {
            if let Some((rt, tid)) = ctx() {
                // A guard dropped while the execution is tearing down
                // (Abort unwinding) must not re-enter the scheduler:
                // that would panic inside a panic.
                let failed = rt.lock().failure.is_some();
                if !failed {
                    rt.mutex_unlock(tid, loc);
                }
                let _ = mx;
            }
        }
    }
}
