//! Vendored loom-style bounded schedule explorer for the dynsum
//! workspace (offline shim — same API shape as the `loom` crate for the
//! operations this codebase uses, not the upstream implementation).
//!
//! # What this is
//!
//! A systematic concurrency tester: run a closure many times, each time
//! under a *different* thread interleaving and store-visibility choice,
//! chosen by a bounded-exhaustive DFS with a seeded random fallback.
//! Assertions inside the closure therefore get checked across the
//! schedule space instead of whatever the OS happens to produce, and a
//! failing schedule is reported as a serialized, replayable
//! [`model::Trace`].
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Arc;
//!
//! loom::model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = loom::thread::spawn(move || n2.fetch_add(1, Ordering::Relaxed));
//!     n.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     // RMWs cannot lose updates, under any schedule:
//!     assert_eq!(n.load(Ordering::Relaxed), 2);
//! });
//! ```
//!
//! # How it works
//!
//! See the `rt` module docs (in-source): virtual threads are real OS
//! threads serialized by a baton-passing scheduler; every
//! synchronization operation is a choice point; atomic locations keep
//! their full store history with vector clocks so `Relaxed` loads can
//! observe stale values that `Acquire`/`Release` pairs would forbid.
//! The explorer ([`model::Builder`]) enumerates choice sequences.
//!
//! # Dual-mode types
//!
//! [`sync`] and [`thread`] types fall back to their `std` counterparts
//! when used outside a model run, so production code compiled against a
//! facade that re-exports them keeps its normal semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod rt;

pub mod model;
pub mod sync;
pub mod thread;

pub use model::model;
