//! Model-aware replacements for `std::thread` spawning.
//!
//! On a virtual thread (inside [`crate::model()`]) `spawn` creates another
//! *virtual* thread driven by the schedule explorer; outside a model run
//! it is plain `std::thread::spawn`. `yield_now` and `sleep` become pure
//! scheduling points under the model — a sleep's duration is irrelevant
//! to which interleavings exist, only its position in the schedule is.

use std::sync::{Arc, Mutex as StdMutex, PoisonError};
use std::time::Duration;

use crate::rt::{ctx, Rt, Step};

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        rt: Arc<Rt>,
        tid: usize,
        slot: Arc<StdMutex<Option<T>>>,
    },
}

/// Handle to a spawned (virtual or real) thread.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// Under the model this blocks the calling *virtual* thread (a
    /// scheduling point that establishes the join happens-before edge);
    /// if the joined thread panicked, the whole execution has already
    /// failed and this call unwinds as part of the teardown.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model { rt, tid, slot } => {
                let me = ctx()
                    .map(|(_, t)| t)
                    .expect("model JoinHandle joined outside the model run");
                rt.join_thread(me, tid);
                match slot.lock().unwrap_or_else(PoisonError::into_inner).take() {
                    Some(v) => Ok(v),
                    None => Err(Box::new("model thread finished without a result")),
                }
            }
        }
    }
}

/// Spawns a thread — virtual when called from inside a model run, a
/// real `std::thread` otherwise.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match ctx() {
        Some((rt, me)) => {
            let slot = Arc::new(StdMutex::new(None));
            let out = Arc::clone(&slot);
            let tid = rt.spawn_child(me, move || {
                let v = f();
                *out.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
            });
            JoinHandle(Inner::Model { rt, tid, slot })
        }
        None => JoinHandle(Inner::Std(std::thread::spawn(f))),
    }
}

/// Yields: a pure scheduling point under the model.
pub fn yield_now() {
    match ctx() {
        Some((rt, tid)) => rt.yield_op(tid, |_, _| Step::Done(())),
        None => std::thread::yield_now(),
    }
}

/// Sleeps: under the model the duration is ignored — only the schedule
/// position matters, and the explorer already enumerates those.
pub fn sleep(dur: Duration) {
    match ctx() {
        Some((rt, tid)) => rt.yield_op(tid, |_, _| Step::Done(())),
        None => std::thread::sleep(dur),
    }
}
