//! Behavioral tests for the vendored schedule explorer: exhaustiveness,
//! bug detection (races, weak memory, deadlock), trace round-trip, and
//! the random-fallback / exploration-floor knobs.

use std::sync::atomic::{AtomicUsize as StdUsize, Ordering as StdOrdering};

use loom::model::{Builder, Trace};
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};

/// Two RMW increments never lose an update, under any schedule — and a
/// 2-thread, 2-op state space is fully enumerable.
#[test]
fn exhaustive_rmw_increments() {
    let report = Builder::new()
        .check_result(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = loom::thread::spawn(move || {
                n2.fetch_add(1, Ordering::Relaxed);
            });
            n.fetch_add(1, Ordering::Relaxed);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::Relaxed), 2);
        })
        .expect("RMW increments must not lose updates");
    assert!(report.exhausted, "small state space should be exhausted");
    assert!(report.schedules >= 2, "both interleavings must be explored");
}

/// A split load-then-store "increment" CAN lose an update; the explorer
/// must find the interleaving that proves it.
#[test]
fn detects_lost_update() {
    let failure = Builder::new()
        .check_result(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = loom::thread::spawn(move || {
                let v = n2.load(Ordering::SeqCst);
                n2.store(v + 1, Ordering::SeqCst);
            });
            let v = n.load(Ordering::SeqCst);
            n.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        })
        .expect_err("split increment must lose an update in some schedule");
    assert!(
        failure.message.contains("lost update"),
        "{}",
        failure.message
    );
}

/// Message passing with Release/Acquire is sound: observing the flag
/// implies observing the data.
#[test]
fn message_passing_release_acquire_holds() {
    Builder::new()
        .check_result(|| {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            let t = loom::thread::spawn(move || {
                d.store(42, Ordering::Relaxed);
                f.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) {
                assert_eq!(data.load(Ordering::Relaxed), 42, "flag without data");
            }
            t.join().unwrap();
        })
        .expect("Release/Acquire message passing must hold");
}

/// The same pattern with Relaxed on both sides is broken — the reader
/// may see the flag but stale data. This is the property that makes
/// dropped-`Release` mutations detectable (satellite 3's mechanism).
#[test]
fn message_passing_relaxed_fails() {
    let failure = Builder::new()
        .check_result(|| {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            let t = loom::thread::spawn(move || {
                d.store(42, Ordering::Relaxed);
                f.store(true, Ordering::Relaxed);
            });
            if flag.load(Ordering::Relaxed) {
                assert_eq!(data.load(Ordering::Relaxed), 42, "flag without data");
            }
            t.join().unwrap();
        })
        .expect_err("Relaxed message passing must be caught");
    assert!(
        failure.message.contains("flag without data"),
        "{}",
        failure.message
    );
}

/// Mutexes provide mutual exclusion and a happens-before edge: a
/// lock-protected split increment is correct.
#[test]
fn mutex_excludes() {
    Builder::new()
        .check_result(|| {
            let n = Arc::new(Mutex::new(0usize));
            let n2 = Arc::clone(&n);
            let t = loom::thread::spawn(move || {
                let mut g = n2.lock().unwrap();
                *g += 1;
            });
            {
                let mut g = n.lock().unwrap();
                *g += 1;
            }
            t.join().unwrap();
            assert_eq!(*n.lock().unwrap(), 2);
        })
        .expect("mutex-protected increments must not race");
}

/// ABBA lock ordering deadlocks in some schedule; the explorer reports
/// it instead of hanging.
#[test]
fn detects_deadlock() {
    let failure = Builder::new()
        .check_result(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = loom::thread::spawn(move || {
                let _g1 = b2.lock().unwrap();
                let _g2 = a2.lock().unwrap();
            });
            let _g1 = a.lock().unwrap();
            let _g2 = b.lock().unwrap();
            drop(_g2);
            drop(_g1);
            t.join().unwrap();
        })
        .expect_err("ABBA locking must deadlock in some schedule");
    assert!(failure.message.contains("deadlock"), "{}", failure.message);
}

/// Single-location reads are coherent: a thread never observes values
/// moving backwards in modification order.
#[test]
fn reads_are_coherent() {
    Builder::new()
        .check_result(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = loom::thread::spawn(move || {
                n2.store(1, Ordering::Relaxed);
                n2.store(2, Ordering::Relaxed);
            });
            let first = n.load(Ordering::Relaxed);
            let second = n.load(Ordering::Relaxed);
            assert!(
                second >= first,
                "reads went backwards: {first} then {second}"
            );
            t.join().unwrap();
        })
        .expect("per-location coherence must hold");
}

/// Satellite: a failing schedule round-trips through its serialized
/// trace — parse(to_string(trace)) replays to the same assertion.
#[test]
fn trace_replay_round_trip() {
    // The harness must be a deterministic function of the schedule, so
    // both the original exploration and the replay share it.
    fn harness() {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let t = loom::thread::spawn(move || {
            d.store(7, Ordering::Relaxed);
            f.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) {
            assert_eq!(data.load(Ordering::Relaxed), 7, "stale data after flag");
        }
        t.join().unwrap();
    }

    let b = Builder::new();
    let failure = b.check_result(harness).expect_err("harness must fail");

    // Serialize → parse: identical trace.
    let wire = failure.trace.to_string();
    assert!(wire.starts_with("mc1:"), "wire format prefix: {wire}");
    let parsed: Trace = wire.parse().expect("serialized trace must parse");
    assert_eq!(parsed, failure.trace);

    // Replay reproduces the same assertion message deterministically.
    let replayed = b
        .replay(&parsed, harness)
        .expect_err("replaying a failing trace must fail again");
    assert_eq!(replayed.message, failure.message);

    // And replaying twice is stable.
    let replayed2 = b
        .replay(&parsed, harness)
        .expect_err("replay must be deterministic");
    assert_eq!(replayed2.message, failure.message);
}

/// Trace parsing rejects malformed wire strings.
#[test]
fn trace_parse_errors() {
    assert!("2.1,3.0".parse::<Trace>().is_err(), "missing prefix");
    assert!("mc1:2x1".parse::<Trace>().is_err(), "missing dot");
    assert!("mc1:1.0".parse::<Trace>().is_err(), "1-option non-decision");
    assert!("mc1:2.2".parse::<Trace>().is_err(), "choice out of range");
    let empty: Trace = "mc1:".parse().expect("empty trace is valid");
    assert!(empty.is_empty());
}

/// With a DFS budget too small to exhaust the tree, the seeded random
/// phase still finds the bug — and its trace replays.
#[test]
fn random_fallback_finds_bug() {
    let b = Builder {
        max_schedules: 2, // far too small for this tree
        random_schedules: 2_000,
        ..Builder::new()
    };
    fn harness() {
        let n = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let n2 = Arc::clone(&n);
            handles.push(loom::thread::spawn(move || {
                let v = n2.load(Ordering::SeqCst);
                n2.store(v + 1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    }
    let failure = b
        .check_result(harness)
        .expect_err("random phase must find it");
    assert!(
        failure.message.contains("lost update"),
        "{}",
        failure.message
    );
    let replayed = b
        .replay(&failure.trace, harness)
        .expect_err("random-found trace must replay");
    assert_eq!(replayed.message, failure.message);
}

/// `min_schedules` pads exploration of tiny state spaces up to the
/// requested floor (harnesses use it for the ≥1k CI guarantee).
#[test]
fn min_schedules_floor() {
    let b = Builder {
        min_schedules: 1_000,
        ..Builder::new()
    };
    let runs = std::sync::Arc::new(StdUsize::new(0));
    let r2 = std::sync::Arc::clone(&runs);
    let report = b
        .check_result(move || {
            r2.fetch_add(1, StdOrdering::Relaxed);
            let n = AtomicUsize::new(1);
            assert_eq!(n.load(Ordering::Relaxed), 1);
        })
        .expect("trivial harness passes");
    assert!(
        report.schedules >= 1_000,
        "floor not met: {}",
        report.schedules
    );
    assert_eq!(runs.load(StdOrdering::Relaxed), report.schedules);
}

/// The step bound converts unbounded spin loops into a clean failure
/// instead of a hang.
#[test]
fn step_bound_catches_livelock() {
    let b = Builder {
        max_steps: 200,
        max_schedules: 4,
        random_schedules: 0,
        ..Builder::new()
    };
    let failure = b
        .check_result(|| {
            let flag = Arc::new(AtomicBool::new(false));
            // Nobody ever sets the flag: this spin cannot terminate.
            while !flag.load(Ordering::Acquire) {}
        })
        .expect_err("unbounded spin must hit the step bound");
    assert!(
        failure.message.contains("step bound"),
        "{}",
        failure.message
    );
}

/// Outside a model run the types are plain std: no scheduler involved.
#[test]
fn std_fallback_outside_model() {
    let n = AtomicUsize::new(5);
    assert_eq!(n.fetch_add(2, Ordering::SeqCst), 5);
    assert_eq!(n.load(Ordering::SeqCst), 7);
    let b = AtomicBool::new(false);
    assert!(!b.swap(true, Ordering::SeqCst));
    assert!(b.load(Ordering::SeqCst));
    let m = Mutex::new(3);
    *m.lock().unwrap() += 1;
    assert_eq!(m.into_inner().unwrap(), 4);
    let t = loom::thread::spawn(|| 9usize);
    assert_eq!(t.join().unwrap(), 9);
}
