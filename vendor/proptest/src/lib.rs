//! Minimal, dependency-free stand-in for the parts of the `proptest`
//! crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the property
//! tests link against this vendored shim. It keeps proptest's *surface*
//! — the [`proptest!`] macro, [`Strategy`] combinators
//! ([`Strategy::prop_map`], [`Strategy::prop_recursive`]),
//! [`collection::vec`], [`prop_oneof!`], [`Just`], [`any`],
//! [`ProptestConfig`] — while replacing the engine with a deterministic
//! sampler:
//!
//! * every test function derives its RNG seed from its module path, so
//!   runs are reproducible and failures are stable across invocations;
//! * there is no shrinking — a failing case panics with the sampled
//!   inputs in the assertion message (all inputs here are `Debug`-able
//!   specs small enough to read directly);
//! * `prop_assert!`/`prop_assert_eq!` map to `assert!`/`assert_eq!`.
//!
//! ```
//! use proptest::prelude::*;
//!
//! // In test code the functions would carry `#[test]` as usual.
//! proptest! {
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary name (FNV-1a), so each test gets its own
    /// reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
        });
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of test inputs.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy
/// is just a samplable distribution.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `recurse` receives the strategy built so
    /// far and wraps it one level deeper; `depth` bounds the nesting.
    /// The `_desired_size`/`_expected_branch_size` parameters exist for
    /// signature compatibility and are ignored by this shim.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            // Bias 2:1 toward the shallower alternatives so sampled
            // values stay small, mirroring proptest's size budgeting.
            cur = Union::new(vec![base.clone(), base.clone(), deeper]).boxed();
        }
        cur
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            f: Rc::new(move |rng| self.sample(rng)),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    f: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            f: Rc::clone(&self.f),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-valued strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized + 'static {
    /// The canonical strategy for this type.
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// Returns the canonical strategy for `A` (e.g. `any::<bool>()`).
pub fn any<A: Arbitrary>() -> BoxedStrategy<A> {
    A::arbitrary()
}

/// Full-range strategy marker for a primitive.
struct AnyPrim<T>(fn(&mut TestRng) -> T);

impl<T> Strategy for AnyPrim<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        AnyPrim(|rng| rng.next_u64() & 1 == 1).boxed()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                AnyPrim(|rng| rng.next_u64() as $t).boxed()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length distribution for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec`s of values drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size` and whose
    /// elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Per-test configuration, set via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Declares property tests: `#[test] fn name(arg in strategy, ...) { body }`.
///
/// Strategies are evaluated once per test; each case re-samples every
/// argument from the test's deterministic RNG stream.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl $cfg; $($rest)* }
    };
    (@impl $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let __strats = ( $($strat,)+ );
                for __case in 0..__config.cases {
                    let _ = __case;
                    let ( $($arg,)+ ) = {
                        let ( $(ref $arg,)+ ) = __strats;
                        ( $($crate::Strategy::sample($arg, &mut __rng),)+ )
                    };
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @impl $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Property-test assertion; this shim panics (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-test equality assertion; this shim panics (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-test inequality assertion; this shim panics (no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The conventional glob import: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_sample_in_bounds() {
        let mut rng = TestRng::from_name("shim::bounds");
        let s = collection::vec(0u16..64, 0..24);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(v.len() < 24);
            assert!(v.iter().all(|&x| x < 64));
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let mut rng = TestRng::from_name("shim::oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => usize::from(*v > 16),
                Tree::Node(inner) => 1 + depth(inner),
            }
        }
        let leaf = (0u8..16).prop_map(Tree::Leaf);
        let s = leaf.prop_recursive(3, 8, 2, |inner| inner.prop_map(|t| Tree::Node(Box::new(t))));
        let mut rng = TestRng::from_name("shim::recursive");
        for _ in 0..200 {
            assert!(depth(&s.sample(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_form_works(a in 0u32..10, b in any::<bool>()) {
            prop_assert!(a < 10);
            let _ = b;
        }
    }
}
