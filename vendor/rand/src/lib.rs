//! Minimal, dependency-free stand-in for the parts of the `rand` crate
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workloads
//! generator links against this vendored shim instead. It implements a
//! SplitMix64 generator behind the `rand 0.8` trait surface actually
//! exercised in-tree:
//!
//! * [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`] for `f64`/`bool`/unsigned integers;
//! * [`Rng::gen_bool`] with a probability;
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges.
//!
//! Determinism is part of the contract: the same seed always yields the
//! same stream (the workload generator's reproducibility tests rely on
//! it). Statistical quality is SplitMix64's — more than adequate for
//! synthetic-benchmark shaping, not for cryptography.
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = SmallRng::seed_from_u64(42);
//! let mut b = SmallRng::seed_from_u64(42);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! let x = a.gen_range(0usize..10);
//! assert!(x < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64` values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce from raw bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits, as `rand` does.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniformly samplable from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `low < high` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`; `low <= high` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (low as i128 + off as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (low as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Uniform draw from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        Self: Sized,
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`rand::seq` subset).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates), deterministic in
        /// the generator's state.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    ///
    /// Mirrors `rand::rngs::SmallRng`'s role: not cryptographically
    /// secure, fine for simulation and test-data generation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = SmallRng {
                // Pre-mix so nearby seeds diverge immediately.
                state: seed ^ 0x51A2_C1E2_9B69_3D47,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=4);
            assert!((1..=4).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn full_usize_range_does_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(3);
        let x = rng.gen_range(0usize..usize::MAX);
        assert!(x < usize::MAX);
        let y = rng.gen_range(i64::MIN..=i64::MAX);
        let _ = y;
    }
}
