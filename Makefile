# Convenience aliases; `make verify` is ROADMAP.md's tier-1 command.

CARGO ?= cargo

.PHONY: verify build test doc serve fuzz fuzz-faults fuzz-service bench-check bench-report bench-parallel bench-cache bench-service fmt lint lint-sync model-check clean

verify:
	$(CARGO) build --release && $(CARGO) test -q

build:
	$(CARGO) build --workspace --all-targets

test:
	$(CARGO) test -q

# Docs are a build gate: broken intra-doc links and missing docs fail.
doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --no-deps

# The analysis daemon on stdin/stdout (line-delimited JSON frames; see
# the README's "Running the daemon" for the grammar). SERVE_ARGS adds
# workloads/transport flags, e.g.
#   make serve SERVE_ARGS="--profile jack --socket /tmp/dynsum.sock"
SERVE_ARGS ?=
serve:
	$(CARGO) run --release --bin dynsum_serve -- $(SERVE_ARGS)

# Differential fuzzing of the four engines (fixed seed, so CI is
# reproducible; override with FUZZ_SEED/FUZZ_CASES). Exits non-zero on
# any divergence, after writing reduced reproducers to target/fuzz/ —
# promote those into tests/divergence_corpus/ when fixing the bug.
FUZZ_SEED ?= 0xD1FF
FUZZ_CASES ?= 500
fuzz:
	$(CARGO) run --release --bin fuzz_engines -- \
		--cases $(FUZZ_CASES) --seed $(FUZZ_SEED) --max-seconds 600 \
		--artifact-dir target/fuzz --quiet

# The fault-injection regime alone: every case runs the Session batch
# path under a seeded FaultPlan (injected panics, cancel/deadline fuses,
# spawn failures, snapshot IO errors) and checks the integrity invariant
# — after any fault, the session answers byte-identically to a clean
# cold session. Fixed seed; same artifact protocol as `make fuzz`.
FUZZ_FAULT_CASES ?= 200
fuzz-faults:
	$(CARGO) run --release --bin fuzz_engines -- \
		--cases $(FUZZ_FAULT_CASES) --seed $(FUZZ_SEED) --regime fault_injection \
		--max-seconds 600 --artifact-dir target/fuzz --quiet

# The service regime alone: every case derives a random multi-client
# script (interleaved queries, batches, cancels, invalidations) and
# judges the daemon against a clean single-client session — every frame
# answered, every answer byte-identical, replays deterministic. Fixed
# seed; same artifact protocol as `make fuzz`.
FUZZ_SERVICE_CASES ?= 200
fuzz-service:
	$(CARGO) run --release --bin fuzz_engines -- \
		--cases $(FUZZ_SERVICE_CASES) --seed $(FUZZ_SEED) --regime service \
		--max-seconds 600 --artifact-dir target/fuzz --quiet

bench-check:
	$(CARGO) bench --no-run

# Records the perf trajectory point: medium profile -> BENCH_report.json
# (includes the Session::run_batch scaling series at 1/2/4 threads).
bench-report:
	$(CARGO) run --release -p dynsum-bench --bin perf_report -- --profile medium

# The thread-scaling series alone, pushed to 8 workers ->
# BENCH_report_parallel.json (BENCH_report.json stays the recorded point).
bench-parallel:
	$(CARGO) run --release -p dynsum-bench --bin perf_report -- --profile medium --threads 8 --out BENCH_report_parallel.json

# The cache_pressure sweep on the small profile -> BENCH_report_cache.json.
# Exits non-zero if any swept cap point diverges from the sequential path
# (the same results_identical_vs_sequential gate CI enforces).
bench-cache:
	$(CARGO) run --release -p dynsum-bench --bin perf_report -- --profile small --threads 1 --out BENCH_report_cache.json

# The daemon under real concurrent clients: N OS threads over socketpair
# connections through one serve_pair event loop, closed-loop single
# queries -> BENCH_report_service.json (sustained q/s, p50/p99 round-trip
# latency). Exits non-zero if any wire answer diverges from a clean
# single-client session.
bench-service:
	$(CARGO) run --release -p dynsum-bench --bin bench_service -- --clients 4 --requests 100

fmt:
	$(CARGO) fmt --all

lint:
	$(CARGO) fmt --check
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# Forbid raw std::sync::atomic / std::thread outside the
# dynsum_cfl::sync facade (keeps every kernel model-checkable). The
# script self-tests by planting and detecting a raw-atomic probe.
lint-sync:
	./tools/lint_sync.sh

# Bounded schedule exploration of the five concurrency kernels plus the
# mutation seeds proving detection power (crates/modelcheck — a
# deliberately workspace-EXCLUDED crate: it turns on the cfl
# `model-check` feature, which must never unify into tier-1 builds).
# Each kernel harness explores >=1k schedules; failing schedules write
# replayable traces to target/modelcheck/ (a CI artifact). Stale traces
# from previous runs are cleared first so the artifact reflects this run.
model-check:
	rm -rf target/modelcheck
	cd crates/modelcheck && CARGO_TARGET_DIR=$(CURDIR)/target $(CARGO) test --release

clean:
	$(CARGO) clean
