# Convenience aliases; `make verify` is ROADMAP.md's tier-1 command.

CARGO ?= cargo

.PHONY: verify build test bench-check bench-report fmt lint clean

verify:
	$(CARGO) build --release && $(CARGO) test -q

build:
	$(CARGO) build --workspace --all-targets

test:
	$(CARGO) test -q

bench-check:
	$(CARGO) bench --no-run

# Records the perf trajectory point: medium profile -> BENCH_report.json.
bench-report:
	$(CARGO) run --release -p dynsum-bench --bin perf_report -- --profile medium

fmt:
	$(CARGO) fmt --all

lint:
	$(CARGO) fmt --check
	$(CARGO) clippy --workspace --all-targets -- -D warnings

clean:
	$(CARGO) clean
