# Convenience aliases; `make verify` is ROADMAP.md's tier-1 command.

CARGO ?= cargo

.PHONY: verify build test bench-check fmt lint clean

verify:
	$(CARGO) build --release && $(CARGO) test -q

build:
	$(CARGO) build --workspace --all-targets

test:
	$(CARGO) test -q

bench-check:
	$(CARGO) bench --no-run

fmt:
	$(CARGO) fmt --all

lint:
	$(CARGO) fmt --check
	$(CARGO) clippy --workspace --all-targets -- -D warnings

clean:
	$(CARGO) clean
