//! `fuzz_engines` — differential fuzzing of the four demand engines.
//!
//! ```text
//! fuzz_engines [--cases N] [--seed S] [--regime NAME] [--max-seconds T]
//!              [--artifact-dir DIR] [--no-reduce] [--quiet]
//! ```
//!
//! Generates `N` seeded random workloads across the adversarial fuzz
//! regimes (`dynsum_workloads::fuzz::fuzz_profiles`), checks every
//! query five ways (Andersen-oracle soundness, cross-engine precision
//! ordering, budget-exhaustion consistency, 1/2/4-thread `run_batch`
//! byte-identity, and — in the `fault_injection` regime —
//! fault-integrity of the session batch path under injected panics,
//! cancellations, deadlines, spawn failures and snapshot IO errors),
//! auto-reduces any divergent workload to a minimal reproducer, and
//! writes reproducers under `--artifact-dir`.
//!
//! `--regime NAME` pins every case to one regime instead of rotating;
//! `make fuzz-faults` uses it to gate the fault regime in CI.
//!
//! Exit status: 0 on a clean run, 1 if any divergence was found, 2 on
//! usage errors. `make fuzz` runs this with a fixed seed as a build
//! gate.

use std::time::{Duration, Instant};

use dynsum::workloads::fuzz::{
    fuzz_profiles, judge, observe, observe_opts_for, run_fuzz, run_fuzz_in_regime, Divergence,
    FoundDivergence, ObserveOptions,
};
use dynsum::workloads::reduce::{reduce, ReduceOptions};
use dynsum::workloads::wire::write_workload;
use dynsum::workloads::{try_generate, Workload};

const USAGE: &str = "\
usage: fuzz_engines [--cases N] [--seed S] [--regime NAME] [--max-seconds T]
                    [--artifact-dir DIR] [--no-reduce] [--quiet]
defaults: --cases 500 --seed 3405691582 --artifact-dir target/fuzz";

struct Cli {
    cases: usize,
    seed: u64,
    regime: Option<String>,
    max_seconds: Option<u64>,
    artifact_dir: String,
    reduce: bool,
    quiet: bool,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        cases: 500,
        seed: 0xCAFE_BABE,
        regime: None,
        max_seconds: None,
        artifact_dir: "target/fuzz".to_owned(),
        reduce: true,
        quiet: false,
    };
    let mut it = args.iter().map(String::as_str);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .map(str::to_owned)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag {
            "--cases" => {
                cli.cases = val("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?
            }
            "--seed" => {
                // Accept the `0x…` form the divergence artifacts print.
                let s = val("--seed")?;
                let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => s.parse(),
                };
                cli.seed = parsed.map_err(|e| format!("--seed: {e}"))?
            }
            "--regime" => cli.regime = Some(val("--regime")?),
            "--max-seconds" => {
                cli.max_seconds = Some(
                    val("--max-seconds")?
                        .parse()
                        .map_err(|e| format!("--max-seconds: {e}"))?,
                )
            }
            "--artifact-dir" => cli.artifact_dir = val("--artifact-dir")?,
            "--no-reduce" => cli.reduce = false,
            "--quiet" => cli.quiet = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(cli)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };

    // The fault regime injects panics by design; keep their unwind
    // chatter out of the log while leaving real panics loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("injected query fault"));
        if !injected {
            default_hook(info);
        }
    }));

    let pinned = cli.regime.as_deref().map(|name| {
        fuzz_profiles()
            .into_iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| {
                let known: Vec<&str> = fuzz_profiles().iter().map(|p| p.name).collect();
                eprintln!(
                    "error: unknown regime `{name}` (known: {})",
                    known.join(", ")
                );
                std::process::exit(2);
            })
    });

    let started = Instant::now();
    let deadline = cli.max_seconds.map(Duration::from_secs);
    let observe_opts = ObserveOptions::default();

    let progress = |i: usize, divergences: usize| {
        if !cli.quiet && (i + 1) % 50 == 0 {
            eprintln!(
                "fuzz_engines: {}/{} cases, {} divergence(s), {:.1}s",
                i + 1,
                cli.cases,
                divergences,
                started.elapsed().as_secs_f64()
            );
        }
        deadline.map_or(true, |d| started.elapsed() < d)
    };
    let report = match &pinned {
        Some(fp) => run_fuzz_in_regime(cli.cases, cli.seed, &observe_opts, fp, progress),
        None => run_fuzz(cli.cases, cli.seed, &observe_opts, progress),
    }
    .unwrap_or_else(|e| {
        eprintln!("error: fuzz regime rejected by generator: {e}");
        std::process::exit(2);
    });

    println!(
        "fuzz_engines: {} cases, {} queries, {} workload profiles ({}), seed {:#x}, {:.1}s",
        report.cases,
        report.queries,
        report.profiles_covered.len(),
        report
            .profiles_covered
            .iter()
            .cloned()
            .collect::<Vec<_>>()
            .join(", "),
        cli.seed,
        started.elapsed().as_secs_f64()
    );

    if report.divergences.is_empty() {
        println!("fuzz_engines: no divergences");
        return;
    }

    eprintln!(
        "fuzz_engines: {} DIVERGENCE(S) FOUND",
        report.divergences.len()
    );
    std::fs::create_dir_all(&cli.artifact_dir).ok();
    for (n, found) in report.divergences.iter().enumerate() {
        eprintln!("  [{n}] {} ({})", found.divergence, found.profile);
        let path = format!(
            "{}/divergence-{n}-{}.workload",
            cli.artifact_dir,
            found.divergence.kind.tag()
        );
        match write_artifact(found, cli.reduce) {
            Ok(text) => {
                if let Err(e) = std::fs::write(&path, &text) {
                    eprintln!("  [{n}] could not write {path}: {e}");
                } else {
                    eprintln!("  [{n}] reproducer: {path}");
                }
            }
            Err(e) => eprintln!("  [{n}] could not build reproducer: {e}"),
        }
    }
    std::process::exit(1);
}

/// Regenerates the divergent workload, reduces it (when enabled) under
/// the predicate "the same divergence kind against the same engine is
/// still present", and renders the corpus-ready artifact.
fn write_artifact(found: &FoundDivergence, do_reduce: bool) -> Result<String, String> {
    let (fp, bench, opts) = plan_for(found)?;
    let w = try_generate(bench, &opts).map_err(|e| e.to_string())?;
    // Fault regimes replay their exact injection plan while reducing.
    let probe_opts = observe_opts_for(&fp, opts.seed, &ObserveOptions::default());
    let matches = |w: &Workload| {
        judge(&observe(w, &fp.config, &probe_opts))
            .iter()
            .any(|d| same_divergence(d, &found.divergence))
    };
    let (text, note) = if do_reduce {
        let out = reduce(
            &w,
            &ReduceOptions {
                seed: opts.seed,
                ..ReduceOptions::default()
            },
            matches,
        );
        let note = format!(
            "reduced {} -> {} lines in {} predicate evals",
            out.initial_lines, out.final_lines, out.predicate_evals
        );
        (out.text, note)
    } else {
        (write_workload(&w), "unreduced (--no-reduce)".to_owned())
    };
    Ok(format!(
        "# divergence: {}\n# fuzz profile: {}\n# generator: seed={:#x} scale={} recursion_bias={} field_chain={} null_bias={}\n# engine config: budget={} max_field_depth={} max_ctx_depth={} max_refinements={} context_sensitive={} max_cached_summaries={:?}\n# {}\n{}",
        found.divergence,
        found.profile,
        opts.seed,
        opts.scale,
        opts.recursion_bias,
        opts.field_chain,
        opts.null_bias,
        fp.config.budget,
        fp.config.max_field_depth,
        fp.config.max_ctx_depth,
        fp.config.max_refinements,
        fp.config.context_sensitive,
        fp.config.max_cached_summaries,
        note,
        text
    ))
}

/// Recovers the `(regime, bench profile)` pair that produced `found` by
/// scanning the case plan for its options (the options embed the
/// per-case seed, which is unique per run).
fn plan_for(
    found: &FoundDivergence,
) -> Result<
    (
        dynsum::workloads::fuzz::FuzzProfile,
        &'static dynsum::workloads::BenchmarkProfile,
        dynsum::workloads::GeneratorOptions,
    ),
    String,
> {
    let fp = dynsum::workloads::fuzz::fuzz_profiles()
        .into_iter()
        .find(|p| p.name == found.profile)
        .ok_or_else(|| format!("unknown fuzz profile {}", found.profile))?;
    let bench = dynsum::workloads::PROFILES
        .iter()
        .find(|p| p.name == found.workload)
        .ok_or_else(|| format!("unknown workload {}", found.workload))?;
    Ok((fp, bench, found.opts))
}

fn same_divergence(a: &Divergence, b: &Divergence) -> bool {
    a.kind == b.kind && a.engine == b.engine
}
