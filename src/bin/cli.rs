//! `dynsum-cli` — analyze programs from the command line.
//!
//! ```text
//! dynsum-cli compile  <file> [--callgraph otf|cha] [--emit text|dot|stats]
//! dynsum-cli query    <file> --var NAME [NAME...] [--engine E] [--budget N]
//! dynsum-cli alias    <file> --var A B [--engine E]
//! dynsum-cli clients  <file> [--engine E]
//! dynsum-cli fmt      <file>
//! dynsum-cli motivating
//! ```
//!
//! `<file>` may be a Java-subset source file (compiled with the
//! on-the-fly call graph by default) or a `.pag` graph in the text
//! interchange format. Engines: `dynsum` (default), `norefine`,
//! `refinepts`, `stasum`.

use std::fmt::Write as _;

use dynsum::analysis::{may_alias, StaSum};
use dynsum::clients::{run_client, ClientKind};
use dynsum::pag::text::{parse_pag, write_pag};
use dynsum::pag::{Pag, ProgramInfo};
use dynsum::{
    compile_with, CallGraphMode, DemandPointsTo, DynSum, EngineConfig, NoRefine, RefinePts,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

const USAGE: &str = "\
usage:
  dynsum-cli compile  <file> [--callgraph otf|cha] [--emit text|dot|stats]
  dynsum-cli query    <file> --var NAME [NAME...] [--engine E] [--budget N]
  dynsum-cli alias    <file> --var A B [--engine E]
  dynsum-cli clients  <file> [--engine E]
  dynsum-cli fmt      <file>
  dynsum-cli motivating
engines: dynsum (default), norefine, refinepts, stasum";

/// Entire CLI as a pure function for testability: args in, rendered
/// output out.
fn run(args: &[String]) -> Result<String, String> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("compile") => cmd_compile(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("alias") => cmd_alias(&args[1..]),
        Some("clients") => cmd_clients(&args[1..]),
        Some("fmt") => cmd_fmt(&args[1..]),
        Some("motivating") => Ok(cmd_motivating()),
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("missing command".to_owned()),
    }
}

/// Parsed common flags.
struct Flags {
    file: Option<String>,
    vars: Vec<String>,
    engine: String,
    budget: u64,
    callgraph: CallGraphMode,
    emit: String,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        file: None,
        vars: Vec::new(),
        engine: "dynsum".to_owned(),
        budget: 75_000,
        callgraph: CallGraphMode::OnTheFly,
        emit: "stats".to_owned(),
    };
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--var" => {
                while let Some(v) = it.peek() {
                    if v.starts_with("--") {
                        break;
                    }
                    flags.vars.push((*it.next().unwrap()).clone());
                }
                if flags.vars.is_empty() {
                    return Err("--var expects at least one name".to_owned());
                }
            }
            "--engine" => {
                flags.engine = it
                    .next()
                    .ok_or_else(|| "--engine expects a value".to_owned())?
                    .clone();
            }
            "--budget" => {
                flags.budget = it
                    .next()
                    .ok_or_else(|| "--budget expects a value".to_owned())?
                    .parse()
                    .map_err(|e| format!("bad --budget: {e}"))?;
            }
            "--callgraph" => {
                flags.callgraph = match it
                    .next()
                    .ok_or_else(|| "--callgraph expects a value".to_owned())?
                    .as_str()
                {
                    "otf" => CallGraphMode::OnTheFly,
                    "cha" => CallGraphMode::Cha,
                    other => return Err(format!("unknown call graph mode `{other}`")),
                };
            }
            "--emit" => {
                flags.emit = it
                    .next()
                    .ok_or_else(|| "--emit expects a value".to_owned())?
                    .clone();
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`"));
            }
            path => {
                if flags.file.replace(path.to_owned()).is_some() {
                    return Err("multiple input files given".to_owned());
                }
            }
        }
    }
    Ok(flags)
}

/// Loads a program from source (`.java`-ish) or graph (`.pag`) form.
fn load(path: &str, callgraph: CallGraphMode) -> Result<(Pag, ProgramInfo), String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".pag") {
        let pag = parse_pag(&content).map_err(|e| format!("{path}: {e}"))?;
        Ok((pag, ProgramInfo::default()))
    } else {
        let compiled = compile_with(&content, callgraph)
            .map_err(|e| format!("{path}:\n{}", e.render(&content)))?;
        Ok((compiled.pag, compiled.info))
    }
}

fn build_engine<'p>(
    name: &str,
    pag: &'p Pag,
    budget: u64,
) -> Result<Box<dyn DemandPointsTo + 'p>, String> {
    let config = EngineConfig {
        budget,
        ..EngineConfig::default()
    };
    Ok(match name {
        "dynsum" => Box::new(DynSum::with_config(pag, config)),
        "norefine" => Box::new(NoRefine::with_config(pag, config)),
        "refinepts" => Box::new(RefinePts::with_config(pag, config)),
        "stasum" => Box::new(StaSum::precompute_with(pag, config, Default::default())),
        other => return Err(format!("unknown engine `{other}`")),
    })
}

fn cmd_compile(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let file = flags.file.ok_or("missing input file")?;
    let (pag, info) = load(&file, flags.callgraph)?;
    match flags.emit.as_str() {
        "text" => Ok(write_pag(&pag)),
        "dot" => Ok(dynsum::pag::to_dot(&pag)),
        "stats" => {
            let s = pag.stats();
            let mut out = String::new();
            let _ = writeln!(out, "{file}:");
            let _ = writeln!(out, "  {s}");
            let _ = writeln!(
                out,
                "  client sites: {} casts, {} derefs, {} factory candidates",
                info.casts.len(),
                info.derefs.len(),
                info.factories.len()
            );
            let violations = dynsum::pag::validate(&pag);
            let _ = writeln!(out, "  validation: {} violation(s)", violations.len());
            Ok(out)
        }
        other => Err(format!("unknown --emit `{other}` (text|dot|stats)")),
    }
}

fn cmd_query(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let file = flags.file.ok_or("missing input file")?;
    if flags.vars.is_empty() {
        return Err("query needs --var".to_owned());
    }
    let (pag, _) = load(&file, flags.callgraph)?;
    let mut engine = build_engine(&flags.engine, &pag, flags.budget)?;
    let mut out = String::new();
    for name in &flags.vars {
        let var = pag.find_var(name).ok_or_else(|| {
            format!("no variable named `{name}` (names look like `Class.method#var`)")
        })?;
        let r = engine.points_to(var);
        let labels: Vec<String> = r
            .pts
            .objects()
            .into_iter()
            .map(|o| pag.obj(o).label.clone())
            .collect();
        let _ = writeln!(
            out,
            "pointsTo({name}) = {{{}}}{} [{} edges, {} cache hits]",
            labels.join(", "),
            if r.resolved {
                ""
            } else {
                "  (budget exceeded: partial)"
            },
            r.stats.edges_traversed,
            r.stats.cache_hits
        );
    }
    let _ = writeln!(out, "summaries memorized: {}", engine.summary_count());
    Ok(out)
}

fn cmd_alias(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let file = flags.file.ok_or("missing input file")?;
    if flags.vars.len() != 2 {
        return Err("alias needs exactly two --var names".to_owned());
    }
    let (pag, _) = load(&file, flags.callgraph)?;
    let mut engine = build_engine(&flags.engine, &pag, flags.budget)?;
    let v1 = pag
        .find_var(&flags.vars[0])
        .ok_or_else(|| format!("no variable `{}`", flags.vars[0]))?;
    let v2 = pag
        .find_var(&flags.vars[1])
        .ok_or_else(|| format!("no variable `{}`", flags.vars[1]))?;
    let a = may_alias(engine.as_mut(), v1, v2);
    Ok(format!(
        "alias({}, {}) = {:?} [{} edges]\n",
        flags.vars[0], flags.vars[1], a.result, a.stats.edges_traversed
    ))
}

fn cmd_clients(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let file = flags.file.ok_or("missing input file")?;
    let (pag, info) = load(&file, flags.callgraph)?;
    if info.total_sites() == 0 {
        return Err("no client sites (did you pass a .pag without metadata?)".to_owned());
    }
    let mut out = String::new();
    for client in ClientKind::ALL {
        let mut engine = build_engine(&flags.engine, &pag, flags.budget)?;
        let report = run_client(client, &pag, &info, engine.as_mut());
        if report.queries == 0 {
            continue;
        }
        let _ = writeln!(out, "{report}");
    }
    Ok(out)
}

fn cmd_fmt(args: &[String]) -> Result<String, String> {
    let flags = parse_flags(args)?;
    let file = flags.file.ok_or("missing input file")?;
    let content = std::fs::read_to_string(&file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let tokens = dynsum::frontend::lex(&content).map_err(|e| e.render(&content))?;
    let program = dynsum::frontend::parse(tokens).map_err(|e| e.render(&content))?;
    Ok(dynsum::frontend::pretty::print_program(&program))
}

fn cmd_motivating() -> String {
    let m = dynsum::workloads::motivating_pag();
    let mut engine = DynSum::new(&m.pag);
    engine.set_tracing(true);
    let r1 = engine.points_to(m.s1);
    let t1 = engine.take_trace().expect("tracing on");
    let r2 = engine.points_to(m.s2);
    let t2 = engine.take_trace().expect("tracing on");
    let label = |r: &dynsum::QueryResult| {
        r.pts
            .objects()
            .into_iter()
            .map(|o| m.pag.obj(o).label.clone())
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "Figure 2 / Table 1 demo\n\
         pointsTo(s1) = {{{}}} in {} edges\n{}\
         pointsTo(s2) = {{{}}} in {} edges ({} summaries reused)\n{}",
        label(&r1),
        r1.stats.edges_traversed,
        t1.render(&m.pag),
        label(&r2),
        r2.stats.edges_traversed,
        t2.reuse_count(),
        t2.render(&m.pag),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    fn write_temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(format!("dynsum-cli-test-{name}"));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    const PROGRAM: &str = "
        class Box {
            Object item;
            void put(Object x) { this.item = x; }
            Object take() { return this.item; }
        }
        class Main {
            static void main() {
                Box a = new Box();
                a.put(new Main());
                Object got = a.take();
                Object alias1 = got;
                Main cast = (Main) got;
            }
        }
    ";

    #[test]
    fn compile_stats_and_text_and_dot() {
        let f = write_temp("c.java", PROGRAM);
        let out = run(&sv(&["compile", &f])).unwrap();
        assert!(out.contains("client sites"));
        assert!(out.contains("0 violation(s)"));
        let text = run(&sv(&["compile", &f, "--emit", "text"])).unwrap();
        assert!(text.starts_with("pag v1"));
        let dot = run(&sv(&["compile", &f, "--emit", "dot"])).unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn query_resolves_variables() {
        let f = write_temp("q.java", PROGRAM);
        for engine in ["dynsum", "norefine", "refinepts", "stasum"] {
            let out = run(&sv(&[
                "query",
                &f,
                "--var",
                "Main.main#got",
                "--engine",
                engine,
            ]))
            .unwrap();
            assert!(
                out.contains("pointsTo(Main.main#got) = {o"),
                "{engine}: {out}"
            );
        }
    }

    #[test]
    fn alias_command_works() {
        let f = write_temp("a.java", PROGRAM);
        let out = run(&sv(&[
            "alias",
            &f,
            "--var",
            "Main.main#got",
            "Main.main#alias1",
        ]))
        .unwrap();
        assert!(out.contains("May"), "{out}");
    }

    #[test]
    fn clients_command_reports() {
        let f = write_temp("cl.java", PROGRAM);
        let out = run(&sv(&["clients", &f])).unwrap();
        assert!(out.contains("SafeCast"));
        assert!(out.contains("queries"));
    }

    #[test]
    fn pag_round_trip_through_cli() {
        let f = write_temp("p.java", PROGRAM);
        let text = run(&sv(&["compile", &f, "--emit", "text"])).unwrap();
        let pag_file = write_temp("p.pag", &text);
        let out = run(&sv(&["query", &pag_file, "--var", "Main.main#got"])).unwrap();
        assert!(out.contains("pointsTo"));
    }

    #[test]
    fn fmt_canonicalizes_source() {
        let f = write_temp("f.java", "class   A{Object f;void m( ){this.f=null;}}");
        let out = run(&sv(&["fmt", &f])).unwrap();
        assert!(out.contains("class A {"));
        assert!(out.contains("this.f = null;"));
        // Formatting the formatted output is a fixed point.
        let f2 = write_temp("f2.java", &out);
        let out2 = run(&sv(&["fmt", &f2])).unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn motivating_subcommand_runs() {
        let out = run(&sv(&["motivating"])).unwrap();
        assert!(out.contains("pointsTo(s1) = {o26}"));
        assert!(out.contains("pointsTo(s2) = {o29}"));
        assert!(out.contains("reuse"));
    }

    #[test]
    fn helpful_errors() {
        assert!(run(&sv(&[])).is_err());
        assert!(run(&sv(&["frobnicate"])).is_err());
        assert!(run(&sv(&["query", "/nonexistent.java", "--var", "x"])).is_err());
        let f = write_temp("e.java", PROGRAM);
        let e = run(&sv(&["query", &f, "--var", "nope"])).unwrap_err();
        assert!(e.contains("no variable"));
        let e = run(&sv(&["query", &f, "--var", "x", "--engine", "magic"])).unwrap_err();
        assert!(e.contains("unknown engine"));
        let e = run(&sv(&["compile", &f, "--emit", "json"])).unwrap_err();
        assert!(e.contains("unknown --emit"));
    }

    #[test]
    fn compile_errors_render_with_caret() {
        let f = write_temp("bad.java", "class A { Vectr v; }");
        let e = run(&sv(&["compile", &f])).unwrap_err();
        assert!(e.contains("unknown class"));
        assert!(e.contains('^'), "caret rendering: {e}");
    }
}
