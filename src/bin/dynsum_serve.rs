//! `dynsum_serve` — the long-lived analysis daemon.
//!
//! ```text
//! dynsum_serve [<file>...] [--profile NAME]... [--scale F] [--seed N]
//!              [--stdio | --socket PATH]
//!              [--budget N] [--snapshot-dir DIR]
//!              [--client-budget N] [--max-deadline-ms N]
//! ```
//!
//! Each `<file>` (Java-subset source or `.pag` graph) and each
//! `--profile` (a Table 3 benchmark profile, generated at `--scale` /
//! `--seed`) becomes a named workload clients select in their `hello`
//! frame; with none given the daemon serves the paper's motivating
//! example as `motivating`. `--stdio` (the default) serves one
//! connection on stdin/stdout; `--socket` listens on a Unix socket and
//! serves every connection that arrives. See the README's "Running the
//! daemon" section for the frame grammar.

use std::path::PathBuf;

use dynsum::pag::text::parse_pag;
use dynsum::pag::Pag;
use dynsum::service::{serve_stdio, Daemon, ServedWorkload, ServiceConfig};
use dynsum::workloads::{generate, motivating_pag, GeneratorOptions, PROFILES};
use dynsum::{compile_with, CallGraphMode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        eprintln!("error: {e}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
}

const USAGE: &str = "\
usage:
  dynsum_serve [<file>...] [--profile NAME]... [--scale F] [--seed N]
               [--stdio | --socket PATH]
               [--budget N] [--snapshot-dir DIR]
               [--client-budget N] [--max-deadline-ms N]
workloads: any mix of source/.pag files and generated profiles
           (defaults to the paper's motivating example)";

enum Transport {
    Stdio,
    #[cfg_attr(not(unix), allow(dead_code))]
    Socket(PathBuf),
}

struct Flags {
    files: Vec<String>,
    profiles: Vec<String>,
    scale: f64,
    seed: u64,
    transport: Transport,
    budget: Option<u64>,
    snapshot_dir: Option<PathBuf>,
    client_budget: Option<u64>,
    max_deadline_ms: Option<u64>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        files: Vec::new(),
        profiles: Vec::new(),
        scale: 0.02,
        seed: 42,
        transport: Transport::Stdio,
        budget: None,
        snapshot_dir: None,
        client_budget: None,
        max_deadline_ms: None,
    };
    let mut it = args.iter();
    let value = |name: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{name} expects a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--profile" => flags.profiles.push(value("--profile", &mut it)?),
            "--scale" => {
                flags.scale = value("--scale", &mut it)?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                flags.seed = value("--seed", &mut it)?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--stdio" => flags.transport = Transport::Stdio,
            "--socket" => {
                flags.transport = Transport::Socket(PathBuf::from(value("--socket", &mut it)?));
            }
            "--budget" => {
                flags.budget = Some(
                    value("--budget", &mut it)?
                        .parse()
                        .map_err(|e| format!("bad --budget: {e}"))?,
                );
            }
            "--snapshot-dir" => {
                flags.snapshot_dir = Some(PathBuf::from(value("--snapshot-dir", &mut it)?));
            }
            "--client-budget" => {
                flags.client_budget = Some(
                    value("--client-budget", &mut it)?
                        .parse()
                        .map_err(|e| format!("bad --client-budget: {e}"))?,
                );
            }
            "--max-deadline-ms" => {
                flags.max_deadline_ms = Some(
                    value("--max-deadline-ms", &mut it)?
                        .parse()
                        .map_err(|e| format!("bad --max-deadline-ms: {e}"))?,
                );
            }
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            path => flags.files.push(path.to_owned()),
        }
    }
    Ok(flags)
}

/// Loads every requested workload into owned `(name, pag)` pairs the
/// daemon borrows from.
fn load_workloads(flags: &Flags) -> Result<Vec<(String, Pag)>, String> {
    let mut out = Vec::new();
    for path in &flags.files {
        let content = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let pag = if path.ends_with(".pag") {
            parse_pag(&content).map_err(|e| format!("{path}: {e}"))?
        } else {
            compile_with(&content, CallGraphMode::OnTheFly)
                .map_err(|e| format!("{path}: {e}"))?
                .pag
        };
        let name = PathBuf::from(path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.clone());
        out.push((name, pag));
    }
    for name in &flags.profiles {
        let profile = PROFILES
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| format!("unknown profile `{name}`"))?;
        let opts = GeneratorOptions {
            scale: flags.scale,
            seed: flags.seed,
            ..GeneratorOptions::default()
        };
        let workload = generate(profile, &opts);
        out.push((workload.name, workload.pag));
    }
    if out.is_empty() {
        out.push(("motivating".to_owned(), motivating_pag().pag));
    }
    Ok(out)
}

fn run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let owned = load_workloads(&flags)?;
    let workloads: Vec<ServedWorkload<'_>> = owned
        .iter()
        .map(|(name, pag)| ServedWorkload { name, pag })
        .collect();
    let mut config = ServiceConfig {
        snapshot_dir: flags.snapshot_dir.clone(),
        ..ServiceConfig::default()
    };
    if let Some(budget) = flags.budget {
        config.engine_config.budget = budget;
    }
    if let Some(allowance) = flags.client_budget {
        config.max_client_budget = allowance;
    }
    config.max_deadline_ms = flags.max_deadline_ms;
    let mut daemon = Daemon::new(workloads, config);
    match &flags.transport {
        Transport::Stdio => {
            serve_stdio(&mut daemon);
            Ok(())
        }
        #[cfg(unix)]
        Transport::Socket(path) => {
            dynsum::service::serve_unix(&mut daemon, path).map_err(|e| format!("socket: {e}"))
        }
        #[cfg(not(unix))]
        Transport::Socket(_) => Err("--socket requires a Unix platform".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing_covers_every_knob() {
        let args: Vec<String> = [
            "--profile",
            "jack",
            "--scale",
            "0.01",
            "--seed",
            "7",
            "--socket",
            "/tmp/d.sock",
            "--budget",
            "5000",
            "--snapshot-dir",
            "/tmp/snaps",
            "--client-budget",
            "100000",
            "--max-deadline-ms",
            "250",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let flags = parse_flags(&args).expect("valid flags");
        assert_eq!(flags.profiles, ["jack"]);
        assert_eq!(flags.scale, 0.01);
        assert_eq!(flags.seed, 7);
        assert!(matches!(flags.transport, Transport::Socket(_)));
        assert_eq!(flags.budget, Some(5000));
        assert_eq!(flags.snapshot_dir, Some(PathBuf::from("/tmp/snaps")));
        assert_eq!(flags.client_budget, Some(100_000));
        assert_eq!(flags.max_deadline_ms, Some(250));
    }

    #[test]
    fn unknown_flags_and_profiles_are_rejected() {
        let bad = ["--bogus".to_owned()];
        assert!(parse_flags(&bad).is_err());
        let flags = parse_flags(&["--profile".to_owned(), "nope".to_owned()]).expect("parses");
        assert!(load_workloads(&flags).unwrap_err().contains("nope"));
    }

    #[test]
    fn default_workload_is_the_motivating_example() {
        let flags = parse_flags(&[]).expect("empty is fine");
        let loaded = load_workloads(&flags).expect("loads");
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].0, "motivating");
        assert!(loaded[0].1.num_vars() > 0);
    }
}
