//! # dynsum — on-demand dynamic summary-based points-to analysis
//!
//! A from-scratch Rust reproduction of *On-Demand Dynamic Summary-based
//! Points-to Analysis* (Lei Shang, Xinwei Xie, Jingling Xue — CGO 2012):
//! context-sensitive, field-sensitive, demand-driven points-to analysis
//! formulated as CFL-reachability over Pointer Assignment Graphs,
//! accelerated by context-independent method summaries computed
//! dynamically by a Partial Points-To Analysis (PPTA).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`pag`] | `dynsum-pag` | Pointer Assignment Graphs, class hierarchy, text format |
//! | [`cfl`] | `dynsum-cfl` | interned stacks, budgets, traces, query results |
//! | [`frontend`] | `dynsum-frontend` | Java-subset compiler → PAG |
//! | [`andersen`] | `dynsum-andersen` | exhaustive inclusion-based oracle |
//! | [`analysis`] | `dynsum-core` | NOREFINE, REFINEPTS, **DYNSUM**, STASUM |
//! | [`clients`] | `dynsum-clients` | SafeCast, NullDeref, FactoryM |
//! | [`service`] | `dynsum-service` | multi-tenant analysis daemon, wire protocol, transports |
//! | [`workloads`] | `dynsum-workloads` | Table 3 profiles, generator, Figure 2 |
//!
//! The most common entry points are re-exported at the top level.
//!
//! ## Example: source to points-to set
//!
//! ```
//! use dynsum::{compile, DemandPointsTo, DynSum};
//!
//! let program = "
//!     class Box {
//!         Object item;
//!         void put(Object x) { this.item = x; }
//!         Object take() { return this.item; }
//!     }
//!     class Main {
//!         static void main() {
//!             Box b = new Box();
//!             b.put(new Main());
//!             Object got = b.take();
//!         }
//!     }
//! ";
//! let compiled = compile(program)?;
//! let mut engine = DynSum::new(&compiled.pag);
//! let got = compiled.pag.find_var("Main.main#got").expect("var exists");
//! let result = engine.points_to(got);
//! assert!(result.resolved);
//! assert_eq!(result.pts.objects().len(), 1);
//! # Ok::<(), dynsum::CompileError>(())
//! ```
//!
//! ## Example: a shared session serving a parallel query batch
//!
//! A [`Session`] freezes the shareable analysis state (PAG, config, the
//! summary cache) and hands out cheap `Send` handles; `run_batch` fans a
//! query batch across worker threads with results byte-identical to
//! sequential execution:
//!
//! ```
//! use dynsum::{compile, DemandPointsTo, EngineKind, Session, SessionQuery};
//!
//! let program = "
//!     class Box {
//!         Object item;
//!         void put(Object x) { this.item = x; }
//!         Object take() { return this.item; }
//!     }
//!     class Main {
//!         static void main() {
//!             Box b = new Box();
//!             b.put(new Main());
//!             Object got = b.take();
//!         }
//!     }
//! ";
//! let compiled = compile(program)?;
//! let mut session = Session::new(&compiled.pag, EngineKind::DynSum);
//!
//! // A handle is a full DemandPointsTo engine over the shared state.
//! let got = compiled.pag.find_var("Main.main#got").expect("var exists");
//! let mut handle = session.handle();
//! assert!(handle.points_to(got).resolved);
//!
//! // Batches fan out across scoped threads; summary shards merge back
//! // on join, so later batches start warm.
//! let queries: Vec<SessionQuery> = compiled
//!     .info
//!     .derefs
//!     .iter()
//!     .map(|d| SessionQuery::new(d.base))
//!     .collect();
//! let results = session.run_batch(&queries, 2);
//! assert_eq!(results.len(), queries.len());
//! assert!(results.iter().all(|r| r.resolved));
//! assert!(session.summary_count() > 0);
//! # Ok::<(), dynsum::CompileError>(())
//! ```
//!
//! ## Example: a warm process restart from a snapshot
//!
//! A session's summary-cache working set can be persisted and restored
//! across process restarts ([`Session::save_snapshot`] /
//! [`Session::load_snapshot`]); stale or corrupt snapshots degrade to a
//! cold start instead of corrupting results (see
//! [`analysis::snapshot`]):
//!
//! ```
//! use dynsum::{compile, DemandPointsTo, EngineConfig, EngineKind, Session};
//!
//! let program = "
//!     class Box {
//!         Object item;
//!         void put(Object x) { this.item = x; }
//!         Object take() { return this.item; }
//!     }
//!     class Main {
//!         static void main() {
//!             Box b = new Box();
//!             b.put(new Main());
//!             Object got = b.take();
//!         }
//!     }
//! ";
//! let compiled = compile(program)?;
//! let got = compiled.pag.find_var("Main.main#got").expect("var exists");
//!
//! // Warm a session, then persist its working set (any io::Write).
//! let mut session = Session::new(&compiled.pag, EngineKind::DynSum);
//! session.run_batch_vars(&[got], 1);
//! let mut snapshot = Vec::new();
//! session.save_snapshot(&mut snapshot)?;
//!
//! // "Restart": the restored session answers its first query from the
//! // snapshot — byte-identical to a cold run, minus the recomputation.
//! let (mut warm, load) = Session::load_snapshot(
//!     &snapshot[..],
//!     &compiled.pag,
//!     EngineKind::DynSum,
//!     EngineConfig::default(),
//! );
//! assert!(load.is_warm());
//! let result = warm.handle().points_to(got);
//! assert!(result.resolved && result.stats.cache_hits > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Pointer Assignment Graph representation (`dynsum-pag`).
pub use dynsum_pag as pag;

/// CFL-reachability machinery (`dynsum-cfl`).
pub use dynsum_cfl as cfl;

/// Java-subset frontend (`dynsum-frontend`).
pub use dynsum_frontend as frontend;

/// Andersen-style whole-program analysis (`dynsum-andersen`).
pub use dynsum_andersen as andersen;

/// The demand-driven engines (`dynsum-core`).
pub use dynsum_core as analysis;

/// The evaluation clients (`dynsum-clients`).
pub use dynsum_clients as clients;

/// The multi-tenant analysis daemon (`dynsum-service`).
pub use dynsum_service as service;

/// Benchmark profiles and generators (`dynsum-workloads`).
pub use dynsum_workloads as workloads;

pub use dynsum_andersen::Andersen;
pub use dynsum_cfl::{
    Budget, CancelToken, Interrupt, Outcome, PointsToSet, QueryControl, QueryResult, Ticket,
};
pub use dynsum_clients::{
    run_batches, run_batches_parallel, run_client, split_batches, BatchReport, ClientKind,
    ClientReport,
};
pub use dynsum_core::{
    pag_fingerprint, BatchControl, CacheStats, DemandPointsTo, DynSum, EngineConfig, EngineKind,
    FaultPlan, NoRefine, QueryHandle, RefinePts, Session, SessionHealth, SessionQuery,
    SnapshotLoad, SnapshotReject, StaSum, SummaryShard, SNAPSHOT_VERSION,
};
pub use dynsum_frontend::{compile, compile_with, CallGraphMode, CompileError};
pub use dynsum_pag::{Pag, PagBuilder};
