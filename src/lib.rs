//! # dynsum — on-demand dynamic summary-based points-to analysis
//!
//! A from-scratch Rust reproduction of *On-Demand Dynamic Summary-based
//! Points-to Analysis* (Lei Shang, Xinwei Xie, Jingling Xue — CGO 2012):
//! context-sensitive, field-sensitive, demand-driven points-to analysis
//! formulated as CFL-reachability over Pointer Assignment Graphs,
//! accelerated by context-independent method summaries computed
//! dynamically by a Partial Points-To Analysis (PPTA).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`pag`] | `dynsum-pag` | Pointer Assignment Graphs, class hierarchy, text format |
//! | [`cfl`] | `dynsum-cfl` | interned stacks, budgets, traces, query results |
//! | [`frontend`] | `dynsum-frontend` | Java-subset compiler → PAG |
//! | [`andersen`] | `dynsum-andersen` | exhaustive inclusion-based oracle |
//! | [`analysis`] | `dynsum-core` | NOREFINE, REFINEPTS, **DYNSUM**, STASUM |
//! | [`clients`] | `dynsum-clients` | SafeCast, NullDeref, FactoryM |
//! | [`workloads`] | `dynsum-workloads` | Table 3 profiles, generator, Figure 2 |
//!
//! The most common entry points are re-exported at the top level.
//!
//! ## Example: source to points-to set
//!
//! ```
//! use dynsum::{compile, DemandPointsTo, DynSum};
//!
//! let program = "
//!     class Box {
//!         Object item;
//!         void put(Object x) { this.item = x; }
//!         Object take() { return this.item; }
//!     }
//!     class Main {
//!         static void main() {
//!             Box b = new Box();
//!             b.put(new Main());
//!             Object got = b.take();
//!         }
//!     }
//! ";
//! let compiled = compile(program)?;
//! let mut engine = DynSum::new(&compiled.pag);
//! let got = compiled.pag.find_var("Main.main#got").expect("var exists");
//! let result = engine.points_to(got);
//! assert!(result.resolved);
//! assert_eq!(result.pts.objects().len(), 1);
//! # Ok::<(), dynsum::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Pointer Assignment Graph representation (`dynsum-pag`).
pub use dynsum_pag as pag;

/// CFL-reachability machinery (`dynsum-cfl`).
pub use dynsum_cfl as cfl;

/// Java-subset frontend (`dynsum-frontend`).
pub use dynsum_frontend as frontend;

/// Andersen-style whole-program analysis (`dynsum-andersen`).
pub use dynsum_andersen as andersen;

/// The demand-driven engines (`dynsum-core`).
pub use dynsum_core as analysis;

/// The evaluation clients (`dynsum-clients`).
pub use dynsum_clients as clients;

/// Benchmark profiles and generators (`dynsum-workloads`).
pub use dynsum_workloads as workloads;

pub use dynsum_andersen::Andersen;
pub use dynsum_cfl::{Budget, PointsToSet, QueryResult};
pub use dynsum_core::{DemandPointsTo, DynSum, EngineConfig, NoRefine, RefinePts, StaSum};
pub use dynsum_frontend::{compile, compile_with, CallGraphMode, CompileError};
pub use dynsum_pag::{Pag, PagBuilder};
