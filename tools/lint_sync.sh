#!/usr/bin/env bash
# lint-sync — forbid raw `std::sync::atomic` / `std::thread` outside the
# `dynsum_cfl::sync` facade (crates/cfl/src/sync.rs).
#
# Every concurrency kernel in the workspace must go through the facade
# so the model-check feature can swap it onto the instrumented loom-shim
# types; a raw import silently escapes schedule exploration. See
# docs/ARCHITECTURE.md, "Concurrency model & verification".
#
# Scans crates/, src/, examples/, tests/ (vendor/ is exempt: the shims
# themselves must build on std). Exits non-zero listing any violation.
#
# Every run also executes a self-test: a temporary probe file with a raw
# atomic import is planted in a scanned directory and the scan must
# reject it — so a silently broken grep can never report a green gate.

set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

facade='crates/cfl/src/sync.rs'
pattern='std::(sync::atomic|thread)\b'

scan() {
    # || true: grep exits 1 on "no matches", which is our success case.
    grep -RInE "$pattern" --include='*.rs' crates src examples tests 2>/dev/null \
        | grep -v "^$facade:" \
        | grep -v '/target/' || true
}

# --- self-test: the gate must reject a raw-atomic probe -------------------
probe='tests/__lint_sync_probe.rs'
cleanup() { rm -f "$probe"; }
trap cleanup EXIT
cat > "$probe" <<'EOF'
// lint-sync self-test probe (deleted after the run; never compiled).
use std::sync::atomic::AtomicBool;
EOF
if ! scan | grep -q "^$probe:"; then
    echo "lint-sync: SELF-TEST FAILED — the scan did not flag the probe ($probe)" >&2
    exit 2
fi
cleanup
trap - EXIT

# --- the actual gate ------------------------------------------------------
violations="$(scan)"
if [ -n "$violations" ]; then
    echo "lint-sync: raw std::sync::atomic / std::thread outside the facade:" >&2
    echo "$violations" >&2
    echo >&2
    echo "Import these through dynsum_cfl::sync (crates/cfl/src/sync.rs) instead," >&2
    echo "so the concurrency stays visible to 'make model-check'." >&2
    exit 1
fi
echo "lint-sync: ok (facade: $facade; self-test passed)"
