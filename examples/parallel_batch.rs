//! Serve a NullDeref query stream from a shared `Session` at 1, 2 and 4
//! worker threads, verifying that every thread count produces the same
//! verdicts (and the same summary cache) before comparing throughput —
//! a miniature of the `session_scaling` series in `BENCH_report.json`.
//!
//! Run with: `cargo run --release --example parallel_batch`

use std::time::Instant;

use dynsum::{run_batches_parallel, ClientKind, EngineKind, Session};
use dynsum_workloads::{generate, BenchmarkProfile, GeneratorOptions};

fn main() {
    let profile = BenchmarkProfile::find("soot-c").expect("profile exists");
    let workload = generate(
        profile,
        &GeneratorOptions {
            scale: 0.2,
            seed: 0xD45,
            ..GeneratorOptions::default()
        },
    );
    println!(
        "workload {}: {} NullDeref query sites",
        workload.name,
        workload.info.derefs.len()
    );

    let mut verdicts: Option<(usize, usize, usize)> = None;
    let mut baseline_qps = 0.0;
    for threads in [1, 2, 4] {
        // A fresh session per thread count: same cold start, so the
        // wall-clock ratio is the parallel speedup.
        let mut session = Session::new(&workload.pag, EngineKind::DynSum);
        let started = Instant::now();
        let batches = run_batches_parallel(
            ClientKind::NullDeref,
            &workload.info,
            &mut session,
            10,
            threads,
        );
        let secs = started.elapsed().as_secs_f64();

        let proven: usize = batches.iter().map(|b| b.report.proven).sum();
        let refuted: usize = batches.iter().map(|b| b.report.refuted).sum();
        let unresolved: usize = batches.iter().map(|b| b.report.unresolved).sum();
        let queries: usize = batches.iter().map(|b| b.report.queries).sum();
        let qps = queries as f64 / secs;
        if threads == 1 {
            baseline_qps = qps;
        }
        println!(
            "{threads} thread(s): {queries} queries in {:>6.1} ms — {:>8.0} q/s ({:.2}x), \
             {} summaries, {proven} proven / {refuted} refuted / {unresolved} unresolved",
            secs * 1e3,
            qps,
            qps / baseline_qps,
            session.summary_count(),
        );

        // Deterministic accounting: every thread count must agree.
        match verdicts {
            None => verdicts = Some((proven, refuted, unresolved)),
            Some(expected) => assert_eq!(
                (proven, refuted, unresolved),
                expected,
                "parallel batches must match the sequential verdicts"
            ),
        }
    }
}
