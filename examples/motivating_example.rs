//! The paper's motivating example (Figure 2 / Table 1): resolve `s1`
//! and `s2` with DYNSUM and print the traversal traces, showing the
//! summary reuse between the two queries.
//!
//! Run with: `cargo run --example motivating_example`

use dynsum::{DemandPointsTo, DynSum};
use dynsum_workloads::motivating_pag;

fn main() {
    let m = motivating_pag();
    println!(
        "Figure 2 PAG: {} methods, {} nodes, {} edges",
        m.pag.num_methods(),
        m.pag.num_nodes(),
        m.pag.num_edges()
    );

    let mut engine = DynSum::new(&m.pag);
    engine.set_tracing(true);

    // Query s1 (paper: 23 steps, answer {o26}).
    let r1 = engine.points_to(m.s1);
    let t1 = engine.take_trace().expect("tracing on");
    println!(
        "\n-- pointsTo(s1): {} driver steps, {} edges --",
        t1.len(),
        r1.stats.edges_traversed
    );
    print!("{}", t1.render(&m.pag));
    let objs1: Vec<_> = r1
        .pts
        .objects()
        .into_iter()
        .map(|o| m.pag.obj(o).label.clone())
        .collect();
    println!("pts(s1) = {{{}}}   (paper: {{o26}})", objs1.join(", "));

    // Query s2 (paper: 15 steps thanks to reuse, answer {o29}).
    let r2 = engine.points_to(m.s2);
    let t2 = engine.take_trace().expect("tracing on");
    println!(
        "\n-- pointsTo(s2): {} driver steps, {} edges, {} summaries reused --",
        t2.len(),
        r2.stats.edges_traversed,
        t2.reuse_count()
    );
    print!("{}", t2.render(&m.pag));
    let objs2: Vec<_> = r2
        .pts
        .objects()
        .into_iter()
        .map(|o| m.pag.obj(o).label.clone())
        .collect();
    println!("pts(s2) = {{{}}}   (paper: {{o29}})", objs2.join(", "));

    println!(
        "\nreuse effect: s2 traversed {} edges vs s1's {} ({}% saved)",
        r2.stats.edges_traversed,
        r1.stats.edges_traversed,
        (100 - 100 * r2.stats.edges_traversed / r1.stats.edges_traversed.max(1))
    );
}
