//! Export pipeline: compile a program, dump its PAG in the text
//! interchange format and as Graphviz DOT, read the text form back, and
//! verify the analyses see the same graph.
//!
//! Run with: `cargo run --example export_graph`

use dynsum::{compile, DemandPointsTo, DynSum};
use dynsum_pag::text::{parse_pag, write_pag};
use dynsum_workloads::MOTIVATING_SOURCE;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compiled = compile(MOTIVATING_SOURCE)?;

    // Text interchange format: line-oriented, diffable, re-parseable.
    let text = write_pag(&compiled.pag);
    println!(
        "--- text export (first 20 lines of {} total) ---",
        text.lines().count()
    );
    for line in text.lines().take(20) {
        println!("{line}");
    }

    // Round trip.
    let back = parse_pag(&text)?;
    assert_eq!(back.num_edges(), compiled.pag.num_edges());
    assert_eq!(back.num_vars(), compiled.pag.num_vars());
    println!("\nround trip ok: {} edges preserved", back.num_edges());

    // The re-imported graph answers queries identically.
    let v = compiled.pag.find_var("Main.main#s1").expect("s1 exists");
    let v_back = back.find_var("Main.main#s1").expect("s1 survives export");
    let mut e1 = DynSum::new(&compiled.pag);
    let mut e2 = DynSum::new(&back);
    let o1 = e1.points_to(v).pts.objects();
    let o2 = e2.points_to(v_back).pts.objects();
    assert_eq!(o1.len(), o2.len());
    println!(
        "analysis agrees on the re-imported graph ({} objects)",
        o1.len()
    );

    // DOT export for visual inspection (paper's Figure 2 style).
    let dot = dynsum_pag::to_dot(&compiled.pag);
    println!(
        "\n--- DOT export: {} lines (render with `dot -Tsvg`) ---",
        dot.lines().count()
    );
    Ok(())
}
