//! The paper's JIT/IDE regime across a process restart: serve a query
//! stream, persist the summary-cache working set with
//! `Session::save_snapshot`, then "restart" and load it back — the first
//! batch of the new process runs warm (answered from restored summaries)
//! with results byte-identical to a cold start. Ends with the rejection
//! matrix in action: corrupt bytes and mismatched configurations degrade
//! to clean cold starts instead of corrupting results.
//!
//! Run with: `cargo run --release --example warm_restart`

use std::time::Instant;

use dynsum::cfl::{CtxId, QueryResult};
use dynsum::{EngineConfig, EngineKind, Session, SessionQuery, SnapshotLoad};
use dynsum_clients::{queries_for, split_batches, ClientKind};
use dynsum_workloads::{generate, BenchmarkProfile, GeneratorOptions};

fn main() {
    let profile = BenchmarkProfile::find("soot-c").expect("profile exists");
    let workload = generate(
        profile,
        &GeneratorOptions {
            scale: 0.2,
            seed: 0x5EED,
            ..GeneratorOptions::default()
        },
    );
    let stream = queries_for(ClientKind::NullDeref, &workload.info);
    let first_batch: Vec<SessionQuery<'_>> = split_batches(stream.clone(), 10)
        .into_iter()
        .next()
        .expect("non-empty stream")
        .iter()
        .map(|q| SessionQuery::new(q.var))
        .collect();
    println!(
        "workload {}: {} NullDeref query sites, first batch {}",
        workload.name,
        stream.len(),
        first_batch.len()
    );

    // ---- process 1: serve the whole stream, then persist -----------------
    let mut session = Session::new(&workload.pag, EngineKind::DynSum);
    for batch in split_batches(stream, 10) {
        let sq: Vec<SessionQuery<'_>> = batch.iter().map(|q| SessionQuery::new(q.var)).collect();
        session.run_batch(&sq, 1);
    }
    let path = std::env::temp_dir().join("dynsum_warm_restart.snap");
    let mut file = std::fs::File::create(&path).expect("temp file");
    session.save_snapshot(&mut file).expect("snapshot written");
    drop(file);
    let bytes = std::fs::metadata(&path).expect("snapshot exists").len();
    println!(
        "process 1: {} summaries cached -> {} bytes at {}",
        session.summary_count(),
        bytes,
        path.display()
    );

    // ---- process 2 (simulated): cold vs warm first batch ------------------
    let cold_started = Instant::now();
    let mut cold = Session::new(&workload.pag, EngineKind::DynSum);
    let cold_results = cold.run_batch(&first_batch, 1);
    let cold_ms = cold_started.elapsed().as_secs_f64() * 1e3;

    let load_started = Instant::now();
    let file = std::fs::File::open(&path).expect("snapshot readable");
    let (mut warm, load) = Session::load_snapshot(
        file,
        &workload.pag,
        EngineKind::DynSum,
        EngineConfig::default(),
    );
    let load_ms = load_started.elapsed().as_secs_f64() * 1e3;
    let warm_started = Instant::now();
    let warm_results = warm.run_batch(&first_batch, 1);
    let warm_ms = warm_started.elapsed().as_secs_f64() * 1e3;

    let restored = match load {
        SnapshotLoad::Warm { summaries, stacks } => {
            println!(
                "process 2: restored {summaries} summaries / {stacks} field stacks \
                 in {load_ms:.2} ms (one-time restart cost)"
            );
            summaries
        }
        SnapshotLoad::Cold(reason) => panic!("snapshot should load: {reason}"),
    };
    assert_eq!(restored, session.summary_count(), "working set intact");
    println!(
        "first batch cold: {cold_ms:>7.2} ms | warm from snapshot: {warm_ms:>7.2} ms ({:.1}x)",
        cold_ms / warm_ms
    );
    let hits: u64 = warm_results.iter().map(|r| r.stats.cache_hits).sum();
    assert!(
        hits > 0,
        "warm batch must be served from restored summaries"
    );

    // Outcome-invisible: the warm restart answers byte-identically.
    assert_eq!(cold_results.len(), warm_results.len());
    for (c, w) in cold_results.iter().zip(&warm_results) {
        assert_eq!(fingerprint(c), fingerprint(w), "warm must equal cold");
    }
    println!(
        "all {} first-batch results identical cold vs warm",
        warm_results.len()
    );

    // ---- the rejection matrix: bad snapshots degrade to cold starts ------
    let mut snapshot = std::fs::read(&path).expect("snapshot readable");
    let mid = snapshot.len() / 2;
    snapshot[mid] ^= 0xFF; // bit rot in the payload
    let (bitrot, load) = Session::load_snapshot(
        &snapshot[..],
        &workload.pag,
        EngineKind::DynSum,
        EngineConfig::default(),
    );
    println!(
        "corrupted payload  -> cold start ({}), {} summaries",
        load.reject().expect("rejected"),
        bitrot.summary_count()
    );
    assert!(!load.is_warm() && bitrot.summary_count() == 0);

    let other_config = EngineConfig {
        budget: 5_000,
        ..EngineConfig::default()
    };
    let file = std::fs::File::open(&path).expect("snapshot readable");
    let (_, load) = Session::load_snapshot(file, &workload.pag, EngineKind::DynSum, other_config);
    println!(
        "different budget   -> cold start ({})",
        load.reject().expect("rejected")
    );
    assert!(!load.is_warm());

    let _ = std::fs::remove_file(&path);
}

/// The byte-level identity the snapshot guarantees: resolution flag plus
/// the sorted `(object, allocation context)` pairs.
fn fingerprint(r: &QueryResult) -> (bool, Vec<(dynsum::pag::ObjId, CtxId)>) {
    (r.resolved, r.pts.iter().collect())
}
