//! Example 10: talking to the analysis daemon over the wire.
//!
//! Everything earlier examples did in-process — sessions, batches,
//! snapshots, cancellation — is available to *other* processes through
//! `dynsum_serve`'s line-delimited JSON protocol. This example runs the
//! daemon's serve loop on a thread over a socketpair (exactly how the
//! binary serves stdio, minus the process boundary) and walks the whole
//! client lifecycle:
//!
//! 1. `hello` — negotiate engine + workload, cold the first time;
//! 2. `batch` — resolve the motivating example's two queries;
//! 3. a long batch with a racing `cancel` — the round-robin scheduler
//!    answers with whatever mix of resolved/cancelled the race produced;
//! 4. `save_snapshot` + `shutdown`;
//! 5. a second daemon over the same snapshot directory — `hello` now
//!    reports a **warm** session, and the same queries return
//!    byte-identical fingerprints without recomputation.
//!
//! Run with: `cargo run --example service_client`

fn main() {
    example::run();
}

#[cfg(not(unix))]
mod example {
    pub fn run() {
        println!("service_client: requires a Unix platform (socketpair transport)");
    }
}

#[cfg(unix)]
mod example {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    use dynsum::service::{serve_pair, Daemon, Json, ServedWorkload, ServiceConfig};
    use dynsum::workloads::motivating_pag;

    /// A minimal protocol client: frames out, lines in.
    struct Client {
        writer: UnixStream,
        reader: BufReader<UnixStream>,
    }

    impl Client {
        fn over(stream: UnixStream) -> Client {
            let reader = BufReader::new(stream.try_clone().expect("clone socket"));
            Client {
                writer: stream,
                reader,
            }
        }

        fn send(&mut self, frame: &str) {
            writeln!(self.writer, "{frame}").expect("daemon is listening");
        }

        /// Reads and parses one response frame.
        fn recv(&mut self) -> Json {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("daemon answered");
            dynsum::service::json::parse(line.trim_end()).expect("daemon speaks valid JSON")
        }
    }

    fn ok(frame: &Json) -> bool {
        frame.get("ok").and_then(Json::as_bool) == Some(true)
    }

    pub fn run() {
        let m = motivating_pag();
        let snapshot_dir =
            std::env::temp_dir().join(format!("dynsum-service-demo-{}", std::process::id()));
        std::fs::create_dir_all(&snapshot_dir).expect("temp dir");
        let config = ServiceConfig {
            snapshot_dir: Some(snapshot_dir.clone()),
            ..ServiceConfig::default()
        };

        println!("== round 1: cold daemon ==");
        let cold = round(&m, &config, true);
        println!(
            "== round 2: warm restart from {} ==",
            snapshot_dir.display()
        );
        let warm = round(&m, &config, false);
        assert_eq!(
            cold, warm,
            "warm restart answers must be byte-identical to the cold run"
        );
        println!("fingerprints identical across the restart: {cold:?}");

        let _ = std::fs::remove_dir_all(&snapshot_dir);
    }

    /// One daemon lifetime; returns the two motivating-query
    /// fingerprints.
    fn round(
        m: &dynsum::workloads::Motivating,
        config: &ServiceConfig,
        expect_cold: bool,
    ) -> Vec<String> {
        let (client_half, server_half) = UnixStream::pair().expect("socketpair");
        let mut fingerprints = Vec::new();
        dynsum_cfl::sync::thread::scope(|scope| {
            scope.spawn(|| {
                let mut daemon = Daemon::new(
                    vec![ServedWorkload {
                        name: "motivating",
                        pag: &m.pag,
                    }],
                    config.clone(),
                );
                let reader = server_half.try_clone().expect("clone socket");
                serve_pair(&mut daemon, vec![(reader, server_half)]);
            });

            let mut c = Client::over(client_half);

            // 1. Negotiate. The daemon reports whether the session came
            //    up warm from the snapshot directory.
            c.send(r#"{"op":"hello","id":1,"name":"example","engine":"dynsum","workload":"motivating"}"#);
            let hello = c.recv();
            assert!(ok(&hello), "hello failed: {hello:?}");
            let is_warm = hello.get("warm").and_then(Json::as_bool) == Some(true);
            println!(
                "hello: engine={} warm={} warm_summaries={}",
                hello.get("engine").and_then(Json::as_str).unwrap_or("?"),
                is_warm,
                hello
                    .get("warm_summaries")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
            );
            assert_eq!(is_warm, !expect_cold, "snapshot warm-start state");

            // 2. The paper's two queries, as one batch.
            c.send(&format!(
                r#"{{"op":"batch","id":2,"vars":[{},{}]}}"#,
                m.s1.as_raw(),
                m.s2.as_raw()
            ));
            let batch = c.recv();
            assert!(ok(&batch), "batch failed: {batch:?}");
            for result in batch
                .get("results")
                .and_then(Json::as_arr)
                .expect("results array")
            {
                let outcome = result.get("outcome").and_then(Json::as_str).unwrap_or("?");
                let fp = result
                    .get("fingerprint")
                    .and_then(Json::as_str)
                    .unwrap_or("?");
                println!("  query: outcome={outcome} fingerprint={fp}");
                assert_eq!(outcome, "resolved");
                fingerprints.push(fp.to_owned());
            }

            // 3. A long batch with a racing cancel: queries already run
            //    keep their answers, the rest come back "cancelled".
            //    Either way the connection stays live and the scheduler
            //    keeps other clients' queries flowing.
            let vars: Vec<String> = (0..100)
                .map(|i| {
                    if i % 2 == 0 {
                        m.s1.as_raw().to_string()
                    } else {
                        m.s2.as_raw().to_string()
                    }
                })
                .collect();
            c.send(&format!(
                r#"{{"op":"batch","id":3,"vars":[{}]}}"#,
                vars.join(",")
            ));
            c.send(r#"{"op":"cancel","id":4,"target":3}"#);
            let (mut resolved, mut cancelled) = (0u32, 0u32);
            for _ in 0..2 {
                let frame = c.recv();
                let id = frame.get("id").and_then(Json::as_u64);
                if id == Some(3) {
                    for r in frame.get("results").and_then(Json::as_arr).unwrap_or(&[]) {
                        match r.get("outcome").and_then(Json::as_str) {
                            Some("cancelled") => cancelled += 1,
                            _ => resolved += 1,
                        }
                    }
                } else {
                    assert!(ok(&frame), "cancel ack failed: {frame:?}");
                }
            }
            println!("cancelled batch: {resolved} answered, {cancelled} cancelled");
            assert_eq!(resolved + cancelled, 100);

            // 4. Health, then persist the working set for round 2.
            c.send(r#"{"op":"health","id":5}"#);
            let health = c.recv();
            assert!(ok(&health), "health failed: {health:?}");
            let client_stats = health.get("client").expect("client counters");
            println!(
                "health: queries={} cancelled={} budget_left={}",
                client_stats
                    .get("queries")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                client_stats
                    .get("cancelled")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                client_stats
                    .get("budget_left")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
            );

            c.send(r#"{"op":"save_snapshot","id":6}"#);
            let saved = c.recv();
            assert!(ok(&saved), "save_snapshot failed: {saved:?}");
            println!(
                "snapshot: {}",
                saved.get("path").and_then(Json::as_str).unwrap_or("?")
            );

            c.send(r#"{"op":"shutdown","id":7}"#);
            let bye = c.recv();
            assert!(ok(&bye), "shutdown failed: {bye:?}");
        });
        fingerprints
    }
}
