//! Generate the nine-benchmark synthetic suite and run a miniature of
//! the paper's evaluation: per-benchmark statistics (Table 3 shape) and
//! DYNSUM-vs-REFINEPTS edge speedups (Table 4 shape).
//!
//! Run with: `cargo run --release --example benchmark_suite [-- scale]`

use dynsum::EngineConfig;
use dynsum_clients::{run_client, ClientKind};
use dynsum_core::{DynSum, RefinePts};
use dynsum_workloads::{generate, GeneratorOptions, PROFILES};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);
    let opts = GeneratorOptions {
        scale,
        ..GeneratorOptions::default()
    };
    println!(
        "{:<8} {:>7} {:>7} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "bench", "nodes", "edges", "locality", "paper", "SafeCast", "NullDrf", "FactoryM"
    );
    for profile in &PROFILES {
        let w = generate(profile, &opts);
        let s = w.pag.stats();
        let mut speedups = Vec::new();
        for client in ClientKind::ALL {
            let config = EngineConfig::default();
            let mut dynsum = DynSum::with_config(&w.pag, config);
            let mut refine = RefinePts::with_config(&w.pag, config);
            let rd = run_client(client, &w.pag, &w.info, &mut dynsum);
            let rr = run_client(client, &w.pag, &w.info, &mut refine);
            let speedup = rr.stats.edges_traversed as f64 / rd.stats.edges_traversed.max(1) as f64;
            speedups.push(format!("{speedup:.2}x"));
        }
        println!(
            "{:<8} {:>7} {:>7} {:>8.1}% {:>8.1}% {:>8} {:>8} {:>8}",
            w.name,
            s.total_nodes(),
            s.total_edges(),
            s.locality() * 100.0,
            profile.paper_locality_pct,
            speedups[0],
            speedups[1],
            speedups[2],
        );
    }
    println!("\n(speedup columns: REFINEPTS edges / DYNSUM edges per client)");
}
