//! Quickstart: compile a small program, ask DYNSUM where a variable
//! points, and watch the summary cache pay for itself on a second query.
//!
//! Run with: `cargo run --example quickstart`

use dynsum::{compile, DemandPointsTo, DynSum};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        class Box {
            Object item;
            void put(Object x) { this.item = x; }
            Object take() { return this.item; }
        }
        class Apple { }
        class Orange { }
        class Main {
            static void main() {
                Box a = new Box();
                a.put(new Apple());
                Box b = new Box();
                b.put(new Orange());
                Object fromA = a.take();
                Object fromB = b.take();
            }
        }
    "#;

    // Source -> PAG (the paper's program representation, Figure 1).
    let compiled = compile(source)?;
    println!(
        "compiled: {} methods, {} nodes, {} edges, locality {:.1}%",
        compiled.pag.num_methods(),
        compiled.pag.num_nodes(),
        compiled.pag.num_edges(),
        compiled.pag.stats().locality() * 100.0
    );

    // One DYNSUM engine per program; its summary cache persists across
    // queries (that persistence is the paper's contribution).
    let mut engine = DynSum::new(&compiled.pag);

    for var_name in ["Main.main#fromA", "Main.main#fromB"] {
        let var = compiled.pag.find_var(var_name).expect("variable exists");
        let result = engine.points_to(var);
        let objects: Vec<_> = result
            .pts
            .objects()
            .into_iter()
            .map(|o| compiled.pag.obj(o).label.clone())
            .collect();
        println!(
            "pointsTo({var_name}) = {{{}}} — {} edges traversed, {} summary cache hits",
            objects.join(", "),
            result.stats.edges_traversed,
            result.stats.cache_hits,
        );
    }
    println!(
        "summaries memorized across both queries: {}",
        engine.summary_count()
    );
    Ok(())
}
