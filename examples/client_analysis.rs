//! Run all three evaluation clients (SafeCast, NullDeref, FactoryM) over
//! the hand-written corpus programs, with every engine, and compare the
//! verdicts — a miniature of the paper's Table 4 setup on real code.
//!
//! Run with: `cargo run --example client_analysis`

use dynsum::{compile, DynSum, NoRefine, RefinePts};
use dynsum_clients::{run_client, ClientKind};
use dynsum_workloads::corpus;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for program in &corpus::ALL {
        let compiled = compile(program.source)?;
        println!("== {} — {} ==", program.name, program.description);
        for client in ClientKind::ALL {
            let mut dynsum = DynSum::new(&compiled.pag);
            let mut norefine = NoRefine::new(&compiled.pag);
            let mut refinepts = RefinePts::new(&compiled.pag);
            let rd = run_client(client, &compiled.pag, &compiled.info, &mut dynsum);
            let rn = run_client(client, &compiled.pag, &compiled.info, &mut norefine);
            let rr = run_client(client, &compiled.pag, &compiled.info, &mut refinepts);
            if rd.queries == 0 {
                continue;
            }
            println!(
                "  {:<9} {} queries: {} proven, {} refuted, {} unresolved | edges D/N/R = {}/{}/{}",
                client.name(),
                rd.queries,
                rd.proven,
                rd.refuted,
                rd.unresolved,
                rd.stats.edges_traversed,
                rn.stats.edges_traversed,
                rr.stats.edges_traversed,
            );
            // DYNSUM and NOREFINE share full precision *and* the same
            // conservative aborts: identical counts.
            assert_eq!(
                (rd.proven, rd.refuted, rd.unresolved),
                (rn.proven, rn.refuted, rn.unresolved),
                "full-precision engines must agree exactly"
            );
            // REFINEPTS can prove *more* sites: its field-based first
            // pass may satisfy the client on queries whose precise
            // exploration exceeds the budget (e.g. recursive `next`
            // chains in the linked-list program) — the paper's own
            // "refinement wins when clients satisfy early" case. It can
            // never flip a refuted verdict.
            assert!(rr.proven >= rd.proven, "refinement never proves less");
            assert_eq!(rr.refuted, rd.refuted, "refutations must coincide");
        }
        println!();
    }
    println!("all engines agreed on every verdict.");
    Ok(())
}
