//! Cooperative cancellation and deadlines on the `Session` batch path:
//! cancel a running batch from a watchdog thread, put a wall-clock
//! deadline on another, and verify the integrity invariant — whatever
//! was interrupted, a follow-up batch on the same session answers
//! byte-identically to a clean cold session.
//!
//! Run with: `cargo run --release --example cancellation`

use std::sync::Arc;
use std::time::{Duration, Instant};

use dynsum::{
    BatchControl, CancelToken, ClientKind, EngineKind, Outcome, QueryResult, Session, SessionQuery,
};
use dynsum_clients::queries_for;
use dynsum_workloads::{generate, BenchmarkProfile, GeneratorOptions};

fn outcome_counts(results: &[QueryResult]) -> (usize, usize, usize) {
    let cancelled = results
        .iter()
        .filter(|r| r.outcome == Outcome::Cancelled)
        .count();
    let timed_out = results
        .iter()
        .filter(|r| r.outcome == Outcome::DeadlineExceeded)
        .count();
    (results.len() - cancelled - timed_out, cancelled, timed_out)
}

fn main() {
    let profile = BenchmarkProfile::find("jython").expect("profile exists");
    let workload = generate(
        profile,
        &GeneratorOptions {
            scale: 0.3,
            seed: 0xCA9CE1,
            ..GeneratorOptions::default()
        },
    );
    let queries = queries_for(ClientKind::NullDeref, &workload.info);
    let batch: Vec<SessionQuery<'_>> = queries.iter().map(|q| SessionQuery::new(q.var)).collect();
    println!("workload {}: {} queries", workload.name, batch.len());

    // The clean cold reference every interrupted session must still
    // reproduce afterwards.
    let mut reference_session = Session::new(&workload.pag, EngineKind::DynSum);
    let reference_results = reference_session.run_batch(&batch, 1);
    let reference: Vec<u64> = reference_results
        .iter()
        .map(QueryResult::fingerprint)
        .collect();

    // 1. A watchdog thread cancels the batch mid-flight. Every query
    //    observes the shared token at budget-charge granularity:
    //    in-flight queries stop within one poll window, queries not yet
    //    started return immediately.
    let token = Arc::new(CancelToken::new());
    let control = BatchControl {
        cancel: Some(Arc::clone(&token)),
        ..BatchControl::default()
    };
    let mut session = Session::new(&workload.pag, EngineKind::DynSum);
    let watchdog = {
        let token = Arc::clone(&token);
        dynsum_cfl::sync::thread::spawn(move || {
            dynsum_cfl::sync::thread::sleep(Duration::from_micros(300));
            token.cancel();
        })
    };
    let started = Instant::now();
    let results = session.run_batch_with(&batch, 2, &control);
    let elapsed = started.elapsed();
    watchdog.join().expect("watchdog exits");
    let (done, cancelled, _) = outcome_counts(&results);
    println!(
        "watchdog cancel: {done} completed, {cancelled} cancelled in {:.1} ms",
        elapsed.as_secs_f64() * 1e3
    );
    // Cancelled queries still return *sound* partial sets: everything
    // they found is part of the full answer.
    for (r, full) in results.iter().zip(&reference_results) {
        if r.outcome == Outcome::Cancelled {
            assert!(
                r.pts.objects().is_subset(&full.pts.objects()),
                "a cancelled partial set must be a subset of the full answer"
            );
        }
    }

    // 2. A wall-clock deadline on the whole batch: queries that don't
    //    finish in time report DeadlineExceeded instead of blocking.
    let control = BatchControl {
        deadline: Some(Instant::now() + Duration::from_micros(500)),
        ..BatchControl::default()
    };
    let results = session.run_batch_with(&batch, 2, &control);
    let (done, _, timed_out) = outcome_counts(&results);
    println!("deadline 500us: {done} completed, {timed_out} deadline-exceeded");

    // 3. The integrity invariant: however much of the two batches above
    //    was interrupted, the session absorbed only complete summaries —
    //    a fresh batch answers byte-identically to the cold reference.
    let after: Vec<u64> = session
        .run_batch(&batch, 4)
        .iter()
        .map(QueryResult::fingerprint)
        .collect();
    assert_eq!(after, reference, "interruption must leave no trace");
    println!("follow-up batch: byte-identical to a clean cold session");

    let health = session.health();
    println!(
        "session health: {} cancellations, {} deadline trips, {} query panics, {} spawn failures",
        health.cancellations, health.deadline_trips, health.query_panics, health.spawn_failures
    );
}
