//! The summary-cache lifecycle in one program: serve a long NullDeref
//! query stream from a `Session` under a sweep of
//! `max_cached_summaries` caps, showing that eviction bounds memory and
//! trades hit rate for throughput while every verdict stays identical —
//! then invalidate a method mid-stream and watch a stale shard get
//! fenced instead of re-polluting the cache.
//!
//! Run with: `cargo run --release --example cache_pressure`

use std::time::Instant;

use dynsum::{run_batches_parallel, ClientKind, DemandPointsTo, EngineConfig, EngineKind, Session};
use dynsum_clients::queries_for;
use dynsum_workloads::{generate, BenchmarkProfile, GeneratorOptions};

fn main() {
    let profile = BenchmarkProfile::find("soot-c").expect("profile exists");
    let workload = generate(
        profile,
        &GeneratorOptions {
            scale: 0.2,
            seed: 0xD45,
            ..GeneratorOptions::default()
        },
    );
    println!(
        "workload {}: {} NullDeref query sites",
        workload.name,
        workload.info.derefs.len()
    );

    // Uncapped first: its natural cache size anchors the sweep, and its
    // verdicts are the reference every capped point must reproduce.
    let mut verdicts = None;
    let natural = run_point(&workload, None, &mut verdicts);
    for cap in [natural / 2, natural / 8, 0] {
        run_point(&workload, Some(cap), &mut verdicts);
    }

    // The incremental-edit story: a shard detached before an
    // invalidation can never re-absorb the invalidated method.
    let mut session = Session::new(&workload.pag, EngineKind::DynSum);
    let queries = queries_for(ClientKind::NullDeref, &workload.info);
    let stale = {
        let mut handle = session.handle();
        for q in &queries {
            handle.points_to(q.var);
        }
        handle.into_summaries()
    };
    let method = workload
        .pag
        .methods()
        .map(|(m, _)| m)
        .find(|&m| {
            // Probe a throwaway session so the real one stays warm.
            let mut probe = Session::new(&workload.pag, EngineKind::DynSum);
            let mut h = probe.handle();
            for q in &queries {
                h.points_to(q.var);
            }
            let shard = h.into_summaries();
            probe.absorb(shard);
            probe.invalidate_method(m) > 0
        })
        .expect("some method has summaries");
    session.invalidate_method(method);
    session.absorb(stale);
    println!(
        "invalidated one method, then absorbed a pre-invalidation shard: \
         {} stale entries fenced, {} summaries merged",
        session.stale_rejections(),
        session.summary_count()
    );
    assert!(session.stale_rejections() > 0);
}

/// Runs the batched stream under one cap, printing the
/// hit-rate/throughput/memory point; returns the resident cache size.
fn run_point(
    workload: &dynsum_workloads::Workload,
    cap: Option<usize>,
    verdicts: &mut Option<(usize, usize, usize)>,
) -> usize {
    let config = EngineConfig {
        max_cached_summaries: cap,
        ..EngineConfig::default()
    };
    let mut session = Session::with_config(&workload.pag, EngineKind::DynSum, config);
    let started = Instant::now();
    let batches = run_batches_parallel(ClientKind::NullDeref, &workload.info, &mut session, 10, 2);
    let secs = started.elapsed().as_secs_f64();

    let proven: usize = batches.iter().map(|b| b.report.proven).sum();
    let refuted: usize = batches.iter().map(|b| b.report.refuted).sum();
    let unresolved: usize = batches.iter().map(|b| b.report.unresolved).sum();
    let queries: usize = batches.iter().map(|b| b.report.queries).sum();
    let stats = session.cache_stats();
    println!(
        "cap {:>9}: {:>8.0} q/s, hit rate {:>5.1}%, {:>6} evictions, {:>5} resident — \
         {proven} proven / {refuted} refuted / {unresolved} unresolved",
        cap.map_or("uncapped".to_owned(), |c| c.to_string()),
        queries as f64 / secs,
        stats.hit_rate() * 100.0,
        stats.evictions,
        session.summary_count(),
    );
    if let Some(cap) = cap {
        assert!(session.summary_count() <= cap, "the cap is a hard bound");
    }

    // Eviction is outcome-free: every cap must agree on every verdict.
    match verdicts {
        None => *verdicts = Some((proven, refuted, unresolved)),
        Some(want) => assert_eq!(
            (proven, refuted, unresolved),
            *want,
            "eviction must never change verdicts"
        ),
    }
    session.summary_count()
}
