//! Query batching — the experimental setup behind Figures 4 and 5, and
//! the parallel batch runner built on the [`Session`] API.
//!
//! §5.3: *"we divide the sequence of queries issued by a client into 10
//! batches. If a client has `n_q` queries, then each of the first nine
//! batches contains `⌊n_q/10⌋` queries and the last one gets the rest."*
//! DYNSUM's summary cache persists across batches, so later batches get
//! cheaper; the engines without cross-query memorization stay flat.
//!
//! [`run_batches`] drives a legacy mutable engine sequentially;
//! [`run_batches_parallel`] drives a shared [`Session`], fanning each
//! batch across worker threads with the summary shards merged between
//! batches — same verdicts and points-to sets, one wall-clock divided by
//! the thread count.

use std::time::Instant;

use dynsum_cfl::PointsToSet;
use dynsum_core::{DemandPointsTo, Session, SessionQuery};
use dynsum_pag::{Pag, ProgramInfo};

use crate::client::{
    queries_for, run_queries, site_satisfied, verdict, ClientKind, Query, Verdict,
};
use crate::report::ClientReport;

/// One batch's outcome, plus the cumulative engine summary count after
/// it (Figure 5's series).
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// 0-based batch index.
    pub index: usize,
    /// The per-batch client report.
    pub report: ClientReport,
    /// Engine summary count *after* this batch.
    pub cumulative_summaries: usize,
}

/// Splits a query stream into `n` batches, paper-style: the first `n-1`
/// of size `⌊len/n⌋`, the last takes the remainder. Returns fewer
/// batches when there are fewer queries than `n`.
pub fn split_batches(queries: Vec<Query>, n: usize) -> Vec<Vec<Query>> {
    assert!(n > 0, "batch count must be positive");
    let len = queries.len();
    if len == 0 {
        return Vec::new();
    }
    let base = len / n;
    if base == 0 {
        return vec![queries];
    }
    let mut out = Vec::with_capacity(n);
    let mut iter = queries.into_iter();
    for _ in 0..n - 1 {
        out.push(iter.by_ref().take(base).collect());
    }
    out.push(iter.collect());
    out
}

/// Runs a client's queries in `n` batches against one engine (whose
/// cross-query state persists), producing one report per batch.
pub fn run_batches(
    kind: ClientKind,
    pag: &Pag,
    info: &ProgramInfo,
    engine: &mut dyn DemandPointsTo,
    n: usize,
) -> Vec<BatchReport> {
    let batches = split_batches(queries_for(kind, info), n);
    let mut out = Vec::with_capacity(batches.len());
    for (index, batch) in batches.into_iter().enumerate() {
        let report = run_queries(kind, pag, &batch, engine);
        out.push(BatchReport {
            index,
            cumulative_summaries: engine.summary_count(),
            report,
        });
    }
    out
}

/// Runs a client's queries in `n` batches against a shared [`Session`],
/// fanning each batch across up to `threads` worker threads
/// ([`Session::run_batch`]). Summary shards merge between batches, so
/// `cumulative_summaries` grows exactly as in the sequential harness —
/// and verdicts and points-to sets are byte-identical to it at any
/// thread count.
pub fn run_batches_parallel(
    kind: ClientKind,
    info: &ProgramInfo,
    session: &mut Session<'_>,
    n: usize,
    threads: usize,
) -> Vec<BatchReport> {
    let batches = split_batches(queries_for(kind, info), n);
    let mut out = Vec::with_capacity(batches.len());
    for (index, batch) in batches.into_iter().enumerate() {
        let report = run_queries_parallel(kind, &batch, session, threads);
        out.push(BatchReport {
            index,
            cumulative_summaries: session.summary_count(),
            report,
        });
    }
    out
}

/// Runs one explicit query list through [`Session::run_batch`],
/// aggregating verdicts and work counters like
/// [`run_queries`](crate::client::run_queries) does sequentially.
fn run_queries_parallel(
    kind: ClientKind,
    queries: &[Query],
    session: &mut Session<'_>,
    threads: usize,
) -> ClientReport {
    // The graph comes from the session itself — sites are always judged
    // against the PAG the queries actually ran on.
    let pag = session.pag();
    let mut report = ClientReport::new(kind, session.engine().name());
    // Each query gets its own `Sync` predicate; one reference per query
    // crosses the worker threads.
    type Check<'a> = Box<dyn Fn(&PointsToSet) -> bool + Sync + 'a>;
    let checks: Vec<Check<'_>> = queries
        .iter()
        .map(|q| {
            let site = q.site.clone();
            Box::new(move |pts: &PointsToSet| site_satisfied(pag, &site, pts)) as Check<'_>
        })
        .collect();
    let batch: Vec<SessionQuery<'_>> = queries
        .iter()
        .zip(&checks)
        .map(|(q, check)| SessionQuery::with_check(q.var, &**check))
        .collect();
    let started = Instant::now();
    let results = session.run_batch(&batch, threads);
    report.elapsed = started.elapsed();
    for (q, result) in queries.iter().zip(&results) {
        report.stats.absorb(&result.stats);
        match verdict(pag, q, result) {
            Verdict::Proven => report.proven += 1,
            Verdict::Refuted => report.refuted += 1,
            Verdict::Unresolved => report.unresolved += 1,
        }
        report.queries += 1;
    }
    report.summaries = session.summary_count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsum_core::DynSum;
    use dynsum_frontend::compile;
    use dynsum_pag::VarId;

    fn dummy_queries(n: usize) -> Vec<Query> {
        (0..n)
            .map(|i| Query {
                var: VarId::from_raw(i as u32),
                site: crate::client::QuerySite::Deref {
                    location: format!("x:{i}"),
                },
            })
            .collect()
    }

    #[test]
    fn split_follows_paper_rule() {
        let batches = split_batches(dummy_queries(23), 10);
        assert_eq!(batches.len(), 10);
        for b in &batches[..9] {
            assert_eq!(b.len(), 2);
        }
        assert_eq!(batches[9].len(), 5, "last batch gets the rest");
    }

    #[test]
    fn split_small_streams() {
        assert!(split_batches(dummy_queries(0), 10).is_empty());
        let batches = split_batches(dummy_queries(7), 10);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 7);
    }

    #[test]
    fn parallel_batches_match_sequential_engine_exactly() {
        use dynsum_core::{EngineKind, Session};
        let src = r#"
            class Box { Object v; void put(Object x) { this.v = x; } Object take() { return this.v; } }
            class Main {
                static void main() {
                    Box b1 = new Box(); b1.put(new Main()); Object o1 = b1.take();
                    Box b2 = new Box(); b2.put(new Box()); Object o2 = b2.take();
                    Box b3 = new Box(); b3.put(new String()); Object o3 = b3.take();
                    Box none = null; Object o4 = none.take();
                }
            }
        "#;
        let c = compile(src).unwrap();
        for kind in [EngineKind::DynSum, EngineKind::RefinePts] {
            let mut engine = kind.build(&c.pag, Default::default());
            let sequential =
                run_batches(ClientKind::NullDeref, &c.pag, &c.info, engine.as_mut(), 3);
            for threads in [1, 2, 4] {
                let mut session = Session::new(&c.pag, kind);
                let parallel =
                    run_batches_parallel(ClientKind::NullDeref, &c.info, &mut session, 3, threads);
                assert_eq!(parallel.len(), sequential.len());
                for (p, s) in parallel.iter().zip(&sequential) {
                    assert_eq!(
                        (p.report.proven, p.report.refuted, p.report.unresolved),
                        (s.report.proven, s.report.refuted, s.report.unresolved),
                        "{kind} threads={threads} batch={}",
                        p.index
                    );
                    assert_eq!(p.report.queries, s.report.queries);
                    assert_eq!(p.cumulative_summaries, s.cumulative_summaries);
                }
            }
        }
    }

    #[test]
    fn batches_preserve_total_and_grow_summaries() {
        let src = r#"
            class Box { Object v; void put(Object x) { this.v = x; } Object take() { return this.v; } }
            class Main {
                static void main() {
                    Box b1 = new Box(); b1.put(new Main()); Object o1 = b1.take();
                    Box b2 = new Box(); b2.put(new Box()); Object o2 = b2.take();
                    Box b3 = new Box(); b3.put(new String()); Object o3 = b3.take();
                }
            }
        "#;
        let c = compile(src).unwrap();
        let mut engine = DynSum::new(&c.pag);
        let reports = run_batches(ClientKind::NullDeref, &c.pag, &c.info, &mut engine, 3);
        assert!(!reports.is_empty());
        let total: usize = reports.iter().map(|b| b.report.queries).sum();
        assert_eq!(total, c.info.derefs.len());
        // Cumulative summary counts never shrink.
        for w in reports.windows(2) {
            assert!(w[1].cumulative_summaries >= w[0].cumulative_summaries);
        }
    }
}
