//! Query generation and verdict logic.

use dynsum_cfl::PointsToSet;
use dynsum_core::DemandPointsTo;
use dynsum_pag::{ClassId, MethodId, Pag, ProgramInfo, VarId};

use crate::report::ClientReport;

/// The three evaluation clients.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum ClientKind {
    /// Downcast safety (§5.2).
    SafeCast,
    /// Null-dereference detection — the most precision-hungry client.
    NullDeref,
    /// Factory methods must return fresh objects.
    FactoryM,
}

impl ClientKind {
    /// All clients, in the paper's order.
    pub const ALL: [ClientKind; 3] = [
        ClientKind::SafeCast,
        ClientKind::NullDeref,
        ClientKind::FactoryM,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ClientKind::SafeCast => "SafeCast",
            ClientKind::NullDeref => "NullDeref",
            ClientKind::FactoryM => "FactoryM",
        }
    }
}

impl std::fmt::Display for ClientKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a query is about (for verdicts and reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuerySite {
    /// `(target) var` downcast at `location`.
    Cast {
        /// Cast target class.
        target: ClassId,
        /// Source location.
        location: String,
    },
    /// Dereference of the queried variable at `location`.
    Deref {
        /// Source location.
        location: String,
    },
    /// Factory method whose return variable is queried.
    Factory {
        /// The factory method.
        method: MethodId,
    },
}

/// One client query: a variable plus the site being checked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The queried variable (`pointsTo(var, ∅)`).
    pub var: VarId,
    /// The site under scrutiny.
    pub site: QuerySite,
}

/// Outcome of one site check.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds (cast safe / never null / always fresh).
    Proven,
    /// The property was definitively violated by some object.
    Refuted,
    /// The query blew its budget: answer conservatively.
    Unresolved,
}

/// Generates the query stream a client issues for a program.
pub fn queries_for(kind: ClientKind, info: &ProgramInfo) -> Vec<Query> {
    match kind {
        ClientKind::SafeCast => info
            .casts
            .iter()
            .map(|c| Query {
                var: c.var,
                site: QuerySite::Cast {
                    target: c.target,
                    location: c.location.clone(),
                },
            })
            .collect(),
        ClientKind::NullDeref => info
            .derefs
            .iter()
            .map(|d| Query {
                var: d.base,
                site: QuerySite::Deref {
                    location: d.location.clone(),
                },
            })
            .collect(),
        ClientKind::FactoryM => info
            .factories
            .iter()
            .map(|f| Query {
                var: f.ret,
                site: QuerySite::Factory { method: f.method },
            })
            .collect(),
    }
}

/// The client's satisfaction predicate over a (possibly over-approximate)
/// points-to set: `true` when the property is already proven, allowing
/// REFINEPTS to stop refining (Algorithm 2's `satisfyClient`).
///
/// Public so external harnesses (the differential fuzzer) can hand the
/// exact same early-stop predicate to every engine they compare —
/// verdicts diverging because of *different predicates* would be noise,
/// not bugs.
pub fn site_satisfied(pag: &Pag, site: &QuerySite, pts: &PointsToSet) -> bool {
    match site {
        QuerySite::Cast { target, .. } => pts.objects().iter().all(|&o| {
            let info = pag.obj(o);
            // Null casts are safe; objects without a class are opaque
            // and must be assumed unsafe.
            info.is_null
                || info
                    .class
                    .is_some_and(|c| pag.hierarchy().is_subtype(c, *target))
        }),
        QuerySite::Deref { .. } => pts.objects().iter().all(|&o| !pag.obj(o).is_null),
        QuerySite::Factory { method } => pts.objects().iter().all(|&o| {
            let info = pag.obj(o);
            !info.is_null && info.alloc_method == Some(*method)
        }),
    }
}

/// Classifies one site given its query result.
pub fn verdict(pag: &Pag, q: &Query, result: &dynsum_cfl::QueryResult) -> Verdict {
    if !result.resolved {
        return Verdict::Unresolved;
    }
    if site_satisfied(pag, &q.site, &result.pts) {
        Verdict::Proven
    } else {
        Verdict::Refuted
    }
}

/// Runs a whole client over its query stream with the given engine,
/// aggregating verdicts, work counters and wall-clock time.
pub fn run_client(
    kind: ClientKind,
    pag: &Pag,
    info: &ProgramInfo,
    engine: &mut dyn DemandPointsTo,
) -> ClientReport {
    let queries = queries_for(kind, info);
    run_queries(kind, pag, &queries, engine)
}

/// Runs an explicit query list (used by the batching harness).
pub(crate) fn run_queries(
    kind: ClientKind,
    pag: &Pag,
    queries: &[Query],
    engine: &mut dyn DemandPointsTo,
) -> ClientReport {
    let mut report = ClientReport::new(kind, engine.name());
    let started = std::time::Instant::now();
    for q in queries {
        let site = q.site.clone();
        let check = move |pts: &PointsToSet| site_satisfied(pag, &site, pts);
        let result = engine.query(q.var, &check);
        report.stats.absorb(&result.stats);
        match verdict(pag, q, &result) {
            Verdict::Proven => report.proven += 1,
            Verdict::Refuted => report.refuted += 1,
            Verdict::Unresolved => report.unresolved += 1,
        }
        report.queries += 1;
    }
    report.elapsed = started.elapsed();
    report.summaries = engine.summary_count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsum_core::{DynSum, NoRefine, RefinePts};
    use dynsum_frontend::compile;

    const PROGRAM: &str = r#"
        class Animal { }
        class Dog extends Animal { Object toy() { return new Animal(); } }
        class Cat extends Animal { }
        class Shelter {
            Animal pet;
            void keep(Animal a) { this.pet = a; }
            Animal adopt() { return this.pet; }
        }
        class Main {
            static void main() {
                Shelter s1 = new Shelter();
                s1.keep(new Dog());
                Shelter s2 = new Shelter();
                s2.keep(new Cat());
                Dog d = (Dog) s1.adopt();     // safe under context sensitivity
                Cat c = (Cat) s2.adopt();     // safe under context sensitivity
                Dog bad = (Dog) s2.adopt();   // refuted: a Cat arrives
                Shelter maybe = null;
                Animal a = maybe.adopt();     // null deref
            }
        }
    "#;

    #[test]
    fn safecast_verdicts() {
        let c = compile(PROGRAM).unwrap();
        let mut engine = DynSum::new(&c.pag);
        let report = run_client(ClientKind::SafeCast, &c.pag, &c.info, &mut engine);
        assert_eq!(report.queries, 3);
        assert_eq!(report.proven, 2, "{report:?}");
        assert_eq!(report.refuted, 1);
        assert_eq!(report.unresolved, 0);
    }

    #[test]
    fn nullderef_flags_null_base() {
        let c = compile(PROGRAM).unwrap();
        let mut engine = DynSum::new(&c.pag);
        let report = run_client(ClientKind::NullDeref, &c.pag, &c.info, &mut engine);
        assert!(report.queries >= 3);
        assert!(report.refuted >= 1, "the null receiver must be flagged");
        assert!(report.proven >= 1);
    }

    #[test]
    fn factory_fresh_vs_cached() {
        let src = r#"
            class Widget { }
            class Factory {
                static Widget cache;
                Widget fresh() { return new Widget(); }
                Widget cached() { Widget w = Factory.cache; return w; }
            }
        "#;
        let c = compile(src).unwrap();
        let mut engine = DynSum::new(&c.pag);
        let report = run_client(ClientKind::FactoryM, &c.pag, &c.info, &mut engine);
        // fresh() proven; cached() has an empty/foreign points-to set:
        // empty sets satisfy "all objects fresh" vacuously, so gate on
        // the concrete counts instead.
        assert_eq!(report.queries, 2);
        assert!(report.proven >= 1);
    }

    #[test]
    fn engines_agree_on_verdicts() {
        let c = compile(PROGRAM).unwrap();
        for kind in ClientKind::ALL {
            let mut dynsum = DynSum::new(&c.pag);
            let mut norefine = NoRefine::new(&c.pag);
            let mut refinepts = RefinePts::new(&c.pag);
            let a = run_client(kind, &c.pag, &c.info, &mut dynsum);
            let b = run_client(kind, &c.pag, &c.info, &mut norefine);
            let r = run_client(kind, &c.pag, &c.info, &mut refinepts);
            assert_eq!((a.proven, a.refuted), (b.proven, b.refuted), "{kind}");
            assert_eq!((a.proven, a.refuted), (r.proven, r.refuted), "{kind}");
        }
    }

    #[test]
    fn refinement_stops_early_for_satisfiable_sites() {
        let c = compile(PROGRAM).unwrap();
        let mut refinepts = RefinePts::new(&c.pag);
        let report = run_client(ClientKind::SafeCast, &c.pag, &c.info, &mut refinepts);
        // The two provable casts need context-sensitive precision, which
        // REFINEPTS reaches only after refining; the refuted one may
        // terminate at any iteration. The counters must still match
        // DYNSUM's (checked above); here we check refinement happened.
        assert!(report.stats.refinement_iterations >= report.queries as u64);
    }

    #[test]
    fn query_generation_matches_info() {
        let c = compile(PROGRAM).unwrap();
        assert_eq!(
            queries_for(ClientKind::SafeCast, &c.info).len(),
            c.info.casts.len()
        );
        assert_eq!(
            queries_for(ClientKind::NullDeref, &c.info).len(),
            c.info.derefs.len()
        );
        assert_eq!(
            queries_for(ClientKind::FactoryM, &c.info).len(),
            c.info.factories.len()
        );
    }
}
