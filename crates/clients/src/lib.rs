//! # dynsum-clients — the paper's three evaluation clients (§5.2)
//!
//! | client | question per site | needs |
//! |--------|-------------------|-------|
//! | [`SafeCast`](ClientKind::SafeCast) | is every object flowing into `(T) v` a subtype of `T`? | class hierarchy |
//! | [`NullDeref`](ClientKind::NullDeref) | can the base of a dereference be `null`? | null objects |
//! | [`FactoryM`](ClientKind::FactoryM) | does a factory method return a freshly allocated object? | allocation sites |
//!
//! Each client turns the frontend/generator metadata
//! ([`ProgramInfo`](dynsum_pag::ProgramInfo)) into a stream of points-to
//! queries, feeds them to any [`DemandPointsTo`](dynsum_core::DemandPointsTo)
//! engine with the client's
//! satisfaction predicate (REFINEPTS refines only as far as the client
//! needs), and classifies every site as *proven*, *refuted* or
//! *unresolved* (budget exhausted ⇒ conservative). Queries can be split
//! into batches to reproduce the paper's Figures 4 and 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod client;
mod report;

pub use batch::{run_batches, run_batches_parallel, split_batches, BatchReport};
pub use client::{
    queries_for, run_client, site_satisfied, verdict, ClientKind, Query, QuerySite, Verdict,
};
pub use report::ClientReport;
