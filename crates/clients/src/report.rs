//! Aggregated client run reports.

use std::time::Duration;

use dynsum_cfl::QueryStats;

use crate::client::ClientKind;

/// The outcome of running one client's full query stream against one
/// engine — a cell of the paper's Table 4.
#[derive(Debug, Clone)]
pub struct ClientReport {
    /// Which client ran.
    pub kind: ClientKind,
    /// Which engine answered (`"DYNSUM"`, `"REFINEPTS"`, …).
    pub engine: String,
    /// Queries issued.
    pub queries: usize,
    /// Sites proven safe/fresh/non-null.
    pub proven: usize,
    /// Sites definitively violated.
    pub refuted: usize,
    /// Sites whose queries blew the budget (answered conservatively).
    pub unresolved: usize,
    /// Aggregated work counters.
    pub stats: QueryStats,
    /// Wall-clock time for the whole stream.
    pub elapsed: Duration,
    /// Engine summary count after the run (Figure 5's numerator).
    pub summaries: usize,
}

impl ClientReport {
    /// Creates an empty report.
    pub fn new(kind: ClientKind, engine: &str) -> Self {
        ClientReport {
            kind,
            engine: engine.to_owned(),
            queries: 0,
            proven: 0,
            refuted: 0,
            unresolved: 0,
            stats: QueryStats::default(),
            elapsed: Duration::ZERO,
            summaries: 0,
        }
    }

    /// Fraction of queries answered within budget.
    pub fn resolution_rate(&self) -> f64 {
        if self.queries == 0 {
            1.0
        } else {
            1.0 - self.unresolved as f64 / self.queries as f64
        }
    }
}

impl std::fmt::Display for ClientReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: {} queries, {} proven, {} refuted, {} unresolved, \
             {} edges, {:.1} ms",
            self.kind,
            self.engine,
            self.queries,
            self.proven,
            self.refuted,
            self.unresolved,
            self.stats.edges_traversed,
            self.elapsed.as_secs_f64() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_rate_handles_empty_and_partial() {
        let mut r = ClientReport::new(ClientKind::SafeCast, "DYNSUM");
        assert_eq!(r.resolution_rate(), 1.0);
        r.queries = 4;
        r.unresolved = 1;
        assert!((r.resolution_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_engine_and_client() {
        let r = ClientReport::new(ClientKind::NullDeref, "REFINEPTS");
        let s = r.to_string();
        assert!(s.contains("NullDeref"));
        assert!(s.contains("REFINEPTS"));
    }
}
