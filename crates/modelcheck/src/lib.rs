//! Model-checked harnesses for the workspace's concurrency kernels.
//!
//! Each harness in [`kernels`] drives *real* workspace code (or, where
//! scoped threads make that impossible, a faithful port of the kernel's
//! exact operation sequence onto the same facade types) under the
//! vendored loom-style schedule explorer, asserting the repo's actual
//! invariants across ≥1,000 explored schedules:
//!
//! 1. **`CancelToken`** — no lost cancellation: once any canceller's
//!    store is joined, `is_cancelled()` is `true`, and the flag is
//!    sticky (never observed flipping back).
//! 2. **Clock eviction** (`SummaryCache`) — eviction never changes
//!    outcomes: concurrent `get`s always hit live entries, their marks
//!    are never lost, and the post-join sweep evicts only unreferenced
//!    entries while summaries held via `Arc` stay intact.
//! 3. **Work-stealing cursor** (`Session::run_batch`) — every batch
//!    index is claimed exactly once, every claimed result is visible at
//!    the join barrier, and the epoch fence rejects a shard detached
//!    before an invalidation.
//! 4. **Server stop flag** (`serve_unix`) — no answer after stop: an
//!    acceptor that observes `stop` also observes everything the event
//!    loop completed first; client ids are unique and dense.
//! 5. **Cancel registry** (`CancelRegistry`) — the reader-thread fast
//!    path finds registered tokens, cancellation is never lost, and
//!    unregistered tokens are unreachable.
//!
//! The mutation tests (`tests/mutations.rs`) prove detection power by
//! seeding deliberate weakenings of kernels 2–4 and asserting the
//!   explorer catches each with a replayable trace.
//!
//! Run everything through `make model-check` at the repo root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::path::PathBuf;

use loom::model::{Builder, Failure, Report};

pub mod kernels;

/// Exploration floor every kernel harness must clear (the CI gate's
/// "≥1k schedules per kernel" acceptance criterion).
pub const MIN_SCHEDULES: usize = 1_000;

/// The explorer configuration shared by every harness: exhaustive DFS
/// up to 5k schedules, a seeded random phase when the tree is larger,
/// and padding up to the [`MIN_SCHEDULES`] floor for small state spaces.
pub fn explorer() -> Builder {
    Builder {
        max_schedules: 5_000,
        random_schedules: 1_000,
        min_schedules: MIN_SCHEDULES,
        ..Builder::new()
    }
}

/// Directory failing-schedule traces are written to (a CI artifact).
/// `MODELCHECK_TRACE_DIR` overrides; the default resolves to the repo's
/// shared `target/modelcheck/` from this crate's directory.
pub fn trace_dir() -> PathBuf {
    match std::env::var_os("MODELCHECK_TRACE_DIR") {
        Some(d) => PathBuf::from(d),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/modelcheck"),
    }
}

fn write_trace(name: &str, failure: &Failure) {
    let dir = trace_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return; // artifact is best-effort; the assertion still fires
    }
    if let Ok(mut f) = std::fs::File::create(dir.join(format!("{name}.trace"))) {
        let _ = writeln!(f, "harness: {name}");
        let _ = writeln!(f, "message: {}", failure.message);
        let _ = writeln!(f, "schedules: {}", failure.schedules);
        let _ = writeln!(f, "trace: {}", failure.trace);
        let _ = writeln!(
            f,
            "replay: parse the `trace:` line with loom::model::Trace and pass it to \
             loom::model::Builder::replay against the `{name}` harness"
        );
    }
}

/// Runs `harness` under the shared explorer and asserts it passes every
/// schedule **and** clears the [`MIN_SCHEDULES`] floor. On failure the
/// trace is written to [`trace_dir`] (CI uploads it) before panicking.
pub fn expect_pass(name: &str, harness: fn()) -> Report {
    match explorer().check_result(harness) {
        Ok(report) => {
            assert!(
                report.schedules >= MIN_SCHEDULES,
                "{name}: explored only {} schedules (< {MIN_SCHEDULES} floor)",
                report.schedules
            );
            report
        }
        Err(failure) => {
            write_trace(name, &failure);
            panic!("{name}: {failure}");
        }
    }
}

/// Runs a deliberately weakened kernel (a mutation seed) and asserts
/// the explorer catches it — and that the failing schedule's serialized
/// trace replays deterministically to the same assertion. The caught
/// trace is written to [`trace_dir`] as proof.
pub fn expect_caught(name: &str, mutant: fn()) -> Failure {
    let failure = explorer()
        .check_result(mutant)
        .expect_err("mutation must be caught by the explorer");
    write_trace(name, &failure);
    // Round-trip through the wire format, then replay: same assertion.
    let wire = failure.trace.to_string();
    let parsed: loom::model::Trace = wire.parse().expect("trace must serialize round-trip");
    let replayed = explorer()
        .replay(&parsed, mutant)
        .expect_err("replaying the failing schedule must fail again");
    assert_eq!(
        replayed.message, failure.message,
        "{name}: replay diverged from the recorded failure"
    );
    failure
}
