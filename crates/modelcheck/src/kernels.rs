//! The five kernel harnesses. Each is a plain `fn()` run thousands of
//! times by the explorer — once per schedule — so everything it builds
//! must be per-run (no statics) and deterministic apart from the
//! scheduler/visibility choices.
//!
//! Harnesses drive real workspace types wherever Rust's borrow rules
//! allow concurrent access at all (`CancelToken`, `SummaryCache::get`,
//! `CancelRegistry`); the batch-cursor kernel is driven as a faithful
//! port of `run_stealing`'s operation sequence onto the same
//! `dynsum_cfl::sync` facade types, because the real loop is embedded
//! in scoped-thread spawning, which the checker does not virtualize.

use dynsum_cfl::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use dynsum_cfl::sync::Arc;
use dynsum_cfl::{CancelToken, Direction, FieldStackId};
use dynsum_core::{Summary, SummaryCache, SummaryKey};
use dynsum_pag::NodeId;
use dynsum_service::CancelRegistry;

fn key(n: u32) -> SummaryKey {
    (NodeId::from_raw(n), FieldStackId::EMPTY, Direction::S1)
}

/// Kernel 1 — `CancelToken` (`crates/cfl/src/budget.rs`).
///
/// Invariants: cancellation is never lost (after joining any canceller,
/// `is_cancelled()` is `true`), is idempotent across racing cancellers,
/// and is sticky (two successive polls never observe `true` then
/// `false`).
pub fn cancel_token_flag() {
    let token = Arc::new(CancelToken::new());
    let (t1, t2) = (Arc::clone(&token), Arc::clone(&token));
    let c1 = loom::thread::spawn(move || t1.cancel());
    let c2 = loom::thread::spawn(move || t2.cancel());
    // Racing polls mid-cancel: any answer is legal, but it must be
    // monotone — the flag can never un-set.
    let early = token.is_cancelled();
    let later = token.is_cancelled();
    assert!(!early || later, "cancellation flag went backwards");
    c1.join().unwrap();
    c2.join().unwrap();
    // Join gives happens-before: the cancel must now be visible even
    // through the Relaxed polling load — this is what "no lost
    // cancellation" means at the API boundary.
    assert!(token.is_cancelled(), "cancellation lost after join");
}

/// Kernel 2 — clock eviction (`crates/core/src/summary.rs`).
///
/// Concurrent shared `get`s mark reference bits while racing each
/// other; the post-join `enforce_cap` sweep (exclusive, `&mut`) must
/// honor every mark (evict only unreferenced entries) and eviction must
/// never invalidate a summary a reader still holds. Together with the
/// engines' deterministic reuse accounting this is the "eviction never
/// changes outcomes" invariant.
pub fn clock_eviction_sweep() {
    let mut cache = SummaryCache::new();
    for i in 0..4 {
        cache.insert(key(i), Arc::new(Summary::default()));
    }
    let cache = Arc::new(cache);
    let (c1, c2) = (Arc::clone(&cache), Arc::clone(&cache));
    // Two readers marking overlapping entries, racing each other and a
    // third lookup on this thread.
    let r1 = loom::thread::spawn(move || c1.get(key(0)).map(|s| s.len()));
    let r2 = loom::thread::spawn(move || c2.get(key(1)).map(|s| s.len()));
    let held = cache.get(key(0));
    let h1 = r1.join().unwrap();
    let h2 = r2.join().unwrap();
    // Shared lookups can never miss a live entry, under any schedule.
    assert!(held.is_some() && h1.is_some() && h2.is_some(), "lost hit");
    // Sweep after the readers retire (`enforce_cap` is `&mut`: Rust
    // already forbids sweeping concurrently with `get`, and the model
    // confirms the marks published by Relaxed stores are all visible
    // to the sweep's RMW).
    let mut cache = Arc::into_inner(cache).expect("readers retired");
    let evicted = cache.enforce_cap(2);
    assert_eq!(evicted, 2, "sweep must evict exactly down to cap");
    // The marked entries (0 and 1) got their second chance; only the
    // never-referenced entries (2 and 3) were evictable.
    assert!(
        cache.get(key(0)).is_some() && cache.get(key(1)).is_some(),
        "sweep evicted a referenced entry: a concurrent get's mark was lost"
    );
    // Eviction never changes outcomes: a summary handed out before the
    // sweep is untouched by it.
    assert_eq!(
        held.map(|s| s.len()),
        Some(0),
        "evicted data reached a reader"
    );
}

/// Number of batch queries in the cursor harness (small enough to keep
/// the DFS tree explorable, large enough that workers interleave).
const BATCH: usize = 3;

/// Kernel 3 — the work-stealing batch cursor + merge-on-join
/// (`crates/core/src/session.rs`, `run_stealing`/`retire_slot`).
///
/// A faithful port of the claim loop: workers `fetch_add(1, Relaxed)`
/// a shared cursor and record a result for each claimed index with a
/// Relaxed store. Invariants: every index in `0..BATCH` is claimed
/// exactly once (RMW atomicity, not ordering), every claimed result is
/// visible at the join barrier (merge-on-join), and the epoch fence
/// refuses to absorb a shard detached before an invalidation.
pub fn batch_cursor_claims() {
    let cursor = Arc::new(AtomicUsize::new(0));
    // One result slot per query; 0 = never claimed. `run_batch`'s
    // scatter asserts the same exactly-once property via `debug_assert`.
    let slots: Arc<Vec<AtomicUsize>> = Arc::new((0..BATCH).map(|_| AtomicUsize::new(0)).collect());
    let epoch = Arc::new(AtomicU64::new(5));
    let mut workers = Vec::new();
    for _ in 0..2 {
        let (cur, slo) = (Arc::clone(&cursor), Arc::clone(&slots));
        // Shard stamped with the session epoch at checkout — on the
        // *session* thread before the workers spawn, exactly like
        // `Session::run_batch` capturing `epoch` before `thread::scope`
        // (a first version of this harness read the epoch inside the
        // worker; the checker caught it racing the invalidation below).
        let shard_epoch = epoch.load(Ordering::Relaxed);
        workers.push(loom::thread::spawn(move || {
            let mut claimed = Vec::new();
            loop {
                let i = cur.fetch_add(1, Ordering::Relaxed);
                if i >= BATCH {
                    break;
                }
                // "Run the query": the result is a pure function of the
                // claimed global index (deterministic reuse accounting),
                // so any interleaving produces identical values.
                slo[i].store(i * 7 + 1, Ordering::Relaxed);
                claimed.push(i);
            }
            (shard_epoch, claimed)
        }));
    }
    let mut total = 0usize;
    let mut absorbed = Vec::new();
    for (wi, w) in workers.into_iter().enumerate() {
        let (shard_epoch, claimed) = w.join().unwrap();
        total += claimed.len();
        // retire_slot's fence: a shard detached under an older epoch
        // than the session's current one must NOT be absorbed.
        if shard_epoch == epoch.load(Ordering::Relaxed) {
            absorbed.push((wi, claimed));
        }
        if wi == 0 {
            // An invalidation lands between the two joins (it is
            // `&mut self` in the real session, hence on this thread):
            // the second worker's shard is now fenced.
            epoch.fetch_add(1, Ordering::Relaxed);
        }
    }
    assert_eq!(total, BATCH, "claims lost or duplicated");
    // Exactly-once: every slot was filled by exactly one claim, and the
    // claimed results are all visible after join (merge-on-join HB).
    for i in 0..BATCH {
        assert_eq!(
            slots[i].load(Ordering::Relaxed),
            i * 7 + 1,
            "index {i} not claimed exactly once or its result not visible at join"
        );
    }
    // The fence admitted only the pre-invalidation join.
    assert_eq!(absorbed.len(), 1, "fenced shard absorbed");
    assert_eq!(absorbed[0].0, 0, "wrong shard absorbed");
}

/// Kernel 4 — the Unix server's stop flag and id counter
/// (`crates/service/src/server.rs`, `serve_unix`).
///
/// The event loop finishes delivering answers, then stores `stop` with
/// Release; the acceptor polls with Acquire. Invariant ("no answer
/// after stop"): an acceptor that observes the stop also observes every
/// answer the loop delivered before requesting it — so it can never
/// accept a connection whose answers would race the shutdown. Client
/// ids stay unique under racing accepts.
pub fn server_stop_flag() {
    let answered = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let ids = Arc::new(AtomicU64::new(0));
    let (a2, s2) = (Arc::clone(&answered), Arc::clone(&stop));
    let event_loop = loom::thread::spawn(move || {
        // `event_loop` returns (all frames written)...
        a2.store(true, Ordering::Relaxed);
        // ...then serve_unix publishes the stop request.
        s2.store(true, Ordering::Release);
    });
    // The acceptor's poll (while-loop head in serve_unix).
    if stop.load(Ordering::Acquire) {
        assert!(
            answered.load(Ordering::Relaxed),
            "acceptor observed stop before the final answers were visible"
        );
    }
    // Racing id allocations stay unique (RMW atomicity).
    let i2 = Arc::clone(&ids);
    let alloc = loom::thread::spawn(move || i2.fetch_add(1, Ordering::Relaxed) + 1);
    let mine = ids.fetch_add(1, Ordering::Relaxed) + 1;
    let theirs = alloc.join().unwrap();
    assert_ne!(mine, theirs, "duplicate client id");
    assert_eq!(mine.max(theirs), 2, "ids must be dense");
    event_loop.join().unwrap();
    assert!(stop.load(Ordering::Acquire), "stop request lost");
}

/// Kernel 5 — the cancel-registry fast path
/// (`crates/service/src/daemon.rs`, `CancelRegistry`).
///
/// Drives the real registry: the scheduler thread registers a token at
/// ingest and polls it mid-query; a reader thread races `cancel` (the
/// fast path that flips tokens while the scheduler is mid-query).
/// Invariants: a registered token is always found, the flip is never
/// lost (visible at the latest by the post-join poll), and an
/// unregistered token is unreachable. Lock-order deadlocks would be
/// reported by the explorer automatically.
pub fn cancel_registry_fast_path() {
    let registry = CancelRegistry::default();
    let token = Arc::new(CancelToken::new());
    // Ingest: the daemon registers before the query starts running.
    registry.insert(1, 7, Arc::clone(&token));
    let reg2 = registry.clone();
    let reader = loom::thread::spawn(move || reg2.cancel(1, 7));
    // The query polls at budget-charge granularity while the reader
    // races the flip; observing the cancel early is legal, not required.
    let mid_query = token.is_cancelled();
    let found = reader.join().unwrap();
    assert!(found, "registered token not found by the fast path");
    // No lost cancellation: after the reader retires, the very next
    // poll observes the flip.
    assert!(token.is_cancelled(), "cancel flip lost");
    let _ = mid_query;
    // Completion: the scheduler unregisters; a late cancel frame for
    // the finished request finds nothing (and is answered idempotently
    // by the daemon's own ingest path).
    registry.remove(1, 7);
    assert!(!registry.cancel(1, 7), "removed token still cancellable");
}
