//! Mutation tests: deliberately weakened copies of the kernels, each of
//! which the explorer must catch with a replayable trace — proof that
//! the clean runs in `tests/kernels.rs` are meaningful, not vacuous.
//!
//! Each mutant reproduces a specific weakening named in the issue:
//!
//! 1. `serve_unix`'s `stop.store(…, Release)` dropped to `Relaxed` —
//!    the acceptor can observe the stop before the final answers.
//! 2. The clock reference bit's `swap` split into a plain load+store —
//!    a concurrent `get`'s mark can be silently erased.
//! 3. The batch cursor's `fetch_add` split into a load+store — two
//!    workers can claim the same index and starve another.
//!
//! `expect_caught` asserts the failure, serializes the trace, parses it
//! back, replays it, and checks the replay reproduces the identical
//! assertion message.

use dynsum_cfl::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use dynsum_cfl::sync::Arc;
use dynsum_modelcheck::expect_caught;

/// Mutation 1: the stop flag published with `Relaxed` instead of
/// `Release`. The acceptor's Acquire load then synchronizes with
/// nothing, so it may see `stop == true` while the loop's prior
/// `answered` store is still invisible — exactly the reordering the
/// real `Release` forbids.
fn mutant_server_stop_relaxed() {
    let answered = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let (a2, s2) = (Arc::clone(&answered), Arc::clone(&stop));
    let event_loop = loom::thread::spawn(move || {
        a2.store(true, Ordering::Relaxed);
        s2.store(true, Ordering::Relaxed); // MUTATION: was Release
    });
    if stop.load(Ordering::Acquire) {
        assert!(
            answered.load(Ordering::Relaxed),
            "acceptor observed stop before the final answers were visible"
        );
    }
    event_loop.join().unwrap();
}

#[test]
fn catches_dropped_release_on_stop_flag() {
    let failure = expect_caught("mutant_server_stop_relaxed", mutant_server_stop_relaxed);
    assert!(
        failure.message.contains("before the final answers"),
        "unexpected failure: {}",
        failure.message
    );
}

/// Mutation 2: the sweep's atomic `swap(false)` split into
/// `load` + `store(false)`. A `get`'s mark landing between the two is
/// erased without being observed — the mark neither grants this sweep's
/// second chance nor survives to the next, so a referenced entry ages
/// out as if never touched.
fn mutant_clock_bit_load_store() {
    let referenced = Arc::new(AtomicBool::new(false));
    let r2 = Arc::clone(&referenced);
    // A shared `get` marking recency, racing the sweep.
    let getter = loom::thread::spawn(move || r2.store(true, Ordering::Relaxed));
    // MUTATION: the sweep's `swap(false, Relaxed)` done non-atomically.
    let observed = referenced.load(Ordering::Relaxed);
    referenced.store(false, Ordering::Relaxed);
    getter.join().unwrap();
    let survives = referenced.load(Ordering::Relaxed);
    // The real swap guarantees: a concurrent mark is either observed by
    // this sweep (second chance now) or still set afterwards (second
    // chance at the next sweep). Never neither.
    assert!(
        observed || survives,
        "recency mark erased: neither observed by the sweep nor preserved"
    );
}

#[test]
fn catches_clock_bit_lost_mark() {
    let failure = expect_caught("mutant_clock_bit_load_store", mutant_clock_bit_load_store);
    assert!(
        failure.message.contains("recency mark erased"),
        "unexpected failure: {}",
        failure.message
    );
}

/// Mutation 3: the claim cursor's `fetch_add` split into
/// `load` + `store(i + 1)`. Two workers can read the same cursor value
/// and claim the same index, double-running one query and never running
/// another — breaking `run_batch`'s exactly-once scatter.
fn mutant_cursor_double_claim() {
    const BATCH: usize = 2;
    let cursor = Arc::new(AtomicUsize::new(0));
    let slots: Arc<Vec<AtomicUsize>> = Arc::new((0..BATCH).map(|_| AtomicUsize::new(0)).collect());
    let mut workers = Vec::new();
    for _ in 0..2 {
        let (cur, slo) = (Arc::clone(&cursor), Arc::clone(&slots));
        workers.push(loom::thread::spawn(move || {
            loop {
                // MUTATION: was `cur.fetch_add(1, Relaxed)`.
                let i = cur.load(Ordering::Relaxed);
                cur.store(i + 1, Ordering::Relaxed);
                if i >= BATCH {
                    break;
                }
                slo[i].fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    for i in 0..BATCH {
        assert_eq!(
            slots[i].load(Ordering::Relaxed),
            1,
            "index {i} not claimed exactly once"
        );
    }
}

#[test]
fn catches_cursor_double_claim() {
    let failure = expect_caught("mutant_cursor_double_claim", mutant_cursor_double_claim);
    assert!(
        failure.message.contains("not claimed exactly once"),
        "unexpected failure: {}",
        failure.message
    );
}
