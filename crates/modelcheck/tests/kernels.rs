//! The CI gate: every kernel harness passes every explored schedule
//! and clears the ≥1,000-schedule floor. A failure writes its
//! replayable trace to `target/modelcheck/<name>.trace` (uploaded as a
//! CI artifact) before panicking.

use dynsum_modelcheck::{expect_pass, kernels};

#[test]
fn cancel_token_flag() {
    let report = expect_pass("cancel_token_flag", kernels::cancel_token_flag);
    println!(
        "cancel_token_flag: {} schedules (exhausted: {})",
        report.schedules, report.exhausted
    );
}

#[test]
fn clock_eviction_sweep() {
    let report = expect_pass("clock_eviction_sweep", kernels::clock_eviction_sweep);
    println!(
        "clock_eviction_sweep: {} schedules (exhausted: {})",
        report.schedules, report.exhausted
    );
}

#[test]
fn batch_cursor_claims() {
    let report = expect_pass("batch_cursor_claims", kernels::batch_cursor_claims);
    println!(
        "batch_cursor_claims: {} schedules (exhausted: {})",
        report.schedules, report.exhausted
    );
}

#[test]
fn server_stop_flag() {
    let report = expect_pass("server_stop_flag", kernels::server_stop_flag);
    println!(
        "server_stop_flag: {} schedules (exhausted: {})",
        report.schedules, report.exhausted
    );
}

#[test]
fn cancel_registry_fast_path() {
    let report = expect_pass(
        "cancel_registry_fast_path",
        kernels::cancel_registry_fast_path,
    );
    println!(
        "cancel_registry_fast_path: {} schedules (exhausted: {})",
        report.schedules, report.exhausted
    );
}
