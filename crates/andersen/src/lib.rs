//! # dynsum-andersen — exhaustive inclusion-based points-to analysis
//!
//! A whole-program, flow- and context-insensitive, field-sensitive
//! (Andersen-style) points-to solver over Pointer Assignment Graphs.
//!
//! The paper's toolchain uses Spark's Andersen analysis twice: to build
//! the on-the-fly call graph (Table 3's caption) and as the baseline
//! whole-program alternative that demand-driven analysis avoids. This
//! crate plays the same two roles in the reproduction, plus a third: it
//! is the *oracle* for the test suite — every demand-driven,
//! context-sensitive answer must be a subset of the Andersen solution,
//! and the context-insensitive demand engine must match it exactly.
//!
//! ```
//! use dynsum_andersen::Andersen;
//! use dynsum_pag::PagBuilder;
//!
//! let mut b = PagBuilder::new();
//! let m = b.add_method("main", None)?;
//! let v = b.add_local("v", m, None)?;
//! let w = b.add_local("w", m, None)?;
//! let o = b.add_obj("o1", None, Some(m))?;
//! b.add_new(o, v)?;
//! b.add_assign(v, w)?;
//! let result = Andersen::analyze(&b.finish());
//! assert_eq!(result.var_pts(w), &[o]);
//! # Ok::<(), dynsum_pag::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod solver;

pub use solver::Andersen;
