//! The inclusion-constraint worklist solver.

use std::collections::{HashMap, HashSet};

use dynsum_pag::{EdgeKind, FieldId, NodeRef, ObjId, Pag, VarId};

/// Result of a whole-program Andersen analysis over a PAG.
///
/// Points-to sets are available for every variable and for every
/// object-field pair that received a store. All sets are frozen into
/// sorted vectors for cheap iteration and binary-search membership.
#[derive(Debug, Clone)]
pub struct Andersen {
    var_pts: Vec<Vec<ObjId>>,
    field_pts: HashMap<(ObjId, FieldId), Vec<ObjId>>,
    propagations: u64,
}

impl Andersen {
    /// Runs the analysis to fixpoint.
    ///
    /// The solver treats every copy-like edge (`assign`, `assignglobal`,
    /// `entry_i`, `exit_i`) as a subset constraint — i.e. it is
    /// context-insensitive, exactly like Spark's whole-program analysis
    /// used by the paper to bootstrap the call graph (Table 3 caption) —
    /// and handles `load(f)`/`store(f)` through per-`(object, field)`
    /// sets with dynamically discovered copy edges.
    pub fn analyze(pag: &Pag) -> Andersen {
        Solver::new(pag).run()
    }

    /// The points-to set of a variable, sorted ascending.
    pub fn var_pts(&self, v: VarId) -> &[ObjId] {
        &self.var_pts[v.index()]
    }

    /// The points-to set of `o.f`, sorted ascending (empty if nothing was
    /// ever stored).
    pub fn field_pts(&self, o: ObjId, f: FieldId) -> &[ObjId] {
        self.field_pts.get(&(o, f)).map_or(&[], |v| v.as_slice())
    }

    /// `true` if `o` is in the points-to set of `v`.
    pub fn var_points_to(&self, v: VarId, o: ObjId) -> bool {
        self.var_pts[v.index()].binary_search(&o).is_ok()
    }

    /// Number of set-propagation operations performed (a deterministic
    /// work metric for benchmarks).
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    /// Sum of all variable points-to set sizes.
    pub fn total_pts_size(&self) -> usize {
        self.var_pts.iter().map(Vec::len).sum()
    }
}

/// Constraint-graph slots: one per variable, plus one per `(obj, field)`
/// pair materialized on demand.
struct Solver<'p> {
    pag: &'p Pag,
    /// Current points-to set per slot.
    pts: Vec<HashSet<ObjId>>,
    /// Copy successors per slot (dedup'd via `succ_set`).
    succs: Vec<Vec<usize>>,
    succ_set: HashSet<(usize, usize)>,
    /// For each variable slot that is the *base* of loads: `(f, dst slot)`.
    load_subs: Vec<Vec<(FieldId, usize)>>,
    /// For each variable slot that is the *base* of stores: `(f, src slot)`.
    store_subs: Vec<Vec<(FieldId, usize)>>,
    field_slot: HashMap<(ObjId, FieldId), usize>,
    worklist: Vec<(usize, Vec<ObjId>)>,
    propagations: u64,
}

impl<'p> Solver<'p> {
    fn new(pag: &'p Pag) -> Self {
        let nvars = pag.num_vars();
        Solver {
            pag,
            pts: vec![HashSet::new(); nvars],
            succs: vec![Vec::new(); nvars],
            succ_set: HashSet::new(),
            load_subs: vec![Vec::new(); nvars],
            store_subs: vec![Vec::new(); nvars],
            field_slot: HashMap::new(),
            worklist: Vec::new(),
            propagations: 0,
        }
    }

    fn field_slot(&mut self, o: ObjId, f: FieldId) -> usize {
        if let Some(&s) = self.field_slot.get(&(o, f)) {
            return s;
        }
        let s = self.pts.len();
        self.pts.push(HashSet::new());
        self.succs.push(Vec::new());
        self.load_subs.push(Vec::new());
        self.store_subs.push(Vec::new());
        self.field_slot.insert((o, f), s);
        s
    }

    fn add_copy(&mut self, from: usize, to: usize) {
        if from == to || !self.succ_set.insert((from, to)) {
            return;
        }
        self.succs[from].push(to);
        if !self.pts[from].is_empty() {
            let delta: Vec<ObjId> = self.pts[from].iter().copied().collect();
            self.insert_all(to, &delta);
        }
    }

    fn insert_all(&mut self, slot: usize, objs: &[ObjId]) {
        let mut delta = Vec::new();
        for &o in objs {
            if self.pts[slot].insert(o) {
                delta.push(o);
            }
        }
        if !delta.is_empty() {
            self.propagations += 1;
            self.worklist.push((slot, delta));
        }
    }

    fn run(mut self) -> Andersen {
        let pag = self.pag;

        // Seed constraints from the static edge set.
        for e in pag.edges() {
            match e.kind {
                EdgeKind::New => {
                    let NodeRef::Obj(o) = pag.node_ref(e.src) else {
                        continue;
                    };
                    let NodeRef::Var(v) = pag.node_ref(e.dst) else {
                        continue;
                    };
                    self.insert_all(v.index(), &[o]);
                }
                EdgeKind::Assign
                | EdgeKind::AssignGlobal
                | EdgeKind::Entry(_)
                | EdgeKind::Exit(_) => {
                    let (NodeRef::Var(s), NodeRef::Var(d)) =
                        (pag.node_ref(e.src), pag.node_ref(e.dst))
                    else {
                        continue;
                    };
                    self.add_copy(s.index(), d.index());
                }
                EdgeKind::Load(f) => {
                    let (NodeRef::Var(base), NodeRef::Var(dst)) =
                        (pag.node_ref(e.src), pag.node_ref(e.dst))
                    else {
                        continue;
                    };
                    self.load_subs[base.index()].push((f, dst.index()));
                    // Bases that already point somewhere must fire now.
                    let objs: Vec<ObjId> = self.pts[base.index()].iter().copied().collect();
                    for o in objs {
                        let fs = self.field_slot(o, f);
                        self.add_copy(fs, dst.index());
                    }
                }
                EdgeKind::Store(f) => {
                    let (NodeRef::Var(src), NodeRef::Var(base)) =
                        (pag.node_ref(e.src), pag.node_ref(e.dst))
                    else {
                        continue;
                    };
                    self.store_subs[base.index()].push((f, src.index()));
                    let objs: Vec<ObjId> = self.pts[base.index()].iter().copied().collect();
                    for o in objs {
                        let fs = self.field_slot(o, f);
                        self.add_copy(src.index(), fs);
                    }
                }
            }
        }

        // Difference-propagation fixpoint.
        while let Some((slot, delta)) = self.worklist.pop() {
            // Copy successors receive the delta.
            let succs = self.succs[slot].clone();
            for to in succs {
                self.insert_all(to, &delta);
            }
            // New pointees of a load/store base introduce copy edges.
            if slot < self.load_subs.len() {
                let loads = self.load_subs[slot].clone();
                let stores = self.store_subs[slot].clone();
                for &o in &delta {
                    for &(f, dst) in &loads {
                        let fs = self.field_slot(o, f);
                        self.add_copy(fs, dst);
                    }
                    for &(f, src) in &stores {
                        let fs = self.field_slot(o, f);
                        self.add_copy(src, fs);
                    }
                }
            }
        }

        // Freeze.
        let nvars = pag.num_vars();
        let mut var_pts = Vec::with_capacity(nvars);
        for slot in 0..nvars {
            let mut v: Vec<ObjId> = self.pts[slot].iter().copied().collect();
            v.sort_unstable();
            var_pts.push(v);
        }
        let mut field_pts = HashMap::with_capacity(self.field_slot.len());
        for (&key, &slot) in &self.field_slot {
            let mut v: Vec<ObjId> = self.pts[slot].iter().copied().collect();
            v.sort_unstable();
            field_pts.insert(key, v);
        }
        Andersen {
            var_pts,
            field_pts,
            propagations: self.propagations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsum_pag::PagBuilder;

    #[test]
    fn direct_allocation_and_copy() {
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let v = b.add_local("v", m, None).unwrap();
        let w = b.add_local("w", m, None).unwrap();
        let o = b.add_obj("o1", None, Some(m)).unwrap();
        b.add_new(o, v).unwrap();
        b.add_assign(v, w).unwrap();
        let a = Andersen::analyze(&b.finish());
        assert_eq!(a.var_pts(v), &[o]);
        assert_eq!(a.var_pts(w), &[o]);
        assert!(a.var_points_to(w, o));
    }

    #[test]
    fn store_then_load_through_alias() {
        // p = new A; q = p; p.f = x (x = new B); y = q.f  =>  y -> oB
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let p = b.add_local("p", m, None).unwrap();
        let q = b.add_local("q", m, None).unwrap();
        let x = b.add_local("x", m, None).unwrap();
        let y = b.add_local("y", m, None).unwrap();
        let oa = b.add_obj("oa", None, Some(m)).unwrap();
        let ob = b.add_obj("ob", None, Some(m)).unwrap();
        let f = b.field("f");
        b.add_new(oa, p).unwrap();
        b.add_new(ob, x).unwrap();
        b.add_assign(p, q).unwrap();
        b.add_store(f, x, p).unwrap();
        b.add_load(f, q, y).unwrap();
        let a = Andersen::analyze(&b.finish());
        assert_eq!(a.var_pts(y), &[ob]);
        assert_eq!(a.field_pts(oa, f), &[ob]);
        assert!(a.field_pts(ob, f).is_empty());
    }

    #[test]
    fn load_before_store_in_edge_order_still_converges() {
        // Same as above but edges added load-first: fixpoint must not
        // depend on edge insertion order.
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let p = b.add_local("p", m, None).unwrap();
        let q = b.add_local("q", m, None).unwrap();
        let x = b.add_local("x", m, None).unwrap();
        let y = b.add_local("y", m, None).unwrap();
        let oa = b.add_obj("oa", None, Some(m)).unwrap();
        let ob = b.add_obj("ob", None, Some(m)).unwrap();
        let f = b.field("f");
        b.add_load(f, q, y).unwrap();
        b.add_store(f, x, p).unwrap();
        b.add_assign(p, q).unwrap();
        b.add_new(oa, p).unwrap();
        b.add_new(ob, x).unwrap();
        let a = Andersen::analyze(&b.finish());
        assert_eq!(a.var_pts(y), &[ob]);
    }

    #[test]
    fn entry_exit_merge_contexts() {
        // id(p) { return p; } called twice: both callers' results merge.
        let mut b = PagBuilder::new();
        let main = b.add_method("main", None).unwrap();
        let id = b.add_method("id", None).unwrap();
        let a1 = b.add_local("a1", main, None).unwrap();
        let a2 = b.add_local("a2", main, None).unwrap();
        let r1 = b.add_local("r1", main, None).unwrap();
        let r2 = b.add_local("r2", main, None).unwrap();
        let p = b.add_local("p", id, None).unwrap();
        let o1 = b.add_obj("o1", None, Some(main)).unwrap();
        let o2 = b.add_obj("o2", None, Some(main)).unwrap();
        b.add_new(o1, a1).unwrap();
        b.add_new(o2, a2).unwrap();
        let s1 = b.add_call_site("1", main).unwrap();
        let s2 = b.add_call_site("2", main).unwrap();
        b.add_entry(s1, a1, p).unwrap();
        b.add_entry(s2, a2, p).unwrap();
        b.add_exit(s1, p, r1).unwrap();
        b.add_exit(s2, p, r2).unwrap();
        let a = Andersen::analyze(&b.finish());
        // Context-insensitive: both results see both objects.
        assert_eq!(a.var_pts(r1), &[o1, o2]);
        assert_eq!(a.var_pts(r2), &[o1, o2]);
    }

    #[test]
    fn globals_flow_everywhere() {
        let mut b = PagBuilder::new();
        let m1 = b.add_method("m1", None).unwrap();
        let m2 = b.add_method("m2", None).unwrap();
        let v = b.add_local("v", m1, None).unwrap();
        let w = b.add_local("w", m2, None).unwrap();
        let g = b.add_global("G", None).unwrap();
        let o = b.add_obj("o1", None, Some(m1)).unwrap();
        b.add_new(o, v).unwrap();
        b.add_assign(v, g).unwrap();
        b.add_assign(g, w).unwrap();
        let a = Andersen::analyze(&b.finish());
        assert_eq!(a.var_pts(g), &[o]);
        assert_eq!(a.var_pts(w), &[o]);
    }

    #[test]
    fn points_to_cycle_terminates() {
        // x = y; y = x; x = new O.
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let x = b.add_local("x", m, None).unwrap();
        let y = b.add_local("y", m, None).unwrap();
        let o = b.add_obj("o1", None, Some(m)).unwrap();
        b.add_assign(x, y).unwrap();
        b.add_assign(y, x).unwrap();
        b.add_new(o, x).unwrap();
        let a = Andersen::analyze(&b.finish());
        assert_eq!(a.var_pts(x), &[o]);
        assert_eq!(a.var_pts(y), &[o]);
    }

    #[test]
    fn recursive_field_structure_terminates() {
        // n.next = n (cyclic heap): l = n.next.next ... fixpoint is finite.
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let n = b.add_local("n", m, None).unwrap();
        let l = b.add_local("l", m, None).unwrap();
        let o = b.add_obj("o1", None, Some(m)).unwrap();
        let f = b.field("next");
        b.add_new(o, n).unwrap();
        b.add_store(f, n, n).unwrap();
        b.add_load(f, n, l).unwrap();
        let a = Andersen::analyze(&b.finish());
        assert_eq!(a.var_pts(l), &[o]);
        assert_eq!(a.field_pts(o, f), &[o]);
    }

    #[test]
    fn empty_sets_for_unreached_vars() {
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let v = b.add_local("v", m, None).unwrap();
        let a = Andersen::analyze(&b.finish());
        assert!(a.var_pts(v).is_empty());
        assert_eq!(a.total_pts_size(), 0);
    }

    #[test]
    fn propagation_counter_moves() {
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let v = b.add_local("v", m, None).unwrap();
        let o = b.add_obj("o1", None, Some(m)).unwrap();
        b.add_new(o, v).unwrap();
        let a = Andersen::analyze(&b.finish());
        assert!(a.propagations() >= 1);
    }

    #[test]
    fn motivating_example_fixpoint() {
        // Figure 2: the context-insensitive fixpoint keeps the direct
        // allocations precise but conflates the two retrieve() results —
        // s1 and s2 both reach {o26, o29}, which is exactly why the
        // paper's context-sensitive engines exist. The equivalence suite
        // trusts this oracle, so pin its answers down exactly.
        let m = dynsum_workloads::motivating_pag();
        let a = Andersen::analyze(&m.pag);
        let obj = |label: &str| m.pag.find_obj(label).unwrap();
        let var = |name: &str| m.pag.find_var(name).unwrap();

        assert_eq!(a.var_pts(var("v1")), &[obj("o25")]);
        assert_eq!(a.var_pts(var("v2")), &[obj("o28")]);
        assert_eq!(a.var_pts(var("c1")), &[obj("o27")]);
        assert_eq!(a.var_pts(var("c2")), &[obj("o30")]);

        let conflated = [obj("o26"), obj("o29")];
        assert_eq!(a.var_pts(m.s1), &conflated[..]);
        assert_eq!(a.var_pts(m.s2), &conflated[..]);

        // Both payloads sit in the one backing array o5 (the figure's
        // single Object[] allocation inside Vector.<init>).
        let arr = m.pag.find_field(dynsum_pag::Pag::ARRAY_FIELD_NAME).unwrap();
        assert_eq!(a.field_pts(obj("o5"), arr), &conflated[..]);
    }

    #[test]
    fn store_load_chain_fixpoint() {
        // A two-hop heap chain: base.f = mid; mid.g = leaf; then reading
        // back base.f.g must reach exactly the leaf allocation.
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let f = b.field("f");
        let g = b.field("g");
        let base = b.add_local("base", m, None).unwrap();
        let mid = b.add_local("mid", m, None).unwrap();
        let leaf = b.add_local("leaf", m, None).unwrap();
        let x = b.add_local("x", m, None).unwrap();
        let y = b.add_local("y", m, None).unwrap();
        let o_base = b.add_obj("o_base", None, Some(m)).unwrap();
        let o_mid = b.add_obj("o_mid", None, Some(m)).unwrap();
        let o_leaf = b.add_obj("o_leaf", None, Some(m)).unwrap();
        b.add_new(o_base, base).unwrap();
        b.add_new(o_mid, mid).unwrap();
        b.add_new(o_leaf, leaf).unwrap();
        b.add_store(f, mid, base).unwrap();
        b.add_store(g, leaf, mid).unwrap();
        b.add_load(f, base, x).unwrap();
        b.add_load(g, x, y).unwrap();

        let a = Andersen::analyze(&b.finish());
        assert_eq!(a.field_pts(o_base, f), &[o_mid]);
        assert_eq!(a.field_pts(o_mid, g), &[o_leaf]);
        assert_eq!(a.var_pts(x), &[o_mid]);
        assert_eq!(a.var_pts(y), &[o_leaf]);
        // The chain stays precise: y reaches neither o_base nor o_mid.
        assert!(!a.var_points_to(y, o_base));
        assert!(!a.var_points_to(y, o_mid));
    }
}
