//! The experiment implementations behind the harness binaries.

use std::time::Instant;

use dynsum_cfl::Trace;
use dynsum_clients::{run_batches, run_client, ClientKind};
use dynsum_core::{DemandPointsTo, DynSum, EngineConfig, StaSum};
use dynsum_workloads::{motivating_pag, Motivating, SCALABILITY_BENCHMARKS};

use crate::options::{EngineKind, ExperimentOptions};
use crate::table::Table;

// ---------------------------------------------------------------- Table 1

/// Output of the Table 1 experiment: DYNSUM's traversal traces for the
/// two motivating queries.
#[derive(Debug)]
pub struct Table1Output {
    /// The Figure 2 PAG and query handles.
    pub motivating: Motivating,
    /// Trace of the first query (`s1`) — everything computed fresh.
    pub trace_s1: Trace,
    /// Trace of the second query (`s2`) — summaries reused.
    pub trace_s2: Trace,
    /// Rendered points-to set of `s1` (object labels).
    pub pts_s1: Vec<String>,
    /// Rendered points-to set of `s2`.
    pub pts_s2: Vec<String>,
    /// Work counters of the first query.
    pub stats_s1: dynsum_cfl::QueryStats,
    /// Work counters of the second query (reuse makes it cheaper).
    pub stats_s2: dynsum_cfl::QueryStats,
}

impl Table1Output {
    /// Renders both traces in the style of Table 1.
    pub fn render(&self) -> String {
        let pag = &self.motivating.pag;
        let mut out = String::new();
        out.push_str("== Table 1: DYNSUM traversals for s1 and s2 (Figure 2) ==\n");
        out.push_str(&format!(
            "query pointsTo(s1): {} steps, {} reused, {} edges traversed\n",
            self.trace_s1.len(),
            self.trace_s1.reuse_count(),
            self.stats_s1.edges_traversed
        ));
        out.push_str(&self.trace_s1.render(pag));
        out.push_str(&format!("pts(s1) = {{{}}}\n\n", self.pts_s1.join(", ")));
        out.push_str(&format!(
            "query pointsTo(s2): {} steps, {} reused, {} edges traversed\n",
            self.trace_s2.len(),
            self.trace_s2.reuse_count(),
            self.stats_s2.edges_traversed
        ));
        out.push_str(&self.trace_s2.render(pag));
        out.push_str(&format!("pts(s2) = {{{}}}\n", self.pts_s2.join(", ")));
        out
    }
}

/// Runs DYNSUM with tracing over the motivating example: query `s1`,
/// then `s2`, exactly as in §4.3. The second trace must be shorter and
/// contain *reuse* steps.
pub fn table1() -> Table1Output {
    let motivating = motivating_pag();
    let mut engine = DynSum::new(&motivating.pag);
    engine.set_tracing(true);

    let r1 = engine.points_to(motivating.s1);
    let trace_s1 = engine.take_trace().expect("tracing enabled");
    let r2 = engine.points_to(motivating.s2);
    let trace_s2 = engine.take_trace().expect("tracing enabled");

    let label = |pts: &dynsum_cfl::PointsToSet| -> Vec<String> {
        pts.objects()
            .into_iter()
            .map(|o| motivating.pag.obj(o).label.clone())
            .collect()
    };
    Table1Output {
        pts_s1: label(&r1.pts),
        pts_s2: label(&r2.pts),
        stats_s1: r1.stats,
        stats_s2: r2.stats,
        motivating,
        trace_s1,
        trace_s2,
    }
}

// ---------------------------------------------------------------- Table 2

/// The qualitative comparison of the four analyses (Table 2).
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2: strengths and weaknesses of four demand-driven points-to analyses",
        &[
            "Algorithm",
            "Full Precision",
            "Memorization",
            "Reuse",
            "On-Demandness",
        ],
    );
    t.push_row(vec![
        "NOREFINE".into(),
        "Yes".into(),
        "No".into(),
        "No".into(),
        "Yes".into(),
    ]);
    t.push_row(vec![
        "REFINEPTS".into(),
        "Yes".into(),
        "Dynamic (within queries)".into(),
        "Context Dependent".into(),
        "Yes".into(),
    ]);
    t.push_row(vec![
        "STASUM".into(),
        "No".into(),
        "Static (across queries)".into(),
        "Context Independent".into(),
        "Partly".into(),
    ]);
    t.push_row(vec![
        "DYNSUM".into(),
        "Yes".into(),
        "Dynamic (across queries)".into(),
        "Context Independent".into(),
        "Yes".into(),
    ]);
    t
}

// ---------------------------------------------------------------- Table 3

/// Generates the selected workloads and renders their shape statistics —
/// the reproduction of Table 3.
pub fn table3(opts: &ExperimentOptions) -> Table {
    let mut t = Table::new(
        &format!("Table 3: benchmark statistics (scale {})", opts.scale),
        &[
            "Benchmark",
            "Methods",
            "O",
            "V",
            "G",
            "new",
            "assign",
            "load",
            "store",
            "entry",
            "exit",
            "aglobal",
            "Locality",
            "SafeCast",
            "NullDeref",
            "FactoryM",
        ],
    );
    for w in opts.workloads() {
        let s = w.pag.stats();
        t.push_row(vec![
            w.name.clone(),
            s.methods.to_string(),
            s.objs.to_string(),
            s.locals.to_string(),
            s.globals.to_string(),
            s.new_edges.to_string(),
            s.assign_edges.to_string(),
            s.load_edges.to_string(),
            s.store_edges.to_string(),
            s.entry_edges.to_string(),
            s.exit_edges.to_string(),
            s.assignglobal_edges.to_string(),
            format!("{:.1}%", s.locality() * 100.0),
            w.info.casts.len().to_string(),
            w.info.derefs.len().to_string(),
            w.info.factories.len().to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------- Table 4

/// One engine × client × benchmark measurement.
#[derive(Debug, Clone)]
pub struct Table4Cell {
    /// Benchmark name.
    pub benchmark: String,
    /// Client.
    pub client: ClientKind,
    /// Engine.
    pub engine: EngineKind,
    /// Wall-clock milliseconds for the client's whole query stream.
    pub millis: f64,
    /// Deterministic work: PAG edges traversed.
    pub edges: u64,
    /// Sites proven.
    pub proven: usize,
    /// Sites refuted.
    pub refuted: usize,
    /// Sites unresolved (budget).
    pub unresolved: usize,
}

/// All Table 4 measurements.
#[derive(Debug, Clone)]
pub struct Table4Output {
    /// Every cell, in (client, benchmark, engine) order.
    pub cells: Vec<Table4Cell>,
}

impl Table4Output {
    /// The cell for a given coordinate.
    pub fn cell(&self, bench: &str, client: ClientKind, engine: EngineKind) -> Option<&Table4Cell> {
        self.cells
            .iter()
            .find(|c| c.benchmark == bench && c.client == client && c.engine == engine)
    }

    /// REFINEPTS-time over DYNSUM-time for a benchmark (the paper's
    /// headline speedups), using the deterministic edge metric.
    pub fn speedup_edges(&self, bench: &str, client: ClientKind) -> Option<f64> {
        let r = self.cell(bench, client, EngineKind::RefinePts)?;
        let d = self.cell(bench, client, EngineKind::DynSum)?;
        if d.edges == 0 {
            return None;
        }
        Some(r.edges as f64 / d.edges as f64)
    }

    /// Wall-clock speedup (noisier at small scales).
    pub fn speedup_time(&self, bench: &str, client: ClientKind) -> Option<f64> {
        let r = self.cell(bench, client, EngineKind::RefinePts)?;
        let d = self.cell(bench, client, EngineKind::DynSum)?;
        if d.millis <= 0.0 {
            return None;
        }
        Some(r.millis / d.millis)
    }

    /// Arithmetic mean of per-benchmark edge speedups for a client.
    pub fn average_speedup_edges(&self, client: ClientKind) -> f64 {
        let benches: Vec<&str> = self
            .cells
            .iter()
            .filter(|c| c.client == client)
            .map(|c| c.benchmark.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let ratios: Vec<f64> = benches
            .iter()
            .filter_map(|b| self.speedup_edges(b, client))
            .collect();
        if ratios.is_empty() {
            0.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }

    /// Renders one Table 4 block per client (times) plus the edge
    /// metric and speedup rows.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let benches: Vec<String> = self
            .cells
            .iter()
            .map(|c| c.benchmark.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for client in ClientKind::ALL {
            let mut headers: Vec<&str> = vec!["Engine (ms)"];
            let bench_refs: Vec<&str> = benches.iter().map(String::as_str).collect();
            headers.extend(bench_refs.iter());
            let mut t = Table::new(&format!("Table 4 — {client}"), &headers);
            for engine in EngineKind::TABLE4 {
                let mut row = vec![engine.name().to_owned()];
                for b in &benches {
                    row.push(
                        self.cell(b, client, engine)
                            .map_or("-".into(), |c| format!("{:.1}", c.millis)),
                    );
                }
                t.push_row(row);
            }
            let mut row = vec!["DYNSUM speedup (edges)".to_owned()];
            for b in &benches {
                row.push(
                    self.speedup_edges(b, client)
                        .map_or("-".into(), |s| format!("{s:.2}x")),
                );
            }
            t.push_row(row);
            out.push_str(&t.render());
            out.push_str(&format!(
                "average speedup ({client}, edges): {:.2}x\n\n",
                self.average_speedup_edges(client)
            ));
        }
        out
    }
}

/// Runs the Table 4 experiment: every engine × client × benchmark with a
/// fresh engine per cell (DYNSUM's cache persists within a cell's query
/// stream — that is the measured effect).
pub fn table4(opts: &ExperimentOptions) -> Table4Output {
    let mut cells = Vec::new();
    let config = opts.engine_config();
    for w in opts.workloads() {
        for client in ClientKind::ALL {
            for engine_kind in EngineKind::TABLE4 {
                let mut engine = engine_kind.build(&w.pag, config);
                let started = Instant::now();
                let report = run_client(client, &w.pag, &w.info, engine.as_mut());
                let elapsed = started.elapsed();
                cells.push(Table4Cell {
                    benchmark: w.name.clone(),
                    client,
                    engine: engine_kind,
                    millis: elapsed.as_secs_f64() * 1e3,
                    edges: report.stats.edges_traversed,
                    proven: report.proven,
                    refuted: report.refuted,
                    unresolved: report.unresolved,
                });
            }
        }
    }
    Table4Output { cells }
}

// ---------------------------------------------------------------- Figure 4

/// Per-batch measurements for one benchmark × client.
#[derive(Debug, Clone)]
pub struct BatchSeries {
    /// Benchmark name.
    pub benchmark: String,
    /// Client.
    pub client: ClientKind,
    /// REFINEPTS per-batch edge counts.
    pub refine_edges: Vec<u64>,
    /// DYNSUM per-batch edge counts (cache persists across batches).
    pub dynsum_edges: Vec<u64>,
    /// REFINEPTS per-batch milliseconds.
    pub refine_ms: Vec<f64>,
    /// DYNSUM per-batch milliseconds.
    pub dynsum_ms: Vec<f64>,
}

impl BatchSeries {
    /// DYNSUM edge work normalized to REFINEPTS per batch — the Figure 4
    /// curve (deterministic form).
    pub fn normalized_edges(&self) -> Vec<f64> {
        self.dynsum_edges
            .iter()
            .zip(&self.refine_edges)
            .map(|(&d, &r)| if r == 0 { 0.0 } else { d as f64 / r as f64 })
            .collect()
    }

    /// Wall-clock normalization (noisy at small scales).
    pub fn normalized_time(&self) -> Vec<f64> {
        self.dynsum_ms
            .iter()
            .zip(&self.refine_ms)
            .map(|(&d, &r)| if r <= 0.0 { 0.0 } else { d / r })
            .collect()
    }
}

/// Runs the Figure 4 experiment: queries split into `n_batches`, DYNSUM
/// vs REFINEPTS per batch, on the paper's three scalability benchmarks
/// (or the explicitly selected ones).
pub fn figure4(opts: &ExperimentOptions, n_batches: usize) -> Vec<BatchSeries> {
    let config = opts.engine_config();
    let mut out = Vec::new();
    for w in opts.workloads() {
        if opts.benchmarks.is_empty() && !SCALABILITY_BENCHMARKS.contains(&w.name.as_str()) {
            continue;
        }
        for client in ClientKind::ALL {
            let mut refine = EngineKind::RefinePts.build(&w.pag, config);
            let refine_batches = run_batches(client, &w.pag, &w.info, refine.as_mut(), n_batches);
            let mut dynsum = EngineKind::DynSum.build(&w.pag, config);
            let dynsum_batches = run_batches(client, &w.pag, &w.info, dynsum.as_mut(), n_batches);
            out.push(BatchSeries {
                benchmark: w.name.clone(),
                client,
                refine_edges: refine_batches
                    .iter()
                    .map(|b| b.report.stats.edges_traversed)
                    .collect(),
                dynsum_edges: dynsum_batches
                    .iter()
                    .map(|b| b.report.stats.edges_traversed)
                    .collect(),
                refine_ms: refine_batches
                    .iter()
                    .map(|b| b.report.elapsed.as_secs_f64() * 1e3)
                    .collect(),
                dynsum_ms: dynsum_batches
                    .iter()
                    .map(|b| b.report.elapsed.as_secs_f64() * 1e3)
                    .collect(),
            });
        }
    }
    out
}

/// Renders Figure 4 as per-batch normalized series.
pub fn render_figure4(series: &[BatchSeries]) -> String {
    let mut out = String::new();
    out.push_str("== Figure 4: DYNSUM per-batch work normalized to REFINEPTS ==\n");
    for s in series {
        out.push_str(&format!("{} / {}:\n  edges: ", s.benchmark, s.client));
        for v in s.normalized_edges() {
            out.push_str(&format!("{v:.2} "));
        }
        out.push_str("\n  time:  ");
        for v in s.normalized_time() {
            out.push_str(&format!("{v:.2} "));
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------- Figure 5

/// Cumulative summary counts for one benchmark × client.
#[derive(Debug, Clone)]
pub struct Figure5Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Client.
    pub client: ClientKind,
    /// DYNSUM's cumulative cache size after each batch.
    pub dynsum_cumulative: Vec<usize>,
    /// STASUM's static summary count (the 100% line).
    pub stasum_total: usize,
}

impl Figure5Row {
    /// The Figure 5 series: percentages of the STASUM total.
    pub fn percentages(&self) -> Vec<f64> {
        self.dynsum_cumulative
            .iter()
            .map(|&d| {
                if self.stasum_total == 0 {
                    0.0
                } else {
                    100.0 * d as f64 / self.stasum_total as f64
                }
            })
            .collect()
    }
}

/// Runs the Figure 5 experiment: DYNSUM's cumulative summary counts per
/// batch against STASUM's precomputed total.
pub fn figure5(opts: &ExperimentOptions, n_batches: usize) -> Vec<Figure5Row> {
    let config = opts.engine_config();
    let mut out = Vec::new();
    for w in opts.workloads() {
        if opts.benchmarks.is_empty() && !SCALABILITY_BENCHMARKS.contains(&w.name.as_str()) {
            continue;
        }
        let stasum = StaSum::precompute_with(&w.pag, config, Default::default());
        let stasum_total = stasum.summary_count();
        for client in ClientKind::ALL {
            let mut dynsum = DynSum::with_config(&w.pag, config);
            let batches = run_batches(client, &w.pag, &w.info, &mut dynsum, n_batches);
            out.push(Figure5Row {
                benchmark: w.name.clone(),
                client,
                dynsum_cumulative: batches.iter().map(|b| b.cumulative_summaries).collect(),
                stasum_total,
            });
        }
    }
    out
}

/// Renders Figure 5 as percentage series.
pub fn render_figure5(rows: &[Figure5Row]) -> String {
    let mut out = String::new();
    out.push_str("== Figure 5: cumulative DYNSUM summaries as % of STASUM ==\n");
    for r in rows {
        out.push_str(&format!(
            "{} / {} (STASUM = {} summaries):\n  ",
            r.benchmark, r.client, r.stasum_total
        ));
        for p in r.percentages() {
            out.push_str(&format!("{p:.1}% "));
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------- Ablation

/// One ablation measurement.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Wall-clock milliseconds.
    pub millis: f64,
    /// Edges traversed.
    pub edges: u64,
    /// Unresolved queries.
    pub unresolved: usize,
    /// Summary count after the run.
    pub summaries: usize,
}

/// Runs the design-choice ablations DESIGN.md calls out: the summary
/// cache on/off, context sensitivity on/off, and a budget sweep.
/// Uses the NullDeref client (the paper's most demanding one).
pub fn ablation(opts: &ExperimentOptions) -> Vec<AblationRow> {
    let mut out = Vec::new();
    let base = opts.engine_config();
    for w in opts.workloads() {
        let run = |label: &str, config: EngineConfig, out: &mut Vec<AblationRow>| {
            let mut engine = DynSum::with_config(&w.pag, config);
            let started = Instant::now();
            let report = run_client(ClientKind::NullDeref, &w.pag, &w.info, &mut engine);
            out.push(AblationRow {
                label: label.to_owned(),
                benchmark: w.name.clone(),
                millis: started.elapsed().as_secs_f64() * 1e3,
                edges: report.stats.edges_traversed,
                unresolved: report.unresolved,
                summaries: engine.summary_count(),
            });
        };
        run("cache on (default)", base, &mut out);
        run(
            "cache off",
            EngineConfig {
                cache_summaries: false,
                ..base
            },
            &mut out,
        );
        run(
            "context-insensitive",
            EngineConfig {
                context_sensitive: false,
                ..base
            },
            &mut out,
        );
        for budget in [1_000, 10_000, 75_000] {
            run(
                &format!("budget {budget}"),
                EngineConfig { budget, ..base },
                &mut out,
            );
        }
    }
    out
}

/// Renders the ablation rows.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut t = Table::new(
        "Ablation (DYNSUM, NullDeref client)",
        &[
            "Configuration",
            "Benchmark",
            "ms",
            "edges",
            "unresolved",
            "summaries",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.label.clone(),
            r.benchmark.clone(),
            format!("{:.1}", r.millis),
            r.edges.to_string(),
            r.unresolved.to_string(),
            r.summaries.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentOptions {
        ExperimentOptions {
            scale: 0.01,
            benchmarks: vec!["soot-c".to_owned()],
            ..ExperimentOptions::default()
        }
    }

    #[test]
    fn table1_reproduces_reuse() {
        let t = table1();
        assert_eq!(t.pts_s1, vec!["o26"]);
        assert_eq!(t.pts_s2, vec!["o29"]);
        assert!(t.trace_s1.reuse_count() == 0);
        assert!(t.trace_s2.reuse_count() > 0, "s2 must reuse summaries");
        // Reuse pays in avoided edge traversals (the paper's Table 1
        // collapses reused spans into single rows; our trace keeps one
        // row per driver configuration, so compare edge work).
        assert!(
            t.stats_s2.edges_traversed < t.stats_s1.edges_traversed,
            "s2 ({} edges) must be cheaper than s1 ({} edges)",
            t.stats_s2.edges_traversed,
            t.stats_s1.edges_traversed
        );
        let rendered = t.render();
        assert!(rendered.contains("pts(s1) = {o26}"));
    }

    #[test]
    fn table2_has_four_rows() {
        let t = table2();
        assert_eq!(t.rows.len(), 4);
        assert!(t.render().contains("DYNSUM"));
    }

    #[test]
    fn table3_renders_selected() {
        let t = table3(&tiny());
        assert_eq!(t.rows.len(), 1);
        assert!(t.render().contains("soot-c"));
    }

    #[test]
    fn table4_dynsum_beats_refinepts_on_edges() {
        let out = table4(&tiny());
        assert_eq!(out.cells.len(), 9); // 1 bench × 3 clients × 3 engines
        for client in ClientKind::ALL {
            let s = out.speedup_edges("soot-c", client).unwrap();
            assert!(
                s > 1.0,
                "{client}: DYNSUM must do less edge work (speedup {s:.2})"
            );
        }
        // Precision agreement across engines.
        for client in ClientKind::ALL {
            let d = out.cell("soot-c", client, EngineKind::DynSum).unwrap();
            let n = out.cell("soot-c", client, EngineKind::NoRefine).unwrap();
            assert_eq!((d.proven, d.refuted), (n.proven, n.refuted), "{client}");
        }
        assert!(out.render().contains("average speedup"));
    }

    #[test]
    fn figure4_curve_trends_down() {
        let series = figure4(&tiny(), 5);
        assert_eq!(series.len(), 3);
        for s in &series {
            let norm = s.normalized_edges();
            assert!(norm.len() >= 4);
            // The curve trends down as the cache warms: no warm batch
            // may exceed the cold first batch (per-batch jitter is
            // expected at tiny scales, hence the tolerance; the run is
            // deterministic in the workload seed). The tolerance covers
            // one-batch spikes from the per-batch query mix — both the
            // numerator (DYNSUM) and denominator (REFINEPTS) shift with
            // engine-rule changes — while the mean check below pins the
            // actual reuse property.
            let cold = norm[0];
            let worst_warm = norm[1..].iter().copied().fold(f64::MIN, f64::max);
            let mean_warm = norm[1..].iter().sum::<f64>() / (norm.len() - 1) as f64;
            assert!(
                mean_warm <= cold,
                "{}/{}: warm batches must be cheaper on average ({norm:?})",
                s.benchmark,
                s.client
            );
            assert!(
                worst_warm <= cold + 0.10,
                "{}/{}: cold {cold:.2} -> worst warm {worst_warm:.2} ({norm:?})",
                s.benchmark,
                s.client
            );
        }
        assert!(render_figure4(&series).contains("Figure 4"));
    }

    #[test]
    fn figure5_dynsum_fraction_grows_and_stays_partial() {
        let rows = figure5(&tiny(), 5);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.stasum_total > 0);
            let p = r.percentages();
            for w in p.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "cumulative must not shrink");
            }
        }
        assert!(render_figure5(&rows).contains("Figure 5"));
    }

    #[test]
    fn ablation_cache_off_costs_more_edges() {
        let rows = ablation(&tiny());
        let on = rows
            .iter()
            .find(|r| r.label.starts_with("cache on"))
            .unwrap();
        let off = rows.iter().find(|r| r.label == "cache off").unwrap();
        assert!(off.edges >= on.edges);
        assert_eq!(off.summaries, 0);
        assert!(render_ablation(&rows).contains("Ablation"));
    }
}
