//! Experiment options and engine selection.

use dynsum_core::EngineConfig;
use dynsum_workloads::{generate, GeneratorOptions, Workload, PROFILES};

/// The engines of Table 2, constructible by name. Lives in
/// `dynsum-core` since the `Session` API redesign (sessions and the
/// harness pick engines by the same kind); re-exported here for the
/// experiment code and its historical users.
pub use dynsum_core::EngineKind;

/// Options shared by all experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOptions {
    /// Workload scale relative to the paper's benchmark sizes.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Per-query traversal budget (the paper uses 75,000).
    pub budget: u64,
    /// Restrict to these benchmarks (all nine when empty).
    pub benchmarks: Vec<String>,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            scale: 0.02,
            seed: 0xD45,
            budget: 75_000,
            benchmarks: Vec::new(),
        }
    }
}

impl ExperimentOptions {
    /// Parses command-line style arguments (`--scale 0.05 --seed 1
    /// --budget 75000 --bench soot-c,bloat`). Unknown flags are
    /// rejected.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed arguments.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut opts = ExperimentOptions::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = || {
                it.next()
                    .ok_or_else(|| format!("flag {flag} expects a value"))
            };
            match flag.as_str() {
                "--scale" => {
                    opts.scale = value()?.parse().map_err(|e| format!("bad --scale: {e}"))?;
                }
                "--seed" => {
                    opts.seed = value()?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--budget" => {
                    opts.budget = value()?.parse().map_err(|e| format!("bad --budget: {e}"))?;
                }
                "--bench" => {
                    opts.benchmarks = value()?
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .filter(|s| !s.is_empty())
                        .collect();
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(opts)
    }

    /// The engine configuration implied by these options.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            budget: self.budget,
            ..EngineConfig::default()
        }
    }

    /// Generates the selected workloads.
    pub fn workloads(&self) -> Vec<Workload> {
        let gen_opts = GeneratorOptions {
            scale: self.scale,
            seed: self.seed,
            ..GeneratorOptions::default()
        };
        PROFILES
            .iter()
            .filter(|p| self.benchmarks.is_empty() || self.benchmarks.iter().any(|b| b == p.name))
            .map(|p| generate(p, &gen_opts))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> impl Iterator<Item = String> + '_ {
        s.split_whitespace().map(str::to_owned)
    }

    #[test]
    fn parses_all_flags() {
        let o = ExperimentOptions::parse(args(
            "--scale 0.5 --seed 9 --budget 1000 --bench soot-c,bloat",
        ))
        .unwrap();
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.seed, 9);
        assert_eq!(o.budget, 1000);
        assert_eq!(o.benchmarks, vec!["soot-c", "bloat"]);
    }

    #[test]
    fn rejects_unknown_flags() {
        assert!(ExperimentOptions::parse(args("--nope 1")).is_err());
        assert!(ExperimentOptions::parse(args("--scale")).is_err());
        assert!(ExperimentOptions::parse(args("--scale abc")).is_err());
    }

    #[test]
    fn workload_filter_applies() {
        let mut o = ExperimentOptions {
            scale: 0.005,
            ..ExperimentOptions::default()
        };
        o.benchmarks = vec!["avrora".to_owned()];
        let ws = o.workloads();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].name, "avrora");
    }

    #[test]
    fn engine_kinds_build() {
        let o = ExperimentOptions {
            scale: 0.005,
            benchmarks: vec!["luindex".to_owned()],
            ..ExperimentOptions::default()
        };
        let w = &o.workloads()[0];
        for kind in [
            EngineKind::NoRefine,
            EngineKind::RefinePts,
            EngineKind::DynSum,
            EngineKind::StaSum,
        ] {
            let mut e = kind.build(&w.pag, o.engine_config());
            assert_eq!(e.name(), kind.name());
            if let Some(&q) = w.info.derefs.first().map(|d| &d.base) {
                let _ = e.points_to(q);
            }
        }
    }
}
