//! The `perf_report` experiment: a machine-readable engine performance
//! snapshot, recorded as `BENCH_report.json` from every PR onward.
//!
//! Unlike the table/figure experiments (which reproduce the paper), this
//! one exists to track the *implementation's* performance trajectory:
//! per-engine wall time, deterministic edge work, cache hit rates, and —
//! the headline number — DYNSUM's batch query throughput on the medium
//! generated workload. CI runs the small profile on every push; `make
//! bench-report` runs the medium one locally.

use std::time::Instant;

use dynsum_cfl::{CtxId, QueryResult};
use dynsum_clients::{queries_for, run_batches, run_client, ClientKind};
use dynsum_core::{DemandPointsTo, DynSum, Session, SessionQuery};
use dynsum_pag::ObjId;
use dynsum_workloads::SCALABILITY_BENCHMARKS;

use crate::options::{EngineKind, ExperimentOptions};

/// Named workload sizes for the perf report.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum PerfProfile {
    /// Tiny, CI-friendly: `soot-c` at scale 0.01 (seconds).
    Small,
    /// The recorded trajectory point: the three scalability benchmarks
    /// at scale 0.5 (single-digit seconds).
    Medium,
}

impl PerfProfile {
    /// Profile name as recorded in the report.
    pub fn name(self) -> &'static str {
        match self {
            PerfProfile::Small => "small",
            PerfProfile::Medium => "medium",
        }
    }

    /// Parses a profile name.
    pub fn parse(s: &str) -> Option<PerfProfile> {
        match s {
            "small" => Some(PerfProfile::Small),
            "medium" => Some(PerfProfile::Medium),
            _ => None,
        }
    }

    /// The experiment options this profile implies.
    pub fn options(self) -> ExperimentOptions {
        match self {
            PerfProfile::Small => ExperimentOptions {
                scale: 0.01,
                benchmarks: vec!["soot-c".to_owned()],
                ..ExperimentOptions::default()
            },
            PerfProfile::Medium => ExperimentOptions {
                scale: 0.5,
                benchmarks: SCALABILITY_BENCHMARKS
                    .iter()
                    .map(|s| (*s).to_owned())
                    .collect(),
                ..ExperimentOptions::default()
            },
        }
    }
}

/// Aggregated measurements for one engine across every selected
/// benchmark × client stream (fresh engine per stream, cross-query state
/// persisting within it — the Table 4 setup).
#[derive(Debug, Clone)]
pub struct EnginePerf {
    /// Engine name (`"DYNSUM"`, …).
    pub engine: String,
    /// Engine construction time (includes STASUM's precomputation).
    pub setup_ms: f64,
    /// Wall-clock milliseconds over all query streams.
    pub wall_ms: f64,
    /// PAG edges traversed (deterministic work metric).
    pub edges_traversed: u64,
    /// Summary/memo cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Queries issued.
    pub queries: usize,
    /// Queries that blew the budget.
    pub unresolved: usize,
}

impl EnginePerf {
    /// Cache hits over all lookups (0.0 when the engine never looked).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Queries answered per wall-clock second.
    pub fn queries_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.queries as f64 * 1e3 / self.wall_ms
        }
    }
}

/// One DYNSUM batch measurement (cache persists across batches).
#[derive(Debug, Clone)]
pub struct BatchPerf {
    /// Benchmark name.
    pub benchmark: String,
    /// Per-batch wall milliseconds.
    pub batch_ms: Vec<f64>,
    /// Per-batch query counts.
    pub batch_queries: Vec<usize>,
}

/// One point of the summary-cache pressure sweep: the DYNSUM batched
/// NullDeref streams executed on a 1-thread session under a
/// `max_cached_summaries` cap, with per-query results checked against
/// the sequential path (eviction must never change them) and the
/// hit-rate/throughput trade-off recorded.
#[derive(Debug, Clone)]
pub struct CachePressurePerf {
    /// The cap swept (`None` = uncapped reference point).
    pub cap: Option<usize>,
    /// Wall-clock milliseconds across all `run_batch` calls.
    pub wall_ms: f64,
    /// Queries answered.
    pub queries: usize,
    /// Queries answered per wall-clock second.
    pub qps: f64,
    /// Shared-cache hit rate over the whole stream.
    pub hit_rate: f64,
    /// Entries evicted by the cap across the stream.
    pub evictions: u64,
    /// Summaries resident at stream end in the largest of the
    /// per-benchmark sessions (the cap applies per session, so this is
    /// ≤ cap when capped).
    pub final_summaries: usize,
    /// `true` when every query matched the sequential engine byte for
    /// byte.
    pub results_identical: bool,
}

/// One point of the warm-restart series: the first NullDeref batch of a
/// fresh process, cold (empty cache) vs warm (summary cache restored
/// from a `Session::save_snapshot` byte image saved by a previous
/// "process" that served the whole stream). Results are checked against
/// the sequential baseline in both modes — a warm restart must be
/// outcome-invisible. Timings are medians over alternating paired
/// rounds; the one-time snapshot load is reported separately (it is a
/// restart cost, like engine setup, not per-batch work).
#[derive(Debug, Clone)]
pub struct WarmStartPerf {
    /// Benchmark name.
    pub benchmark: String,
    /// Snapshot size on the wire.
    pub snapshot_bytes: usize,
    /// Summaries in the donor session's cache at save time.
    pub saved_summaries: usize,
    /// Summaries restored by the load (must equal the saved count).
    pub restored_summaries: usize,
    /// Median one-time `load_snapshot` wall time.
    pub load_ms: f64,
    /// Median first-batch wall time on a cold session.
    pub cold_first_batch_ms: f64,
    /// Median first-batch wall time on a snapshot-restored session.
    pub warm_first_batch_ms: f64,
    /// Queries in the first batch.
    pub queries: usize,
    /// Cold first-batch throughput.
    pub cold_qps: f64,
    /// Warm first-batch throughput.
    pub warm_qps: f64,
    /// `warm_qps / cold_qps` (the headline warm-restart win).
    pub warm_speedup: f64,
    /// `true` when every cold *and* warm first-batch result matched the
    /// sequential baseline byte for byte.
    pub results_identical: bool,
}

/// One point of the `Session::run_batch` thread-scaling series: the
/// DYNSUM batched NullDeref streams executed on a shared session at a
/// fixed worker-thread count, with per-query results checked against the
/// sequential `DemandPointsTo` path.
#[derive(Debug, Clone)]
pub struct ThreadScalePerf {
    /// Worker threads per batch.
    pub threads: usize,
    /// Wall-clock milliseconds across all `run_batch` calls.
    pub wall_ms: f64,
    /// Queries answered.
    pub queries: usize,
    /// Queries answered per wall-clock second.
    pub qps: f64,
    /// Throughput relative to the 1-thread session point.
    pub speedup_vs_1: f64,
    /// `true` when every query's `(resolved, points-to set)` matched the
    /// sequential engine byte for byte.
    pub results_identical: bool,
}

/// One point of the service-daemon series: N logical clients in a
/// closed loop (one query in flight per client) multiplexed onto the
/// in-process daemon core, measuring frame-to-answer latency through
/// the protocol layer and the round-robin scheduler, with every wire
/// answer checked against a clean single-client session.
#[derive(Debug, Clone)]
pub struct ServicePerf {
    /// Concurrent logical clients.
    pub clients: usize,
    /// Queries answered across all clients.
    pub queries: usize,
    /// Wall-clock milliseconds over the whole run.
    pub wall_ms: f64,
    /// Queries answered per wall-clock second.
    pub qps: f64,
    /// Median frame-to-answer latency.
    pub p50_ms: f64,
    /// 99th-percentile frame-to-answer latency.
    pub p99_ms: f64,
    /// `true` when every wire answer matched the clean-session
    /// fingerprint byte for byte and no frame came back an error.
    pub results_identical: bool,
}

/// The full perf report.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Profile name (`"small"` / `"medium"` / `"custom"`).
    pub profile: String,
    /// Generator scale.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Per-query budget.
    pub budget: u64,
    /// Benchmarks measured.
    pub benchmarks: Vec<String>,
    /// CPUs available to this process when the report was recorded —
    /// the context for reading `session_scaling` (a 1-CPU host can show
    /// result-identity but no wall-clock speedup).
    pub host_parallelism: usize,
    /// Per-engine aggregates, in a fixed order.
    pub engines: Vec<EnginePerf>,
    /// DYNSUM batch series (NullDeref, 10 batches) per benchmark.
    pub dynsum_batches: Vec<BatchPerf>,
    /// The headline metric: DYNSUM queries/sec over the batched
    /// NullDeref streams (cache warm after the first batch).
    pub dynsum_batch_throughput_qps: f64,
    /// The `Session::run_batch` thread-scaling series over the same
    /// streams (sharded summary cache, merge-on-join).
    pub session_scaling: Vec<ThreadScalePerf>,
    /// The summary-cache pressure sweep: uncapped plus at least three
    /// `max_cached_summaries` cap points at 1 thread, each verified
    /// result-identical to the sequential path.
    pub cache_pressure: Vec<CachePressurePerf>,
    /// The warm-restart series: cold vs snapshot-restored first-batch
    /// throughput per benchmark, each verified result-identical to the
    /// sequential path.
    pub warm_start: Vec<WarmStartPerf>,
    /// Per-batch overhead of the 1-thread `Session::run_batch` path
    /// relative to the legacy persistent `DynSum` engine on the same
    /// streams, in percent (positive = session slower). The merge,
    /// snapshot, and handle-reuse machinery should keep this small.
    pub run_batch_overhead_vs_legacy_pct: f64,
    /// The service-daemon series: one point per client count, each
    /// verified answer-identical to a clean single-client session.
    pub service: Vec<ServicePerf>,
}

/// Number of batches in the throughput measurement (§5.3 uses 10).
pub const PERF_BATCHES: usize = 10;

/// The engines measured, in report order.
pub const PERF_ENGINES: [EngineKind; 4] = [
    EngineKind::NoRefine,
    EngineKind::RefinePts,
    EngineKind::DynSum,
    EngineKind::StaSum,
];

/// The thread counts measured by default in the scaling series.
pub const DEFAULT_THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// The client counts measured by default in the service series.
pub const DEFAULT_CLIENT_COUNTS: [usize; 3] = [1, 2, 4];

/// Per-query result fingerprint: resolution flag plus the sorted
/// `(object, allocation context)` pairs. Context ids are comparable
/// across engines and thread counts because context pools are per-query
/// scratch (see `StackPool::clear`).
type ResultFingerprint = (bool, Vec<(ObjId, CtxId)>);

fn fingerprint(r: &QueryResult) -> ResultFingerprint {
    (r.resolved, r.pts.iter().collect())
}

/// Runs the perf experiment with the default thread-scaling series.
pub fn perf_report(profile_name: &str, opts: &ExperimentOptions) -> PerfReport {
    perf_report_with_threads(profile_name, opts, &DEFAULT_THREAD_COUNTS)
}

/// Runs the perf experiment, measuring `Session::run_batch` at each of
/// the given worker-thread counts.
pub fn perf_report_with_threads(
    profile_name: &str,
    opts: &ExperimentOptions,
    thread_counts: &[usize],
) -> PerfReport {
    let config = opts.engine_config();
    let workloads = opts.workloads();

    let mut engines = Vec::new();
    for kind in PERF_ENGINES {
        let mut perf = EnginePerf {
            engine: kind.name().to_owned(),
            setup_ms: 0.0,
            wall_ms: 0.0,
            edges_traversed: 0,
            cache_hits: 0,
            cache_misses: 0,
            queries: 0,
            unresolved: 0,
        };
        for w in &workloads {
            for client in ClientKind::ALL {
                let setup_started = Instant::now();
                let mut engine = kind.build(&w.pag, config);
                perf.setup_ms += setup_started.elapsed().as_secs_f64() * 1e3;
                let report = run_client(client, &w.pag, &w.info, engine.as_mut());
                perf.wall_ms += report.elapsed.as_secs_f64() * 1e3;
                perf.edges_traversed += report.stats.edges_traversed;
                perf.cache_hits += report.stats.cache_hits;
                perf.cache_misses += report.stats.cache_misses;
                perf.queries += report.queries;
                perf.unresolved += report.unresolved;
            }
        }
        engines.push(perf);
    }

    // The batched throughput run: one persistent DYNSUM engine per
    // benchmark, NullDeref stream split into 10 batches.
    let mut dynsum_batches = Vec::new();
    let mut total_queries = 0usize;
    let mut total_secs = 0.0f64;
    for w in &workloads {
        let mut engine = EngineKind::DynSum.build(&w.pag, config);
        let batches = run_batches(
            ClientKind::NullDeref,
            &w.pag,
            &w.info,
            engine.as_mut(),
            PERF_BATCHES,
        );
        let batch_ms: Vec<f64> = batches
            .iter()
            .map(|b| b.report.elapsed.as_secs_f64() * 1e3)
            .collect();
        let batch_queries: Vec<usize> = batches.iter().map(|b| b.report.queries).collect();
        total_queries += batch_queries.iter().sum::<usize>();
        total_secs += batch_ms.iter().sum::<f64>() / 1e3;
        dynsum_batches.push(BatchPerf {
            benchmark: w.name.clone(),
            batch_ms,
            batch_queries,
        });
    }
    let dynsum_batch_throughput_qps = if total_secs > 0.0 {
        total_queries as f64 / total_secs
    } else {
        0.0
    };

    // The Session thread-scaling series, against per-query fingerprints
    // from the sequential DemandPointsTo path (one legacy DynSum engine
    // per stream, queries in order, cache warm within the stream).
    let baseline: Vec<Vec<ResultFingerprint>> = workloads
        .iter()
        .map(|w| {
            let mut engine = DynSum::with_config(&w.pag, config);
            queries_for(ClientKind::NullDeref, &w.info)
                .iter()
                .map(|q| fingerprint(&engine.points_to(q.var)))
                .collect()
        })
        .collect();
    let mut session_scaling = Vec::with_capacity(thread_counts.len());
    for &threads in thread_counts {
        let mut queries_total = 0usize;
        let mut secs = 0.0f64;
        let mut results_identical = true;
        for (wi, w) in workloads.iter().enumerate() {
            let mut session = Session::with_config(&w.pag, EngineKind::DynSum, config);
            let stream = queries_for(ClientKind::NullDeref, &w.info);
            let mut qi = 0usize;
            for batch in dynsum_clients::split_batches(stream, PERF_BATCHES) {
                let sq: Vec<SessionQuery<'_>> =
                    batch.iter().map(|q| SessionQuery::new(q.var)).collect();
                let started = Instant::now();
                let results = session.run_batch(&sq, threads);
                secs += started.elapsed().as_secs_f64();
                for r in &results {
                    if fingerprint(r) != baseline[wi][qi] {
                        results_identical = false;
                    }
                    qi += 1;
                }
                queries_total += results.len();
            }
        }
        let qps = if secs > 0.0 {
            queries_total as f64 / secs
        } else {
            0.0
        };
        session_scaling.push(ThreadScalePerf {
            threads,
            wall_ms: secs * 1e3,
            queries: queries_total,
            qps,
            speedup_vs_1: 0.0,
            results_identical,
        });
    }
    let base_qps = session_scaling
        .iter()
        .find(|p| p.threads == 1)
        .or(session_scaling.first())
        .map(|p| p.qps)
        .unwrap_or(0.0);
    for point in &mut session_scaling {
        point.speedup_vs_1 = if base_qps > 0.0 {
            point.qps / base_qps
        } else {
            0.0
        };
    }
    // Per-batch overhead of the session path vs the legacy persistent
    // engine, both at 1 worker over the same batched streams. Measured
    // as a paired comparison: five rounds, each producing one
    // legacy/session throughput ratio from back-to-back runs, with the
    // in-round order alternating (a drifting/throttling host slows
    // whichever side runs later, and alternation flips that bias's
    // sign); the median round ratio is the recorded figure, robust to
    // both drift and one-off scheduler spikes.
    let measure_legacy = || {
        let mut queries_n = 0usize;
        let mut secs = 0.0f64;
        for w in &workloads {
            let mut engine = DynSum::with_config(&w.pag, config);
            for batch in dynsum_clients::split_batches(
                queries_for(ClientKind::NullDeref, &w.info),
                PERF_BATCHES,
            ) {
                let started = Instant::now();
                for q in &batch {
                    engine.points_to(q.var);
                }
                secs += started.elapsed().as_secs_f64();
                queries_n += batch.len();
            }
        }
        if secs > 0.0 {
            queries_n as f64 / secs
        } else {
            0.0
        }
    };
    let measure_session = || {
        let mut queries_n = 0usize;
        let mut secs = 0.0f64;
        for w in &workloads {
            let mut session = Session::with_config(&w.pag, dynsum_core::EngineKind::DynSum, config);
            for batch in dynsum_clients::split_batches(
                queries_for(ClientKind::NullDeref, &w.info),
                PERF_BATCHES,
            ) {
                let sq: Vec<SessionQuery<'_>> =
                    batch.iter().map(|q| SessionQuery::new(q.var)).collect();
                let started = Instant::now();
                session.run_batch(&sq, 1);
                secs += started.elapsed().as_secs_f64();
                queries_n += batch.len();
            }
        }
        if secs > 0.0 {
            queries_n as f64 / secs
        } else {
            0.0
        }
    };
    let mut round_ratios = Vec::with_capacity(5);
    for round in 0..5 {
        let (legacy_qps, session_qps) = if round % 2 == 0 {
            let l = measure_legacy();
            (l, measure_session())
        } else {
            let s = measure_session();
            (measure_legacy(), s)
        };
        if legacy_qps > 0.0 && session_qps > 0.0 {
            round_ratios.push(legacy_qps / session_qps);
        }
    }
    round_ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let run_batch_overhead_vs_legacy_pct = round_ratios
        .get(round_ratios.len() / 2)
        .map_or(0.0, |median| (median - 1.0) * 100.0);

    // The cache-pressure sweep: uncapped first (its natural cache size
    // anchors the swept caps), then caps at 1/2, 1/8 and 0 of it —
    // hit rate and throughput fall as the cap tightens while results
    // stay byte-identical (eviction is outcome-free by construction).
    let uncapped = cache_pressure_point(&workloads, config, &baseline, None);
    let natural = uncapped.final_summaries.max(1);
    let mut caps: Vec<usize> = vec![natural.div_ceil(2), natural.div_ceil(8), 0];
    caps.dedup();
    if caps.len() < 3 {
        caps = vec![2, 1, 0];
    }
    let mut cache_pressure = vec![uncapped];
    for cap in caps {
        cache_pressure.push(cache_pressure_point(
            &workloads,
            config,
            &baseline,
            Some(cap),
        ));
    }

    // The warm-restart series: per benchmark, a donor session serves the
    // whole stream and saves a snapshot; fresh cold and snapshot-warmed
    // sessions then race on the first batch.
    let warm_start = workloads
        .iter()
        .enumerate()
        .map(|(wi, w)| warm_start_point(w, config, &baseline[wi]))
        .collect();

    // The service series: the daemon core under 1/2/4 closed-loop
    // clients, answers verified against clean sessions.
    let service = DEFAULT_CLIENT_COUNTS
        .iter()
        .map(|&n| service_point(&workloads, config, n))
        .collect();

    PerfReport {
        profile: profile_name.to_owned(),
        scale: opts.scale,
        seed: opts.seed,
        budget: opts.budget,
        benchmarks: workloads.iter().map(|w| w.name.clone()).collect(),
        host_parallelism: dynsum_cfl::sync::thread::available_parallelism().map_or(1, |n| n.get()),
        engines,
        dynsum_batches,
        dynsum_batch_throughput_qps,
        session_scaling,
        cache_pressure,
        warm_start,
        run_batch_overhead_vs_legacy_pct,
        service,
    }
}

/// Sorted-sample percentile (nearest-rank; 0.5 = median).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Measures one service-series point: `clients_n` logical clients over
/// the in-process daemon core, each workload served by name, clients
/// assigned round-robin. Closed loop — every client keeps exactly one
/// single-query frame in flight, so latency is the full frame-to-answer
/// path through the protocol layer and the fair scheduler while
/// `clients_n - 1` competitors interleave.
fn service_point(
    workloads: &[dynsum_workloads::Workload],
    config: dynsum_core::EngineConfig,
    clients_n: usize,
) -> ServicePerf {
    use dynsum_service::{json, json::Json, Daemon, ServedWorkload, ServiceConfig};
    use std::collections::HashMap;

    /// Closed-loop queries each client issues (streams cycle if short).
    const QUERIES_PER_CLIENT: usize = 200;

    // The daemon forces deterministic reuse; the reference sessions must
    // run under identical semantics for byte-comparison to be fair.
    let config = dynsum_core::EngineConfig {
        deterministic_reuse: true,
        ..config
    };

    // Per-workload reference: variable -> clean-session fingerprint.
    let reference: Vec<HashMap<dynsum_pag::VarId, u64>> = workloads
        .iter()
        .map(|w| {
            let mut vars: Vec<dynsum_pag::VarId> = queries_for(ClientKind::NullDeref, &w.info)
                .iter()
                .map(|q| q.var)
                .collect();
            vars.sort_unstable();
            vars.dedup();
            let mut session = Session::with_config(&w.pag, dynsum_core::EngineKind::DynSum, config);
            let results = session.run_batch_vars(&vars, 1);
            vars.iter()
                .zip(&results)
                .map(|(&v, r)| (v, r.fingerprint()))
                .collect()
        })
        .collect();

    let served: Vec<ServedWorkload<'_>> = workloads
        .iter()
        .map(|w| ServedWorkload {
            name: &w.name,
            pag: &w.pag,
        })
        .collect();
    let mut daemon = Daemon::new(
        served,
        ServiceConfig {
            engine_config: config,
            ..ServiceConfig::default()
        },
    );

    let mut results_identical = true;
    let ids: Vec<u64> = (0..clients_n).map(|_| daemon.connect()).collect();
    let slot_of: HashMap<u64, usize> = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let streams: Vec<Vec<dynsum_pag::VarId>> = (0..clients_n)
        .map(|i| {
            let w = &workloads[i % workloads.len()];
            let stream: Vec<dynsum_pag::VarId> = queries_for(ClientKind::NullDeref, &w.info)
                .iter()
                .map(|q| q.var)
                .collect();
            stream
                .iter()
                .cycle()
                .take(QUERIES_PER_CLIENT.min(stream.len().max(1) * 4))
                .copied()
                .collect()
        })
        .collect();
    for (i, &id) in ids.iter().enumerate() {
        let name = &workloads[i % workloads.len()].name;
        let hello = format!(
            r#"{{"op":"hello","id":1,"name":"bench{i}","engine":"dynsum","workload":"{name}"}}"#
        );
        for frame in daemon.ingest(id, &hello) {
            let v = json::parse(&frame).expect("daemon emits valid JSON");
            if v.get("ok").and_then(Json::as_bool) != Some(true) {
                results_identical = false;
            }
        }
    }

    let started = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    let mut pending: HashMap<u64, (Instant, dynsum_pag::VarId)> = HashMap::new();
    let mut next_idx = vec![0usize; clients_n];
    let mut next_id = vec![2u64; clients_n];
    let send_next = |daemon: &mut Daemon<'_>,
                     pending: &mut HashMap<u64, (Instant, dynsum_pag::VarId)>,
                     next_idx: &mut [usize],
                     next_id: &mut [u64],
                     identical: &mut bool,
                     i: usize| {
        let var = streams[i][next_idx[i]];
        next_idx[i] += 1;
        let frame = format!(
            r#"{{"op":"query","id":{},"var":{}}}"#,
            next_id[i],
            var.as_raw()
        );
        next_id[i] += 1;
        let sent = Instant::now();
        if daemon.ingest(ids[i], &frame).is_empty() {
            pending.insert(ids[i], (sent, var));
        } else {
            // A valid query frame never answers synchronously.
            *identical = false;
        }
    };
    for (i, stream) in streams.iter().enumerate() {
        if !stream.is_empty() {
            send_next(
                &mut daemon,
                &mut pending,
                &mut next_idx,
                &mut next_id,
                &mut results_identical,
                i,
            );
        }
    }
    while !pending.is_empty() {
        let completed = daemon.step();
        if completed.is_empty() {
            // The scheduler lost an in-flight query — record loudly.
            results_identical = false;
            break;
        }
        for (cid, frame) in completed {
            let i = slot_of[&cid];
            let (sent, var) = match pending.remove(&cid) {
                Some(p) => p,
                None => {
                    results_identical = false;
                    continue;
                }
            };
            latencies.push(sent.elapsed().as_secs_f64() * 1e3);
            let v = json::parse(&frame).expect("daemon emits valid JSON");
            let fp = v
                .get("result")
                .and_then(|r| r.get("fingerprint"))
                .and_then(Json::as_str)
                .and_then(|h| u64::from_str_radix(h, 16).ok());
            if v.get("ok").and_then(Json::as_bool) != Some(true)
                || fp != reference[i % workloads.len()].get(&var).copied()
            {
                results_identical = false;
            }
            if next_idx[i] < streams[i].len() {
                send_next(
                    &mut daemon,
                    &mut pending,
                    &mut next_idx,
                    &mut next_id,
                    &mut results_identical,
                    i,
                );
            }
        }
    }
    let secs = started.elapsed().as_secs_f64();

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let queries = latencies.len();
    ServicePerf {
        clients: clients_n,
        queries,
        wall_ms: secs * 1e3,
        qps: if secs > 0.0 {
            queries as f64 / secs
        } else {
            0.0
        },
        p50_ms: percentile(&latencies, 0.5),
        p99_ms: percentile(&latencies, 0.99),
        results_identical,
    }
}

/// Median of a non-empty sample (ms timings).
fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Measures one benchmark's cold-vs-warm first batch: five alternating
/// paired rounds (robust to host throttling drift), medians recorded,
/// every result — cold and warm — checked against the sequential
/// baseline fingerprints.
fn warm_start_point(
    w: &dynsum_workloads::Workload,
    config: dynsum_core::EngineConfig,
    baseline: &[ResultFingerprint],
) -> WarmStartPerf {
    use dynsum_core::EngineKind;
    let stream = queries_for(ClientKind::NullDeref, &w.info);
    let first_batch: Vec<SessionQuery<'_>> =
        dynsum_clients::split_batches(stream.clone(), PERF_BATCHES)
            .into_iter()
            .next()
            .unwrap_or_default()
            .iter()
            .map(|q| SessionQuery::new(q.var))
            .collect();

    // The donor "process": serve everything, persist the working set.
    let mut donor = Session::with_config(&w.pag, EngineKind::DynSum, config);
    for batch in dynsum_clients::split_batches(stream, PERF_BATCHES) {
        let sq: Vec<SessionQuery<'_>> = batch.iter().map(|q| SessionQuery::new(q.var)).collect();
        donor.run_batch(&sq, 1);
    }
    let saved_summaries = donor.summary_count();
    let mut snapshot = Vec::new();
    donor
        .save_snapshot(&mut snapshot)
        .expect("writing to a Vec cannot fail");

    let mut results_identical = true;
    let mut restored_summaries = 0usize;
    let mut cold_samples = Vec::with_capacity(5);
    let mut warm_samples = Vec::with_capacity(5);
    let mut load_samples = Vec::with_capacity(5);
    for round in 0..5 {
        let run_cold = |cold_samples: &mut Vec<f64>, identical: &mut bool| {
            let mut session = Session::with_config(&w.pag, EngineKind::DynSum, config);
            let started = Instant::now();
            let results = session.run_batch(&first_batch, 1);
            cold_samples.push(started.elapsed().as_secs_f64() * 1e3);
            for (i, r) in results.iter().enumerate() {
                if fingerprint(r) != baseline[i] {
                    *identical = false;
                }
            }
        };
        let run_warm = |warm_samples: &mut Vec<f64>,
                        load_samples: &mut Vec<f64>,
                        restored: &mut usize,
                        identical: &mut bool| {
            let started = Instant::now();
            let (mut session, load) =
                Session::load_snapshot(&snapshot[..], &w.pag, EngineKind::DynSum, config);
            load_samples.push(started.elapsed().as_secs_f64() * 1e3);
            if !load.is_warm() {
                // A self-saved snapshot must load; record the failure as
                // divergence so the CI gate trips loudly.
                *identical = false;
            }
            *restored = load.summaries();
            let started = Instant::now();
            let results = session.run_batch(&first_batch, 1);
            warm_samples.push(started.elapsed().as_secs_f64() * 1e3);
            for (i, r) in results.iter().enumerate() {
                if fingerprint(r) != baseline[i] {
                    *identical = false;
                }
            }
        };
        if round % 2 == 0 {
            run_cold(&mut cold_samples, &mut results_identical);
            run_warm(
                &mut warm_samples,
                &mut load_samples,
                &mut restored_summaries,
                &mut results_identical,
            );
        } else {
            run_warm(
                &mut warm_samples,
                &mut load_samples,
                &mut restored_summaries,
                &mut results_identical,
            );
            run_cold(&mut cold_samples, &mut results_identical);
        }
    }
    if restored_summaries != saved_summaries {
        results_identical = false;
    }

    let queries = first_batch.len();
    let cold_ms = median(cold_samples);
    let warm_ms = median(warm_samples);
    let qps = |ms: f64| {
        if ms > 0.0 {
            queries as f64 * 1e3 / ms
        } else {
            0.0
        }
    };
    let (cold_qps, warm_qps) = (qps(cold_ms), qps(warm_ms));
    WarmStartPerf {
        benchmark: w.name.clone(),
        snapshot_bytes: snapshot.len(),
        saved_summaries,
        restored_summaries,
        load_ms: median(load_samples),
        cold_first_batch_ms: cold_ms,
        warm_first_batch_ms: warm_ms,
        queries,
        cold_qps,
        warm_qps,
        warm_speedup: if cold_qps > 0.0 {
            warm_qps / cold_qps
        } else {
            0.0
        },
        results_identical,
    }
}

/// Runs the batched NullDeref streams on a 1-thread session under one
/// `max_cached_summaries` setting, checking every query against the
/// sequential baseline fingerprints.
fn cache_pressure_point(
    workloads: &[dynsum_workloads::Workload],
    config: dynsum_core::EngineConfig,
    baseline: &[Vec<ResultFingerprint>],
    cap: Option<usize>,
) -> CachePressurePerf {
    let config = dynsum_core::EngineConfig {
        max_cached_summaries: cap,
        ..config
    };
    let mut queries_total = 0usize;
    let mut secs = 0.0f64;
    let mut results_identical = true;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut evictions = 0u64;
    let mut final_summaries = 0usize;
    for (wi, w) in workloads.iter().enumerate() {
        let mut session = Session::with_config(&w.pag, dynsum_core::EngineKind::DynSum, config);
        let stream = queries_for(ClientKind::NullDeref, &w.info);
        let mut qi = 0usize;
        for batch in dynsum_clients::split_batches(stream, PERF_BATCHES) {
            let sq: Vec<SessionQuery<'_>> =
                batch.iter().map(|q| SessionQuery::new(q.var)).collect();
            let started = Instant::now();
            let results = session.run_batch(&sq, 1);
            secs += started.elapsed().as_secs_f64();
            for r in &results {
                if fingerprint(r) != baseline[wi][qi] {
                    results_identical = false;
                }
                qi += 1;
            }
            queries_total += results.len();
        }
        let stats = session.cache_stats();
        hits += stats.hits;
        misses += stats.misses;
        evictions += stats.evictions;
        final_summaries = final_summaries.max(session.summary_count());
    }
    let lookups = hits + misses;
    CachePressurePerf {
        cap,
        wall_ms: secs * 1e3,
        queries: queries_total,
        qps: if secs > 0.0 {
            queries_total as f64 / secs
        } else {
            0.0
        },
        hit_rate: if lookups > 0 {
            hits as f64 / lookups as f64
        } else {
            0.0
        },
        evictions,
        final_summaries,
        results_identical,
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_owned()
    }
}

/// Renders the report as pretty-printed JSON (no external crates: the
/// workspace is offline, so the writer is hand-rolled).
pub fn render_perf_json(r: &PerfReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"profile\": {},\n", json_str(&r.profile)));
    out.push_str(&format!("  \"scale\": {},\n", json_f64(r.scale)));
    out.push_str(&format!("  \"seed\": {},\n", r.seed));
    out.push_str(&format!("  \"budget\": {},\n", r.budget));
    let benches: Vec<String> = r.benchmarks.iter().map(|b| json_str(b)).collect();
    out.push_str(&format!("  \"benchmarks\": [{}],\n", benches.join(", ")));
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        r.host_parallelism
    ));
    out.push_str("  \"engines\": [\n");
    for (i, e) in r.engines.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"engine\": {},\n", json_str(&e.engine)));
        out.push_str(&format!("      \"setup_ms\": {},\n", json_f64(e.setup_ms)));
        out.push_str(&format!("      \"wall_ms\": {},\n", json_f64(e.wall_ms)));
        out.push_str(&format!(
            "      \"edges_traversed\": {},\n",
            e.edges_traversed
        ));
        out.push_str(&format!("      \"cache_hits\": {},\n", e.cache_hits));
        out.push_str(&format!("      \"cache_misses\": {},\n", e.cache_misses));
        out.push_str(&format!(
            "      \"cache_hit_rate\": {},\n",
            json_f64(e.cache_hit_rate())
        ));
        out.push_str(&format!("      \"queries\": {},\n", e.queries));
        out.push_str(&format!("      \"unresolved\": {},\n", e.unresolved));
        out.push_str(&format!(
            "      \"queries_per_sec\": {}\n",
            json_f64(e.queries_per_sec())
        ));
        out.push_str(if i + 1 == r.engines.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"dynsum_batches\": [\n");
    for (i, b) in r.dynsum_batches.iter().enumerate() {
        let ms: Vec<String> = b.batch_ms.iter().map(|&m| json_f64(m)).collect();
        let qs: Vec<String> = b.batch_queries.iter().map(|q| q.to_string()).collect();
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"benchmark\": {},\n",
            json_str(&b.benchmark)
        ));
        out.push_str(&format!("      \"batch_ms\": [{}],\n", ms.join(", ")));
        out.push_str(&format!("      \"batch_queries\": [{}]\n", qs.join(", ")));
        out.push_str(if i + 1 == r.dynsum_batches.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"dynsum_batch_throughput_qps\": {},\n",
        json_f64(r.dynsum_batch_throughput_qps)
    ));
    out.push_str("  \"session_scaling\": [\n");
    for (i, p) in r.session_scaling.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"threads\": {},\n", p.threads));
        out.push_str(&format!("      \"wall_ms\": {},\n", json_f64(p.wall_ms)));
        out.push_str(&format!("      \"queries\": {},\n", p.queries));
        out.push_str(&format!("      \"qps\": {},\n", json_f64(p.qps)));
        out.push_str(&format!(
            "      \"speedup_vs_1\": {},\n",
            json_f64(p.speedup_vs_1)
        ));
        out.push_str(&format!(
            "      \"results_identical_vs_sequential\": {}\n",
            p.results_identical
        ));
        out.push_str(if i + 1 == r.session_scaling.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"run_batch_1thread_overhead_vs_legacy_pct\": {},\n",
        json_f64(r.run_batch_overhead_vs_legacy_pct)
    ));
    out.push_str("  \"cache_pressure\": [\n");
    for (i, p) in r.cache_pressure.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"cap\": {},\n",
            p.cap.map_or("null".to_owned(), |c| c.to_string())
        ));
        out.push_str(&format!("      \"wall_ms\": {},\n", json_f64(p.wall_ms)));
        out.push_str(&format!("      \"queries\": {},\n", p.queries));
        out.push_str(&format!("      \"qps\": {},\n", json_f64(p.qps)));
        out.push_str(&format!("      \"hit_rate\": {},\n", json_f64(p.hit_rate)));
        out.push_str(&format!("      \"evictions\": {},\n", p.evictions));
        out.push_str(&format!(
            "      \"final_summaries\": {},\n",
            p.final_summaries
        ));
        out.push_str(&format!(
            "      \"results_identical_vs_sequential\": {}\n",
            p.results_identical
        ));
        out.push_str(if i + 1 == r.cache_pressure.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"service\": [\n");
    for (i, p) in r.service.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"clients\": {},\n", p.clients));
        out.push_str(&format!("      \"queries\": {},\n", p.queries));
        out.push_str(&format!("      \"wall_ms\": {},\n", json_f64(p.wall_ms)));
        out.push_str(&format!("      \"qps\": {},\n", json_f64(p.qps)));
        out.push_str(&format!("      \"p50_ms\": {},\n", json_f64(p.p50_ms)));
        out.push_str(&format!("      \"p99_ms\": {},\n", json_f64(p.p99_ms)));
        out.push_str(&format!(
            "      \"results_identical_vs_sequential\": {}\n",
            p.results_identical
        ));
        out.push_str(if i + 1 == r.service.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"warm_start\": [\n");
    for (i, p) in r.warm_start.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"benchmark\": {},\n",
            json_str(&p.benchmark)
        ));
        out.push_str(&format!(
            "      \"snapshot_bytes\": {},\n",
            p.snapshot_bytes
        ));
        out.push_str(&format!(
            "      \"saved_summaries\": {},\n",
            p.saved_summaries
        ));
        out.push_str(&format!(
            "      \"restored_summaries\": {},\n",
            p.restored_summaries
        ));
        out.push_str(&format!("      \"load_ms\": {},\n", json_f64(p.load_ms)));
        out.push_str(&format!(
            "      \"cold_first_batch_ms\": {},\n",
            json_f64(p.cold_first_batch_ms)
        ));
        out.push_str(&format!(
            "      \"warm_first_batch_ms\": {},\n",
            json_f64(p.warm_first_batch_ms)
        ));
        out.push_str(&format!("      \"queries\": {},\n", p.queries));
        out.push_str(&format!("      \"cold_qps\": {},\n", json_f64(p.cold_qps)));
        out.push_str(&format!("      \"warm_qps\": {},\n", json_f64(p.warm_qps)));
        out.push_str(&format!(
            "      \"warm_speedup\": {},\n",
            json_f64(p.warm_speedup)
        ));
        out.push_str(&format!(
            "      \"results_identical_vs_sequential\": {}\n",
            p.results_identical
        ));
        out.push_str(if i + 1 == r.warm_start.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape_and_json_render() {
        let opts = ExperimentOptions {
            scale: 0.005,
            benchmarks: vec!["luindex".to_owned()],
            ..ExperimentOptions::default()
        };
        let r = perf_report("custom", &opts);
        assert_eq!(r.engines.len(), 4);
        assert_eq!(r.benchmarks, vec!["luindex"]);
        assert_eq!(r.dynsum_batches.len(), 1);
        for e in &r.engines {
            assert!(e.queries > 0, "{}: no queries ran", e.engine);
            assert!(e.edges_traversed > 0, "{}: no work recorded", e.engine);
        }
        let dynsum = r.engines.iter().find(|e| e.engine == "DYNSUM").unwrap();
        assert!(
            dynsum.cache_hits > 0,
            "DYNSUM must hit its cache on a whole stream"
        );
        assert!(r.dynsum_batch_throughput_qps > 0.0);
        assert_eq!(r.session_scaling.len(), DEFAULT_THREAD_COUNTS.len());
        for p in &r.session_scaling {
            assert!(p.queries > 0);
            assert!(p.qps > 0.0);
            assert!(
                p.results_identical,
                "threads={} diverged from the sequential path",
                p.threads
            );
        }

        // The cache-pressure sweep: uncapped + ≥3 cap points, every one
        // result-identical, caps actually enforced, and pressure visible
        // (the capped points evict).
        assert!(r.cache_pressure.len() >= 4);
        assert_eq!(r.cache_pressure[0].cap, None);
        assert!(r.cache_pressure.iter().skip(1).all(|p| p.cap.is_some()));
        for p in &r.cache_pressure {
            assert!(p.queries > 0);
            assert!(
                p.results_identical,
                "cap {:?} diverged from the sequential path",
                p.cap
            );
            if let Some(cap) = p.cap {
                assert!(p.final_summaries <= cap, "cap {cap} not enforced");
            }
        }
        assert!(
            r.cache_pressure.iter().any(|p| p.evictions > 0),
            "the tight cap points must actually evict"
        );
        assert!(r.run_batch_overhead_vs_legacy_pct.is_finite());

        // The warm-restart series: one point per benchmark, snapshot
        // intact, restore complete, and — the snapshot contract — cold
        // and warm first batches both byte-identical to the baseline.
        // (Strict warm>cold speedup is asserted by the perf_report
        // gate's recorded runs, not here: debug-build timings on a tiny
        // profile are too noisy for a hard unit-test bound.)
        assert_eq!(r.warm_start.len(), r.benchmarks.len());
        for p in &r.warm_start {
            assert!(p.queries > 0);
            assert!(p.snapshot_bytes > 0);
            assert!(p.saved_summaries > 0, "donor stream must cache summaries");
            assert_eq!(
                p.restored_summaries, p.saved_summaries,
                "restore must be complete"
            );
            assert!(p.cold_qps > 0.0 && p.warm_qps > 0.0);
            assert!(
                p.results_identical,
                "{}: warm restart changed results",
                p.benchmark
            );
        }

        // The service series: one point per default client count, every
        // wire answer byte-identical to a clean single-client session,
        // latency percentiles ordered.
        assert_eq!(r.service.len(), DEFAULT_CLIENT_COUNTS.len());
        for p in &r.service {
            assert!(p.queries > 0, "{} clients: no queries answered", p.clients);
            assert!(p.qps > 0.0);
            assert!(p.p50_ms <= p.p99_ms, "percentiles out of order");
            assert!(
                p.results_identical,
                "{} clients: daemon answers diverged from the clean session",
                p.clients
            );
        }

        let json = render_perf_json(&r);
        assert!(json.contains("\"service\""));
        assert!(json.contains("\"p99_ms\""));
        assert!(json.contains("\"warm_start\""));
        assert!(json.contains("\"warm_speedup\""));
        assert!(json.contains("\"session_scaling\""));
        assert!(json.contains("\"results_identical_vs_sequential\": true"));
        assert!(json.contains("\"DYNSUM\""));
        assert!(json.contains("\"dynsum_batch_throughput_qps\""));
        assert!(json.contains("\"cache_hit_rate\""));
        assert!(json.contains("\"cache_pressure\""));
        assert!(json.contains("\"run_batch_1thread_overhead_vs_legacy_pct\""));
        assert!(json.contains("\"cap\": null"), "uncapped point recorded");
        // Brackets balance (cheap well-formedness check without a parser).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn profiles_parse_and_scale() {
        assert_eq!(PerfProfile::parse("small"), Some(PerfProfile::Small));
        assert_eq!(PerfProfile::parse("medium"), Some(PerfProfile::Medium));
        assert_eq!(PerfProfile::parse("huge"), None);
        assert_eq!(PerfProfile::Small.options().benchmarks, vec!["soot-c"]);
        assert_eq!(PerfProfile::Medium.options().benchmarks.len(), 3);
        assert!(PerfProfile::Medium.options().scale > PerfProfile::Small.options().scale);
    }
}
