//! Regenerates Table 2: the qualitative comparison of the four
//! demand-driven analyses.

fn main() {
    print!("{}", dynsum_bench::table2().render());
}
