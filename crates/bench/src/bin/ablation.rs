//! Ablation study: DYNSUM with the summary cache disabled, context
//! sensitivity disabled, and under a budget sweep.

use dynsum_bench::ExperimentOptions;

fn main() {
    let opts = match ExperimentOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\nusage: ablation [--scale F] [--seed N] [--budget N] [--bench a,b]");
            std::process::exit(2);
        }
    };
    let rows = dynsum_bench::ablation(&opts);
    print!("{}", dynsum_bench::render_ablation(&rows));
}
