//! Regenerates Figure 5: DYNSUM's cumulative summary count per batch as
//! a percentage of STASUM's static total.

use dynsum_bench::ExperimentOptions;

fn main() {
    let opts = match ExperimentOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\nusage: figure5 [--scale F] [--seed N] [--budget N] [--bench a,b]");
            std::process::exit(2);
        }
    };
    let rows = dynsum_bench::figure5(&opts, 10);
    print!("{}", dynsum_bench::render_figure5(&rows));
}
