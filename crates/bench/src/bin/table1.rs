//! Regenerates Table 1: DYNSUM's traversal traces for the motivating
//! example's queries `s1` and `s2`.

fn main() {
    let out = dynsum_bench::table1();
    print!("{}", out.render());
    println!();
    println!(
        "summary: s1 took {} steps (0 reused); s2 took {} steps ({} reused from s1's summaries)",
        out.trace_s1.len(),
        out.trace_s2.len(),
        out.trace_s2.reuse_count()
    );
}
