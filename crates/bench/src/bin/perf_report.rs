//! Writes `BENCH_report.json`: the per-engine performance snapshot
//! (wall time, deterministic edge work, cache hit rates, DYNSUM batch
//! throughput) that records the repo's perf trajectory from PR to PR.
//!
//! ```text
//! perf_report [--profile small|medium] [--out PATH] [--scale F]
//!             [--seed N] [--budget N] [--bench a,b] [--threads N]
//! ```
//!
//! `--profile` picks a named workload size (default `medium`); the
//! explicit generator flags override its choices and mark the report
//! `custom`. `--threads N` caps the `Session::run_batch` scaling series
//! at N worker threads (default 4, i.e. points at 1/2/4; `--threads 1`
//! records the single-thread point only).

use dynsum_bench::{
    perf_report_with_threads, render_perf_json, PerfProfile, DEFAULT_THREAD_COUNTS,
};

fn main() {
    let mut out_path = "BENCH_report.json".to_owned();
    let mut profile = PerfProfile::Medium;
    // Explicit generator overrides, applied on top of the profile only
    // when the flag actually appeared (an override equal to a default
    // still counts).
    let mut scale: Option<f64> = None;
    let mut seed: Option<u64> = None;
    let mut budget: Option<u64> = None;
    let mut benchmarks: Option<Vec<String>> = None;
    let mut max_threads: usize = *DEFAULT_THREAD_COUNTS.last().unwrap();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{what} needs a value")))
        };
        match flag.as_str() {
            "--profile" => {
                let v = value("--profile");
                profile = PerfProfile::parse(&v)
                    .unwrap_or_else(|| usage(&format!("unknown profile `{v}`")));
            }
            "--out" => out_path = value("--out"),
            "--scale" => {
                scale = Some(
                    value("--scale")
                        .parse()
                        .unwrap_or_else(|e| usage(&format!("bad --scale: {e}"))),
                )
            }
            "--seed" => {
                seed = Some(
                    value("--seed")
                        .parse()
                        .unwrap_or_else(|e| usage(&format!("bad --seed: {e}"))),
                )
            }
            "--budget" => {
                budget = Some(
                    value("--budget")
                        .parse()
                        .unwrap_or_else(|e| usage(&format!("bad --budget: {e}"))),
                )
            }
            "--threads" => {
                max_threads = value("--threads")
                    .parse()
                    .unwrap_or_else(|e| usage(&format!("bad --threads: {e}")));
                if max_threads == 0 {
                    usage("--threads must be at least 1");
                }
            }
            "--bench" => {
                benchmarks = Some(
                    value("--bench")
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
    }

    let custom = scale.is_some() || seed.is_some() || budget.is_some() || benchmarks.is_some();
    let mut opts = profile.options();
    if let Some(s) = scale {
        opts.scale = s;
    }
    if let Some(s) = seed {
        opts.seed = s;
    }
    if let Some(b) = budget {
        opts.budget = b;
    }
    if let Some(b) = benchmarks {
        opts.benchmarks = b;
    }

    // Doubling thread counts capped by --threads, always including the
    // cap itself: --threads 4 -> [1, 2, 4]; --threads 6 -> [1, 2, 4, 6].
    let mut thread_counts: Vec<usize> = DEFAULT_THREAD_COUNTS
        .iter()
        .copied()
        .chain(std::iter::successors(Some(8usize), |t| t.checked_mul(2)))
        .take_while(|&t| t <= max_threads)
        .collect();
    if thread_counts.last() != Some(&max_threads) {
        thread_counts.push(max_threads);
    }

    let name = if custom { "custom" } else { profile.name() };
    eprintln!(
        "perf_report: profile {name}, scale {}, benchmarks {:?}, threads {thread_counts:?}",
        opts.scale, opts.benchmarks
    );
    let report = perf_report_with_threads(name, &opts, &thread_counts);
    let json = render_perf_json(&report);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    for e in &report.engines {
        eprintln!(
            "  {:<10} {:>10.1} ms  {:>12} edges  hit rate {:>5.1}%  {:>8.1} q/s",
            e.engine,
            e.wall_ms,
            e.edges_traversed,
            e.cache_hit_rate() * 100.0,
            e.queries_per_sec()
        );
    }
    eprintln!(
        "  DYNSUM batched NullDeref throughput: {:.1} queries/sec",
        report.dynsum_batch_throughput_qps
    );
    for p in &report.session_scaling {
        eprintln!(
            "  Session::run_batch @ {} thread(s): {:>8.1} q/s  ({:.2}x vs 1 thread, results {})",
            p.threads,
            p.qps,
            p.speedup_vs_1,
            if p.results_identical {
                "identical to sequential"
            } else {
                "DIVERGED"
            }
        );
    }
    eprintln!(
        "  run_batch overhead vs legacy engine @ 1 thread: {:+.1}%",
        report.run_batch_overhead_vs_legacy_pct
    );
    for p in &report.cache_pressure {
        eprintln!(
            "  cache_pressure cap {:>9}: {:>8.1} q/s  hit rate {:>5.1}%  {:>6} evictions  \
             {:>6} resident  results {}",
            p.cap.map_or("uncapped".to_owned(), |c| c.to_string()),
            p.qps,
            p.hit_rate * 100.0,
            p.evictions,
            p.final_summaries,
            if p.results_identical {
                "identical"
            } else {
                "DIVERGED"
            }
        );
    }
    for p in &report.warm_start {
        eprintln!(
            "  warm_start {:<10}: cold {:>7.2} ms -> warm {:>7.2} ms ({:.1}x, load {:.2} ms, \
             {} summaries / {} bytes) results {}",
            p.benchmark,
            p.cold_first_batch_ms,
            p.warm_first_batch_ms,
            p.warm_speedup,
            p.load_ms,
            p.restored_summaries,
            p.snapshot_bytes,
            if p.results_identical {
                "identical"
            } else {
                "DIVERGED"
            }
        );
    }
    for p in &report.service {
        eprintln!(
            "  service @ {} client(s): {:>8.1} q/s  p50 {:>6.2} ms  p99 {:>6.2} ms  results {}",
            p.clients,
            p.qps,
            p.p50_ms,
            p.p99_ms,
            if p.results_identical {
                "identical"
            } else {
                "DIVERGED"
            }
        );
    }
    eprintln!("wrote {out_path}");
    // The identity checks are a gate, not a footnote: CI runs this
    // binary, so divergence from the sequential path — in the
    // thread-scaling series or at any swept cache cap — must fail the
    // build.
    if report.session_scaling.iter().any(|p| !p.results_identical) {
        eprintln!("ERROR: Session::run_batch results diverged from the sequential path");
        std::process::exit(1);
    }
    if report.cache_pressure.iter().any(|p| !p.results_identical) {
        eprintln!("ERROR: a cache_pressure cap point diverged from the sequential path");
        std::process::exit(1);
    }
    if report.warm_start.iter().any(|p| !p.results_identical) {
        eprintln!("ERROR: a snapshot-warmed first batch diverged from the sequential path");
        std::process::exit(1);
    }
    if report.service.iter().any(|p| !p.results_identical) {
        eprintln!("ERROR: a service series point diverged from the clean single-client session");
        std::process::exit(1);
    }
}

fn usage(err: &str) -> ! {
    eprintln!(
        "{err}\nusage: perf_report [--profile small|medium] [--out PATH] \
         [--scale F] [--seed N] [--budget N] [--bench a,b] [--threads N]"
    );
    std::process::exit(2);
}
