//! Writes `BENCH_report.json`: the per-engine performance snapshot
//! (wall time, deterministic edge work, cache hit rates, DYNSUM batch
//! throughput) that records the repo's perf trajectory from PR to PR.
//!
//! ```text
//! perf_report [--profile small|medium] [--out PATH] [--scale F]
//!             [--seed N] [--budget N] [--bench a,b]
//! ```
//!
//! `--profile` picks a named workload size (default `medium`); the
//! explicit generator flags override its choices and mark the report
//! `custom`.

use dynsum_bench::{perf_report, render_perf_json, PerfProfile};

fn main() {
    let mut out_path = "BENCH_report.json".to_owned();
    let mut profile = PerfProfile::Medium;
    // Explicit generator overrides, applied on top of the profile only
    // when the flag actually appeared (an override equal to a default
    // still counts).
    let mut scale: Option<f64> = None;
    let mut seed: Option<u64> = None;
    let mut budget: Option<u64> = None;
    let mut benchmarks: Option<Vec<String>> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{what} needs a value")))
        };
        match flag.as_str() {
            "--profile" => {
                let v = value("--profile");
                profile = PerfProfile::parse(&v)
                    .unwrap_or_else(|| usage(&format!("unknown profile `{v}`")));
            }
            "--out" => out_path = value("--out"),
            "--scale" => {
                scale = Some(
                    value("--scale")
                        .parse()
                        .unwrap_or_else(|e| usage(&format!("bad --scale: {e}"))),
                )
            }
            "--seed" => {
                seed = Some(
                    value("--seed")
                        .parse()
                        .unwrap_or_else(|e| usage(&format!("bad --seed: {e}"))),
                )
            }
            "--budget" => {
                budget = Some(
                    value("--budget")
                        .parse()
                        .unwrap_or_else(|e| usage(&format!("bad --budget: {e}"))),
                )
            }
            "--bench" => {
                benchmarks = Some(
                    value("--bench")
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            other => usage(&format!("unknown flag `{other}`")),
        }
    }

    let custom = scale.is_some() || seed.is_some() || budget.is_some() || benchmarks.is_some();
    let mut opts = profile.options();
    if let Some(s) = scale {
        opts.scale = s;
    }
    if let Some(s) = seed {
        opts.seed = s;
    }
    if let Some(b) = budget {
        opts.budget = b;
    }
    if let Some(b) = benchmarks {
        opts.benchmarks = b;
    }

    let name = if custom { "custom" } else { profile.name() };
    eprintln!(
        "perf_report: profile {name}, scale {}, benchmarks {:?}",
        opts.scale, opts.benchmarks
    );
    let report = perf_report(name, &opts);
    let json = render_perf_json(&report);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    for e in &report.engines {
        eprintln!(
            "  {:<10} {:>10.1} ms  {:>12} edges  hit rate {:>5.1}%  {:>8.1} q/s",
            e.engine,
            e.wall_ms,
            e.edges_traversed,
            e.cache_hit_rate() * 100.0,
            e.queries_per_sec()
        );
    }
    eprintln!(
        "  DYNSUM batched NullDeref throughput: {:.1} queries/sec",
        report.dynsum_batch_throughput_qps
    );
    eprintln!("wrote {out_path}");
}

fn usage(err: &str) -> ! {
    eprintln!(
        "{err}\nusage: perf_report [--profile small|medium] [--out PATH] \
         [--scale F] [--seed N] [--budget N] [--bench a,b]"
    );
    std::process::exit(2);
}
