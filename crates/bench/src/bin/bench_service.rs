//! `bench_service` — throughput and latency of the analysis daemon
//! under real concurrent clients.
//!
//! ```text
//! bench_service [--clients N] [--requests N] [--scale F] [--seed N]
//!               [--budget N] [--bench a,b] [--out PATH]
//! ```
//!
//! Unlike the in-process `service` series of `perf_report` (which
//! measures the deterministic daemon core alone), this harness goes
//! through the wire: one `serve_pair` event loop multiplexes N
//! socketpair connections, and N OS threads play closed-loop clients —
//! each sends a single-query frame, blocks on the response, verifies
//! the fingerprint against a clean single-client session, and repeats.
//! Recorded per run: sustained queries/sec and p50/p99 round-trip
//! latency, written to `BENCH_report_service.json` (CI uploads it as an
//! artifact). Exits non-zero if any wire answer diverges from the
//! clean-session reference — the daemon must be a byte-transparent
//! multiplexer.

fn main() {
    example::run();
}

#[cfg(not(unix))]
mod example {
    pub fn run() {
        eprintln!("bench_service: requires a Unix platform (socketpair transport)");
    }
}

#[cfg(unix)]
mod example {
    use std::collections::HashMap;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    use dynsum_bench::ExperimentOptions;
    use dynsum_clients::{queries_for, ClientKind};
    use dynsum_core::{EngineConfig, EngineKind, Session};
    use dynsum_pag::VarId;
    use dynsum_service::json::{parse, Json};
    use dynsum_service::{serve_pair, Daemon, ServedWorkload, ServiceConfig};

    const USAGE: &str = "\
usage:
  bench_service [--clients N] [--requests N] [--scale F] [--seed N]
                [--budget N] [--bench a,b] [--out PATH]";

    struct Flags {
        clients: usize,
        requests: usize,
        out: String,
        opts: ExperimentOptions,
    }

    fn parse_flags(args: &[String]) -> Result<Flags, String> {
        let mut flags = Flags {
            clients: 4,
            requests: 50,
            out: "BENCH_report_service.json".to_owned(),
            opts: ExperimentOptions {
                scale: 0.01,
                benchmarks: vec!["soot-c".to_owned()],
                ..ExperimentOptions::default()
            },
        };
        let mut it = args.iter();
        let value = |name: &str, it: &mut std::slice::Iter<'_, String>| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--clients" => {
                    flags.clients = value("--clients", &mut it)?
                        .parse()
                        .map_err(|e| format!("bad --clients: {e}"))?;
                    if flags.clients == 0 {
                        return Err("--clients must be at least 1".to_owned());
                    }
                }
                "--requests" => {
                    flags.requests = value("--requests", &mut it)?
                        .parse()
                        .map_err(|e| format!("bad --requests: {e}"))?;
                }
                "--out" => flags.out = value("--out", &mut it)?,
                "--scale" => {
                    flags.opts.scale = value("--scale", &mut it)?
                        .parse()
                        .map_err(|e| format!("bad --scale: {e}"))?;
                }
                "--seed" => {
                    flags.opts.seed = value("--seed", &mut it)?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--budget" => {
                    flags.opts.budget = value("--budget", &mut it)?
                        .parse()
                        .map_err(|e| format!("bad --budget: {e}"))?;
                }
                "--bench" => {
                    flags.opts.benchmarks = value("--bench", &mut it)?
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .filter(|s| !s.is_empty())
                        .collect();
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(flags)
    }

    /// One client's measurements: round-trip latencies (ms) and whether
    /// every answer matched the reference.
    struct ClientRun {
        latencies: Vec<f64>,
        identical: bool,
    }

    /// Plays one closed-loop client over its socket: hello, then
    /// `requests` single queries, each verified against `reference`.
    fn client_loop(
        stream: UnixStream,
        slot: usize,
        workload: &str,
        vars: &[VarId],
        requests: usize,
        reference: &HashMap<VarId, u64>,
    ) -> ClientRun {
        let mut writer = stream.try_clone().expect("clone socket");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        let mut recv = move |line: &mut String| -> Json {
            line.clear();
            reader.read_line(line).expect("daemon answered");
            parse(line.trim_end()).expect("daemon speaks valid JSON")
        };
        let mut identical = true;

        writeln!(
            writer,
            r#"{{"op":"hello","id":1,"name":"bench{slot}","engine":"dynsum","workload":"{workload}"}}"#
        )
        .expect("daemon is listening");
        let hello = recv(&mut line);
        if hello.get("ok").and_then(Json::as_bool) != Some(true) {
            return ClientRun {
                latencies: Vec::new(),
                identical: false,
            };
        }

        let mut latencies = Vec::with_capacity(requests);
        for i in 0..requests {
            let var = vars[i % vars.len()];
            let id = 2 + i as u64;
            let sent = Instant::now();
            writeln!(
                writer,
                r#"{{"op":"query","id":{id},"var":{}}}"#,
                var.as_raw()
            )
            .expect("daemon is listening");
            let answer = recv(&mut line);
            latencies.push(sent.elapsed().as_secs_f64() * 1e3);
            let fp = answer
                .get("result")
                .and_then(|r| r.get("fingerprint"))
                .and_then(Json::as_str)
                .and_then(|h| u64::from_str_radix(h, 16).ok());
            if answer.get("ok").and_then(Json::as_bool) != Some(true)
                || answer.get("id").and_then(Json::as_u64) != Some(id)
                || fp != reference.get(&var).copied()
            {
                identical = false;
            }
        }
        ClientRun {
            latencies,
            identical,
        }
    }

    fn percentile(sorted: &[f64], p: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    pub fn run() {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let flags = match parse_flags(&args) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: {e}\n{USAGE}");
                std::process::exit(2);
            }
        };
        let config = EngineConfig {
            deterministic_reuse: true,
            ..flags.opts.engine_config()
        };
        let workloads = flags.opts.workloads();
        if workloads.is_empty() {
            eprintln!("error: no benchmarks selected\n{USAGE}");
            std::process::exit(2);
        }

        // Per-workload query streams and clean-session references.
        let streams: Vec<Vec<VarId>> = workloads
            .iter()
            .map(|w| {
                queries_for(ClientKind::NullDeref, &w.info)
                    .iter()
                    .map(|q| q.var)
                    .collect()
            })
            .collect();
        let reference: Vec<HashMap<VarId, u64>> = workloads
            .iter()
            .zip(&streams)
            .map(|(w, stream)| {
                let mut vars = stream.clone();
                vars.sort_unstable();
                vars.dedup();
                let mut session = Session::with_config(&w.pag, EngineKind::DynSum, config);
                let results = session.run_batch_vars(&vars, 1);
                vars.iter()
                    .zip(&results)
                    .map(|(&v, r)| (v, r.fingerprint()))
                    .collect()
            })
            .collect();

        eprintln!(
            "bench_service: {} clients x {} requests, benchmarks {:?}, scale {}",
            flags.clients, flags.requests, flags.opts.benchmarks, flags.opts.scale
        );

        // One socketpair per client; the daemon's single event loop
        // serves all of them until every client hangs up.
        let mut client_halves = Vec::with_capacity(flags.clients);
        let mut server_halves = Vec::with_capacity(flags.clients);
        for _ in 0..flags.clients {
            let (client_half, server_half) = UnixStream::pair().expect("socketpair");
            client_halves.push(client_half);
            server_halves.push((server_half.try_clone().expect("clone socket"), server_half));
        }

        let served: Vec<ServedWorkload<'_>> = workloads
            .iter()
            .map(|w| ServedWorkload {
                name: &w.name,
                pag: &w.pag,
            })
            .collect();
        let mut daemon = Daemon::new(
            served,
            ServiceConfig {
                engine_config: config,
                ..ServiceConfig::default()
            },
        );

        let started = Instant::now();
        let runs: Vec<ClientRun> = dynsum_cfl::sync::thread::scope(|scope| {
            let server = scope.spawn(|| serve_pair(&mut daemon, server_halves));
            let handles: Vec<_> = client_halves
                .into_iter()
                .enumerate()
                .map(|(slot, stream)| {
                    let wi = slot % workloads.len();
                    let workload = &workloads[wi].name;
                    let vars = &streams[wi];
                    let reference = &reference[wi];
                    let requests = flags.requests;
                    scope.spawn(move || {
                        client_loop(stream, slot, workload, vars, requests, reference)
                    })
                })
                .collect();
            let runs = handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect();
            // Client sockets are dropped; readers see EOF and the event
            // loop drains out.
            server.join().expect("server thread");
            runs
        });
        let secs = started.elapsed().as_secs_f64();

        let mut latencies: Vec<f64> = runs.iter().flat_map(|r| r.latencies.clone()).collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let queries = latencies.len();
        let identical = runs.iter().all(|r| r.identical);
        let qps = if secs > 0.0 {
            queries as f64 / secs
        } else {
            0.0
        };
        let (p50, p99) = (percentile(&latencies, 0.5), percentile(&latencies, 0.99));

        let benches: Vec<String> = workloads
            .iter()
            .map(|w| format!("\"{}\"", w.name))
            .collect();
        let json = format!(
            "{{\n  \"clients\": {},\n  \"requests_per_client\": {},\n  \"benchmarks\": [{}],\n  \
             \"scale\": {},\n  \"seed\": {},\n  \"budget\": {},\n  \"queries\": {},\n  \
             \"wall_ms\": {:.3},\n  \"qps\": {:.3},\n  \"p50_ms\": {:.3},\n  \"p99_ms\": {:.3},\n  \
             \"results_identical_vs_sequential\": {}\n}}\n",
            flags.clients,
            flags.requests,
            benches.join(", "),
            flags.opts.scale,
            flags.opts.seed,
            flags.opts.budget,
            queries,
            secs * 1e3,
            qps,
            p50,
            p99,
            identical
        );
        if let Err(e) = std::fs::write(&flags.out, &json) {
            eprintln!("cannot write {}: {e}", flags.out);
            std::process::exit(1);
        }
        eprintln!(
            "  {} queries in {:.1} ms: {:.1} q/s  p50 {:.2} ms  p99 {:.2} ms  results {}",
            queries,
            secs * 1e3,
            qps,
            p50,
            p99,
            if identical { "identical" } else { "DIVERGED" }
        );
        eprintln!("wrote {}", flags.out);
        if !identical {
            eprintln!("ERROR: a wire answer diverged from the clean single-client session");
            std::process::exit(1);
        }
    }
}
