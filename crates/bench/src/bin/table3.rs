//! Regenerates Table 3: benchmark statistics of the (synthetic) suite.

use dynsum_bench::ExperimentOptions;

fn main() {
    let opts = match ExperimentOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\nusage: table3 [--scale F] [--seed N] [--budget N] [--bench a,b]");
            std::process::exit(2);
        }
    };
    print!("{}", dynsum_bench::table3(&opts).render());
}
