//! Regenerates Figure 4: DYNSUM's per-batch cost normalized to
//! REFINEPTS over 10 query batches.

use dynsum_bench::ExperimentOptions;

fn main() {
    let opts = match ExperimentOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\nusage: figure4 [--scale F] [--seed N] [--budget N] [--bench a,b]");
            std::process::exit(2);
        }
    };
    let series = dynsum_bench::figure4(&opts, 10);
    print!("{}", dynsum_bench::render_figure4(&series));
}
