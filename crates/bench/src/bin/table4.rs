//! Regenerates Table 4: analysis times (and deterministic edge counts)
//! of NOREFINE, REFINEPTS and DYNSUM for the three clients.

use dynsum_bench::ExperimentOptions;

fn main() {
    let opts = match ExperimentOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}\nusage: table4 [--scale F] [--seed N] [--budget N] [--bench a,b]");
            std::process::exit(2);
        }
    };
    let out = dynsum_bench::table4(&opts);
    print!("{}", out.render());
}
