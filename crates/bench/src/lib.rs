//! # dynsum-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5) on
//! the synthetic benchmark suite:
//!
//! | binary | artifact |
//! |--------|----------|
//! | `table1`  | Table 1 — DYNSUM's traversal traces for `s1`/`s2` on Figure 2 |
//! | `table2`  | Table 2 — qualitative algorithm comparison |
//! | `table3`  | Table 3 — benchmark statistics (locality, query counts) |
//! | `table4`  | Table 4 — analysis times of NOREFINE/REFINEPTS/DYNSUM × 3 clients |
//! | `figure4` | Figure 4 — per-batch DYNSUM time normalized to REFINEPTS |
//! | `figure5` | Figure 5 — cumulative DYNSUM summaries as % of STASUM |
//! | `ablation`| extra: cache on/off, context sensitivity, budget sweeps |
//! | `perf_report` | extra: engine perf snapshot → `BENCH_report.json` |
//! | `bench_service` | extra: concurrent daemon clients over sockets → `BENCH_report_service.json` |
//!
//! Every binary accepts `--scale <f>` (default 0.02), `--seed <n>`,
//! `--budget <n>` (default 75000) and `--bench <name,...>`; the same
//! experiments are exposed as library functions so the integration tests
//! can run them at tiny scales.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod experiments;
mod options;
mod perf;
mod table;

pub use experiments::{
    ablation, figure4, figure5, render_ablation, render_figure4, render_figure5, table1, table2,
    table3, table4, AblationRow, BatchSeries, Figure5Row, Table1Output, Table4Cell, Table4Output,
};
pub use options::{EngineKind, ExperimentOptions};
pub use perf::{
    perf_report, perf_report_with_threads, render_perf_json, BatchPerf, CachePressurePerf,
    EnginePerf, PerfProfile, PerfReport, ServicePerf, ThreadScalePerf, WarmStartPerf,
    DEFAULT_CLIENT_COUNTS, DEFAULT_THREAD_COUNTS, PERF_BATCHES, PERF_ENGINES,
};
pub use table::Table;
