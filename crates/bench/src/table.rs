//! Minimal aligned-text table rendering for the harness binaries.

/// A simple text table with a title, column headers and string cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (each row should have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with column alignment (first column left, rest right).
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            line
        };
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two rows, plus the title line.
        assert_eq!(lines.len(), 5);
        // Right-aligned numeric column.
        assert!(lines[3].ends_with("    1") || lines[3].ends_with("1"));
    }
}
