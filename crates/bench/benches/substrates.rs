//! Criterion benches over the substrates: Andersen solving, STASUM
//! precomputation, PAG construction/serialization, and the workload
//! generator itself.

use criterion::{criterion_group, criterion_main, Criterion};

use dynsum_andersen::Andersen;
use dynsum_bench::ExperimentOptions;
use dynsum_core::{EngineConfig, StaSum};
use dynsum_pag::text::{parse_pag, write_pag};
use dynsum_workloads::{generate, GeneratorOptions, PROFILES};

fn options() -> ExperimentOptions {
    ExperimentOptions {
        scale: 0.01,
        benchmarks: vec!["soot-c".to_owned()],
        ..ExperimentOptions::default()
    }
}

fn andersen_solve(c: &mut Criterion) {
    let workload = options().workloads().remove(0);
    c.bench_function("andersen/soot-c", |b| {
        b.iter(|| Andersen::analyze(std::hint::black_box(&workload.pag)));
    });
}

fn stasum_precompute(c: &mut Criterion) {
    let workload = options().workloads().remove(0);
    c.bench_function("stasum_precompute/soot-c", |b| {
        b.iter(|| {
            StaSum::precompute_with(
                std::hint::black_box(&workload.pag),
                EngineConfig::default(),
                Default::default(),
            )
        });
    });
}

fn generator(c: &mut Criterion) {
    let opts = GeneratorOptions {
        scale: 0.01,
        seed: 1,
        ..GeneratorOptions::default()
    };
    c.bench_function("generate/soot-c", |b| {
        b.iter(|| generate(std::hint::black_box(&PROFILES[2]), &opts));
    });
}

fn text_round_trip(c: &mut Criterion) {
    let workload = options().workloads().remove(0);
    let text = write_pag(&workload.pag);
    c.bench_function("text/write", |b| {
        b.iter(|| write_pag(std::hint::black_box(&workload.pag)));
    });
    c.bench_function("text/parse", |b| {
        b.iter(|| parse_pag(std::hint::black_box(&text)).expect("round trip"));
    });
}

criterion_group!(
    benches,
    andersen_solve,
    stasum_precompute,
    generator,
    text_round_trip
);
criterion_main!(benches);
