//! Criterion benches over the four demand-driven engines.
//!
//! `query_stream/*` measures a whole NullDeref query stream per engine
//! on the scaled `soot-c` workload (DYNSUM's cache persisting across the
//! stream, as in Table 4); `single_query/*` measures one cold query.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use dynsum_bench::{EngineKind, ExperimentOptions};
use dynsum_clients::{run_client, ClientKind};

fn options() -> ExperimentOptions {
    ExperimentOptions {
        scale: 0.01,
        benchmarks: vec!["soot-c".to_owned()],
        ..ExperimentOptions::default()
    }
}

fn query_stream(c: &mut Criterion) {
    let opts = options();
    let workload = opts.workloads().remove(0);
    let mut group = c.benchmark_group("query_stream");
    group.sample_size(10);
    for kind in [
        EngineKind::NoRefine,
        EngineKind::RefinePts,
        EngineKind::DynSum,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || kind.build(&workload.pag, opts.engine_config()),
                |mut engine| {
                    run_client(
                        ClientKind::NullDeref,
                        &workload.pag,
                        &workload.info,
                        engine.as_mut(),
                    )
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn single_query(c: &mut Criterion) {
    let opts = options();
    let workload = opts.workloads().remove(0);
    let var = workload.info.derefs[0].base;
    let mut group = c.benchmark_group("single_query");
    for kind in [
        EngineKind::NoRefine,
        EngineKind::RefinePts,
        EngineKind::DynSum,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || kind.build(&workload.pag, opts.engine_config()),
                |mut engine| engine.points_to(var),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn warm_cache_query(c: &mut Criterion) {
    let opts = options();
    let workload = opts.workloads().remove(0);
    let var = workload.info.derefs[0].base;
    // Warm DYNSUM once with the full stream, then measure repeat queries.
    let mut engine = EngineKind::DynSum.build(&workload.pag, opts.engine_config());
    run_client(
        ClientKind::NullDeref,
        &workload.pag,
        &workload.info,
        engine.as_mut(),
    );
    c.bench_function("warm_cache_query/DYNSUM", |b| {
        b.iter(|| engine.points_to(std::hint::black_box(var)));
    });
}

criterion_group!(benches, query_stream, single_query, warm_cache_query);
criterion_main!(benches);
