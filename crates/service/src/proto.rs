//! The line-delimited frame protocol: requests, responses, and the
//! error-frame taxonomy.
//!
//! Every frame is one line of JSON. Requests are objects carrying an
//! `"op"` string and a client-chosen `"id"` (echoed back verbatim in
//! the matching response, so clients can pipeline). Responses carry
//! `"ok": true` plus op-specific fields, or `"ok": false` plus a
//! structured `"error": {"code", "message"}` object. Malformed input —
//! bytes that are not JSON, JSON that is not a valid frame, frames
//! that are too large — is always answered with an error frame on the
//! same connection; the connection stays open.

use dynsum_cfl::QueryResult;
use dynsum_core::EngineKind;

use crate::json::{parse, Json, MAX_JSON_DEPTH};

/// Hard cap on a single frame's length in bytes. Anything longer is
/// answered with an [`ErrorCode::Oversized`] error frame without being
/// parsed (the transport need not even buffer past the cap).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Upper bound on `vars` per `batch` frame.
pub const MAX_BATCH_VARS: usize = 4096;

/// The protocol's stable error codes. The wire string (see
/// [`ErrorCode::code`]) is part of the protocol: tests and clients
/// match on it, so variants are append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not valid JSON.
    Parse,
    /// The frame was JSON but not a valid request (missing/ill-typed
    /// fields, unknown field values, limits exceeded).
    BadFrame,
    /// The `op` string names no known operation.
    UnknownOp,
    /// An operation that needs a negotiated session arrived before
    /// `hello`.
    NeedHello,
    /// `hello` carried an invalid engine/config negotiation (including
    /// any attempt to disable deterministic reuse, which the shared
    /// sessions require).
    BadConfig,
    /// `hello` named a workload the daemon does not serve.
    UnknownWorkload,
    /// A query named a variable that does not exist in the workload.
    UnknownVar,
    /// `invalidate_method` named a method that does not exist.
    UnknownMethod,
    /// A `query`/`batch` reused a request id that is still in flight.
    DuplicateId,
    /// The client's edge allowance is spent; the query was rejected
    /// without running (answers are never silently degraded).
    BudgetExhausted,
    /// The frame exceeded [`MAX_FRAME_BYTES`].
    Oversized,
    /// `save_snapshot` failed: no snapshot directory is configured or
    /// the write failed.
    SnapshotIo,
    /// The daemon is shutting down and accepts no new work.
    ShuttingDown,
}

impl ErrorCode {
    /// The stable wire string.
    pub fn code(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::UnknownOp => "unknown-op",
            ErrorCode::NeedHello => "need-hello",
            ErrorCode::BadConfig => "bad-config",
            ErrorCode::UnknownWorkload => "unknown-workload",
            ErrorCode::UnknownVar => "unknown-var",
            ErrorCode::UnknownMethod => "unknown-method",
            ErrorCode::DuplicateId => "duplicate-id",
            ErrorCode::BudgetExhausted => "budget-exhausted",
            ErrorCode::Oversized => "oversized",
            ErrorCode::SnapshotIo => "snapshot-io",
            ErrorCode::ShuttingDown => "shutting-down",
        }
    }
}

/// A structured protocol error: code plus human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// The stable error code.
    pub code: ErrorCode,
    /// Details for humans; not matched by clients.
    pub message: String,
}

impl ProtoError {
    /// Builds an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ProtoError {
            code,
            message: message.into(),
        }
    }
}

/// A variable reference in a `query`/`batch` frame: either the raw
/// `VarId` index (a number) or the variable's name (a string, resolved
/// via `Pag::find_var`).
#[derive(Debug, Clone, PartialEq)]
pub enum VarRef {
    /// Raw index into the workload's variable arena.
    Raw(u32),
    /// `Class.method#var`-style name.
    Named(String),
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Session negotiation; must be the first operation on a
    /// connection.
    Hello {
        /// Echoed request id.
        id: u64,
        /// Client display name (for health reports).
        name: String,
        /// Workload to analyze (daemon's default when absent).
        workload: Option<String>,
        /// Engine to query with (DYNSUM when absent).
        engine: EngineKind,
        /// `EngineConfig` overrides, already validated key-wise.
        config: Vec<(String, Json)>,
        /// Requested per-client edge allowance (capped by the daemon).
        budget: Option<u64>,
        /// Default per-query deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// One points-to query.
    Query {
        /// Echoed request id.
        id: u64,
        /// The queried variable.
        var: VarRef,
        /// Per-query deadline override.
        deadline_ms: Option<u64>,
    },
    /// A batch of points-to queries answered by one response frame.
    Batch {
        /// Echoed request id.
        id: u64,
        /// The queried variables, in response order.
        vars: Vec<VarRef>,
        /// Per-query deadline override applied to each query.
        deadline_ms: Option<u64>,
    },
    /// Cancels an in-flight `query`/`batch` by its request id.
    Cancel {
        /// Echoed request id.
        id: u64,
        /// The request id to cancel.
        target: u64,
    },
    /// Evicts one method's summaries from the shared session.
    InvalidateMethod {
        /// Echoed request id.
        id: u64,
        /// Raw method id.
        method: u32,
    },
    /// Reports session health plus this client's counters.
    Health {
        /// Echoed request id.
        id: u64,
    },
    /// Persists the shared session's summary cache to the configured
    /// snapshot directory.
    SaveSnapshot {
        /// Echoed request id.
        id: u64,
    },
    /// Stops the daemon after in-flight work drains.
    Shutdown {
        /// Echoed request id.
        id: u64,
    },
}

impl Request {
    /// The request id echoed in this request's response.
    pub fn id(&self) -> u64 {
        match self {
            Request::Hello { id, .. }
            | Request::Query { id, .. }
            | Request::Batch { id, .. }
            | Request::Cancel { id, .. }
            | Request::InvalidateMethod { id, .. }
            | Request::Health { id }
            | Request::SaveSnapshot { id }
            | Request::Shutdown { id } => *id,
        }
    }
}

/// `EngineConfig` keys `hello` may override. `deterministic_reuse` is
/// deliberately absent: shared sessions require it, and a frame trying
/// to turn it off is a [`ErrorCode::BadConfig`] error.
pub const CONFIG_KEYS: &[&str] = &[
    "budget",
    "max_field_depth",
    "max_ctx_depth",
    "max_refinements",
    "max_cached_summaries",
    "context_sensitive",
    "cache_summaries",
];

/// Parses an engine name as used on the wire.
pub fn parse_engine(name: &str) -> Option<EngineKind> {
    match name {
        "dynsum" => Some(EngineKind::DynSum),
        "norefine" => Some(EngineKind::NoRefine),
        "refinepts" => Some(EngineKind::RefinePts),
        "stasum" => Some(EngineKind::StaSum),
        _ => None,
    }
}

/// The wire name of an engine.
pub fn engine_name(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::DynSum => "dynsum",
        EngineKind::NoRefine => "norefine",
        EngineKind::RefinePts => "refinepts",
        EngineKind::StaSum => "stasum",
    }
}

/// Parses one raw frame line into a [`Request`].
///
/// On failure the result carries the request id when one could still be
/// extracted (so the error frame can echo it) — `None` otherwise.
pub fn parse_request(line: &str) -> Result<Request, (Option<u64>, ProtoError)> {
    if line.len() > MAX_FRAME_BYTES {
        return Err((
            None,
            ProtoError::new(
                ErrorCode::Oversized,
                format!("frame of {} bytes exceeds {MAX_FRAME_BYTES}", line.len()),
            ),
        ));
    }
    let value =
        parse(line).map_err(|e| (None, ProtoError::new(ErrorCode::Parse, e.to_string())))?;
    let id = value.get("id").and_then(Json::as_u64);
    parse_request_value(&value).map_err(|e| (id, e))
}

fn parse_request_value(value: &Json) -> Result<Request, ProtoError> {
    let obj = value
        .as_obj()
        .ok_or_else(|| ProtoError::new(ErrorCode::BadFrame, "frame must be a JSON object"))?;
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::new(ErrorCode::BadFrame, "missing string field `op`"))?;
    let id = value
        .get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtoError::new(ErrorCode::BadFrame, "missing integer field `id`"))?;
    let known = |allowed: &[&str]| -> Result<(), ProtoError> {
        for (k, _) in obj {
            if k != "op" && k != "id" && !allowed.contains(&k.as_str()) {
                return Err(ProtoError::new(
                    ErrorCode::BadFrame,
                    format!("unknown field `{k}` for op `{op}`"),
                ));
            }
        }
        Ok(())
    };
    match op {
        "hello" => {
            known(&[
                "name",
                "workload",
                "engine",
                "config",
                "budget",
                "deadline_ms",
            ])?;
            let name = match value.get("name") {
                None => "anonymous".to_owned(),
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| ProtoError::new(ErrorCode::BadFrame, "`name` must be a string"))?
                    .to_owned(),
            };
            let workload = match value.get("workload") {
                None => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| {
                            ProtoError::new(ErrorCode::BadFrame, "`workload` must be a string")
                        })?
                        .to_owned(),
                ),
            };
            let engine = match value.get("engine") {
                None => EngineKind::DynSum,
                Some(v) => {
                    let name = v.as_str().ok_or_else(|| {
                        ProtoError::new(ErrorCode::BadConfig, "`engine` must be a string")
                    })?;
                    parse_engine(name).ok_or_else(|| {
                        ProtoError::new(ErrorCode::BadConfig, format!("unknown engine `{name}`"))
                    })?
                }
            };
            let config = match value.get("config") {
                None => Vec::new(),
                Some(v) => {
                    let fields = v.as_obj().ok_or_else(|| {
                        ProtoError::new(ErrorCode::BadConfig, "`config` must be an object")
                    })?;
                    for (k, _) in fields {
                        if k == "deterministic_reuse" {
                            return Err(ProtoError::new(
                                ErrorCode::BadConfig,
                                "deterministic_reuse cannot be negotiated: shared sessions \
                                 require it",
                            ));
                        }
                        if !CONFIG_KEYS.contains(&k.as_str()) {
                            return Err(ProtoError::new(
                                ErrorCode::BadConfig,
                                format!("unknown config key `{k}`"),
                            ));
                        }
                    }
                    fields.to_vec()
                }
            };
            let budget = opt_u64(value, "budget")?;
            let deadline_ms = opt_u64(value, "deadline_ms")?;
            Ok(Request::Hello {
                id,
                name,
                workload,
                engine,
                config,
                budget,
                deadline_ms,
            })
        }
        "query" => {
            known(&["var", "deadline_ms"])?;
            let var = var_ref(
                value
                    .get("var")
                    .ok_or_else(|| ProtoError::new(ErrorCode::BadFrame, "missing field `var`"))?,
            )?;
            let deadline_ms = opt_u64(value, "deadline_ms")?;
            Ok(Request::Query {
                id,
                var,
                deadline_ms,
            })
        }
        "batch" => {
            known(&["vars", "deadline_ms"])?;
            let items = value
                .get("vars")
                .and_then(Json::as_arr)
                .ok_or_else(|| ProtoError::new(ErrorCode::BadFrame, "`vars` must be an array"))?;
            if items.is_empty() {
                return Err(ProtoError::new(ErrorCode::BadFrame, "`vars` is empty"));
            }
            if items.len() > MAX_BATCH_VARS {
                return Err(ProtoError::new(
                    ErrorCode::BadFrame,
                    format!("batch of {} vars exceeds {MAX_BATCH_VARS}", items.len()),
                ));
            }
            let vars = items.iter().map(var_ref).collect::<Result<Vec<_>, _>>()?;
            let deadline_ms = opt_u64(value, "deadline_ms")?;
            Ok(Request::Batch {
                id,
                vars,
                deadline_ms,
            })
        }
        "cancel" => {
            known(&["target"])?;
            let target = value.get("target").and_then(Json::as_u64).ok_or_else(|| {
                ProtoError::new(ErrorCode::BadFrame, "`target` must be a request id")
            })?;
            Ok(Request::Cancel { id, target })
        }
        "invalidate_method" => {
            known(&["method"])?;
            let method = value.get("method").and_then(Json::as_u64).ok_or_else(|| {
                ProtoError::new(ErrorCode::BadFrame, "`method` must be a raw method id")
            })?;
            let method = u32::try_from(method)
                .map_err(|_| ProtoError::new(ErrorCode::UnknownMethod, "method id out of range"))?;
            Ok(Request::InvalidateMethod { id, method })
        }
        "health" => {
            known(&[])?;
            Ok(Request::Health { id })
        }
        "save_snapshot" => {
            known(&[])?;
            Ok(Request::SaveSnapshot { id })
        }
        "shutdown" => {
            known(&[])?;
            Ok(Request::Shutdown { id })
        }
        other => Err(ProtoError::new(
            ErrorCode::UnknownOp,
            format!("unknown op `{other}`"),
        )),
    }
}

fn opt_u64(value: &Json, key: &str) -> Result<Option<u64>, ProtoError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ProtoError::new(
                ErrorCode::BadFrame,
                format!("`{key}` must be a non-negative integer"),
            )
        }),
    }
}

fn var_ref(value: &Json) -> Result<VarRef, ProtoError> {
    if let Some(n) = value.as_u64() {
        let raw = u32::try_from(n)
            .map_err(|_| ProtoError::new(ErrorCode::UnknownVar, "var id out of range"))?;
        return Ok(VarRef::Raw(raw));
    }
    if let Some(s) = value.as_str() {
        return Ok(VarRef::Named(s.to_owned()));
    }
    Err(ProtoError::new(
        ErrorCode::BadFrame,
        "`var` entries must be a raw id or a name",
    ))
}

/// Renders an error response frame. `id` is the offending request's id
/// when it could be recovered, `null` otherwise.
pub fn error_frame(id: Option<u64>, error: &ProtoError) -> String {
    Json::Obj(vec![
        ("id".to_owned(), id.map_or(Json::Null, Json::num)),
        ("ok".to_owned(), Json::Bool(false)),
        (
            "error".to_owned(),
            Json::Obj(vec![
                ("code".to_owned(), Json::str(error.code.code())),
                ("message".to_owned(), Json::str(&*error.message)),
            ]),
        ),
    ])
    .render()
}

/// Renders a success response frame: `{"id":…,"ok":true, …fields}`.
pub fn ok_frame(id: u64, fields: Vec<(String, Json)>) -> String {
    let mut all = vec![
        ("id".to_owned(), Json::num(id)),
        ("ok".to_owned(), Json::Bool(true)),
    ];
    all.extend(fields);
    Json::Obj(all).render()
}

/// Encodes one query result as its canonical protocol object — the
/// **byte-identity surface** the fuzzer's service regime judges against
/// a clean single-client session: outcome tag, the full `(object,
/// context)` points-to set in sorted order, and the stable result
/// fingerprint. Work counters ride along for observability but are
/// excluded from the fingerprint (they are not part of the answer).
pub fn encode_query_result(r: &QueryResult) -> Json {
    let outcome = match r.outcome.tag() {
        0 => "over-budget",
        1 => "resolved",
        2 => "cancelled",
        3 => "deadline-exceeded",
        _ => "panicked",
    };
    let pts: Vec<Json> = r
        .pts
        .iter()
        .map(|(o, c)| {
            Json::Arr(vec![
                Json::num(u64::from(o.as_raw())),
                Json::num(u64::from(c.as_raw())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("outcome".to_owned(), Json::str(outcome)),
        ("resolved".to_owned(), Json::Bool(r.resolved)),
        ("pts".to_owned(), Json::Arr(pts)),
        (
            "fingerprint".to_owned(),
            Json::str(format!("{:016x}", r.fingerprint())),
        ),
        ("edges".to_owned(), Json::num(r.stats.edges_traversed)),
        ("cache_hits".to_owned(), Json::num(r.stats.cache_hits)),
    ])
}

/// Re-exported so transports can size read buffers against the parser's
/// own nesting bound.
pub const MAX_DEPTH: usize = MAX_JSON_DEPTH;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let cases = [
            r#"{"op":"hello","id":1,"name":"a","engine":"dynsum"}"#,
            r#"{"op":"query","id":2,"var":7}"#,
            r#"{"op":"query","id":2,"var":"Main.main#got"}"#,
            r#"{"op":"batch","id":3,"vars":[1,2,3],"deadline_ms":50}"#,
            r#"{"op":"cancel","id":4,"target":3}"#,
            r#"{"op":"invalidate_method","id":5,"method":0}"#,
            r#"{"op":"health","id":6}"#,
            r#"{"op":"save_snapshot","id":7}"#,
            r#"{"op":"shutdown","id":8}"#,
        ];
        for c in cases {
            let req = parse_request(c).unwrap_or_else(|e| panic!("{c}: {e:?}"));
            assert!(req.id() >= 1);
        }
    }

    #[test]
    fn frame_errors_carry_codes_and_ids() {
        let (id, e) = parse_request("not json").unwrap_err();
        assert_eq!((id, e.code), (None, ErrorCode::Parse));
        let (id, e) = parse_request(r#"{"op":"frobnicate","id":9}"#).unwrap_err();
        assert_eq!((id, e.code), (Some(9), ErrorCode::UnknownOp));
        let (id, e) = parse_request(r#"{"op":"query","id":1}"#).unwrap_err();
        assert_eq!((id, e.code), (Some(1), ErrorCode::BadFrame));
        let (_, e) = parse_request(r#"{"op":"query","var":1}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadFrame);
        let (_, e) =
            parse_request(r#"{"op":"hello","id":1,"config":{"deterministic_reuse":false}}"#)
                .unwrap_err();
        assert_eq!(e.code, ErrorCode::BadConfig);
        let (_, e) = parse_request(r#"{"op":"hello","id":1,"config":{"wat":1}}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadConfig);
        let (_, e) = parse_request(r#"{"op":"query","id":1,"var":1,"bogus":2}"#).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadFrame);
        let big = format!(
            r#"{{"op":"query","id":1,"var":"{}"}}"#,
            "x".repeat(MAX_FRAME_BYTES)
        );
        let (_, e) = parse_request(&big).unwrap_err();
        assert_eq!(e.code, ErrorCode::Oversized);
    }

    #[test]
    fn frames_render_stably() {
        let err = error_frame(Some(3), &ProtoError::new(ErrorCode::Parse, "bad"));
        assert_eq!(
            err,
            r#"{"id":3,"ok":false,"error":{"code":"parse","message":"bad"}}"#
        );
        let err = error_frame(None, &ProtoError::new(ErrorCode::Oversized, "big"));
        assert!(err.starts_with(r#"{"id":null,"ok":false"#));
        let ok = ok_frame(4, vec![("n".to_owned(), Json::num(2))]);
        assert_eq!(ok, r#"{"id":4,"ok":true,"n":2}"#);
    }

    #[test]
    fn engine_names_round_trip() {
        for kind in EngineKind::ALL {
            assert_eq!(parse_engine(engine_name(kind)), Some(kind));
        }
        assert_eq!(parse_engine("magic"), None);
    }
}
