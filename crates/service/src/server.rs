//! Transports: the event loop that connects byte streams to the
//! [`Daemon`] state machine.
//!
//! All transports share one shape: a **reader thread per connection**
//! turns raw bytes into line events on an [`mpsc`] channel, and the
//! calling thread runs the event loop — ingesting frames, cranking the
//! scheduler one query at a time, and writing response frames back.
//! Because only the event-loop thread touches the daemon and the
//! writers, the core stays single-threaded and deterministic; the only
//! cross-thread state is the [`CancelRegistry`], which reader threads
//! use to flip cancel tokens *while the scheduler is mid-query*, so a
//! `cancel` frame interrupts a long-running query instead of queueing
//! behind it.
//!
//! Entry points:
//!
//! - [`serve_pair`] — serve pre-connected duplex streams (stdio halves,
//!   [`std::os::unix::net::UnixStream::pair`] halves, in-memory pipes).
//! - [`serve_stdio`] — one connection over the process's stdin/stdout.
//! - [`serve_unix`] — listen on a Unix socket and serve every
//!   connection that arrives (Unix only).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::mpsc;

use dynsum_cfl::sync::thread;

use crate::daemon::{CancelRegistry, ClientId, Daemon};
use crate::proto::{parse_request, Request, MAX_FRAME_BYTES};

/// What a reader thread tells the event loop.
enum Event<W> {
    /// A new connection: register `id` and write its frames to `W`.
    Connect(ClientId, W),
    /// One frame line from `id` (without the trailing newline).
    Line(ClientId, String),
    /// `id` reached EOF or errored; tear it down.
    Disconnect(ClientId),
}

/// Reads newline-delimited frames from `stream` and forwards them as
/// events. Lines longer than [`MAX_FRAME_BYTES`] are forwarded anyway —
/// truncated to the cap plus one byte so the protocol layer answers
/// with a structured `oversized` error instead of the daemon buffering
/// an unbounded line.
fn pump_lines<R: Read, W: Write>(
    stream: R,
    id: ClientId,
    registry: &CancelRegistry,
    tx: &mpsc::Sender<Event<W>>,
) {
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        // Bounded read: never buffer more than the frame cap (plus one
        // byte to make the oversize detectable downstream).
        let mut oversized = false;
        let ok = loop {
            let chunk = match reader.fill_buf() {
                Ok(c) => c,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break false,
            };
            if chunk.is_empty() {
                break !buf.is_empty(); // EOF: flush a final unterminated line
            }
            let (take, done) = match chunk.iter().position(|b| *b == b'\n') {
                Some(i) => (i + 1, true),
                None => (chunk.len(), false),
            };
            let keep = take.min((MAX_FRAME_BYTES + 1).saturating_sub(buf.len()));
            if keep < take {
                oversized = true;
            }
            buf.extend_from_slice(&chunk[..keep]);
            reader.consume(take);
            if done {
                break true;
            }
        };
        if !ok {
            let _ = tx.send(Event::Disconnect(id));
            return;
        }
        if buf.last() == Some(&b'\n') {
            buf.pop();
        }
        if oversized {
            // Pad back over the cap so `parse_request` classifies it.
            buf.resize(MAX_FRAME_BYTES + 1, b' ');
        }
        let line = String::from_utf8_lossy(&buf).into_owned();
        // Fast path: flip cancel tokens from the reader thread so a
        // cancel takes effect while the scheduler is mid-query. The
        // daemon's own ingest of the same frame produces the ack and is
        // idempotent.
        if line.contains("cancel") {
            if let Ok(Request::Cancel { target, .. }) = parse_request(&line) {
                registry.cancel(id, target);
            }
        }
        if tx.send(Event::Line(id, line)).is_err() {
            return; // event loop is gone
        }
    }
}

/// Writes one frame line, reporting failure so the loop can tear the
/// client down.
fn write_frame<W: Write>(writer: &mut W, frame: &str) -> bool {
    writer
        .write_all(frame.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .is_ok()
}

fn deliver<W: Write>(
    daemon: &mut Daemon<'_>,
    writers: &mut HashMap<ClientId, W>,
    id: ClientId,
    frame: &str,
) {
    let alive = match writers.get_mut(&id) {
        Some(w) => write_frame(w, frame),
        None => return, // already torn down
    };
    if !alive {
        writers.remove(&id);
        daemon.disconnect(id);
    }
}

/// Serves a set of pre-connected duplex streams until every one
/// disconnects or a client requests `shutdown`.
///
/// Reader threads are detached, not joined: a reader blocked on a
/// stream whose peer never closes would otherwise pin the call forever.
/// They exit on EOF, on read error, or on their next line once the
/// event loop is gone.
pub fn serve_pair<R, W>(daemon: &mut Daemon<'_>, conns: Vec<(R, W)>)
where
    R: Read + Send + 'static,
    W: Write + Send + 'static,
{
    let (tx, rx) = mpsc::channel::<Event<W>>();
    let registry = daemon.cancel_registry();
    let mut writers: HashMap<ClientId, W> = HashMap::new();
    for (read_half, write_half) in conns {
        let id = daemon.connect();
        writers.insert(id, write_half);
        let tx = tx.clone();
        let registry = registry.clone();
        thread::spawn(move || pump_lines(read_half, id, &registry, &tx));
    }
    drop(tx); // the loop's channel closes when the last reader exits
    event_loop(daemon, &rx, writers);
}

/// The shared event loop: alternates between channel events and
/// scheduler turns, never blocking while queued work remains. Returns
/// the surviving writers (so Unix-socket serving can shut their streams
/// down and unblock reader threads).
fn event_loop<W: Write>(
    daemon: &mut Daemon<'_>,
    rx: &mpsc::Receiver<Event<W>>,
    seed: HashMap<ClientId, W>,
) -> HashMap<ClientId, W> {
    let mut writers = seed;
    let mut channel_closed = false;
    loop {
        if daemon.shutdown_requested() && !daemon.has_work() {
            break;
        }
        if channel_closed && !daemon.has_work() {
            break;
        }
        let event = if daemon.has_work() {
            match rx.try_recv() {
                Ok(ev) => Some(ev),
                Err(mpsc::TryRecvError::Empty) => None,
                Err(mpsc::TryRecvError::Disconnected) => {
                    channel_closed = true;
                    None
                }
            }
        } else {
            match rx.recv() {
                Ok(ev) => Some(ev),
                Err(_) => {
                    channel_closed = true;
                    continue;
                }
            }
        };
        match event {
            Some(Event::Connect(id, writer)) => {
                daemon.connect_as(id);
                writers.insert(id, writer);
            }
            Some(Event::Line(id, line)) => {
                for frame in daemon.ingest(id, &line) {
                    deliver(daemon, &mut writers, id, &frame);
                }
            }
            Some(Event::Disconnect(id)) => {
                daemon.disconnect(id);
                writers.remove(&id);
            }
            None => {}
        }
        for (id, frame) in daemon.step() {
            deliver(daemon, &mut writers, id, &frame);
        }
    }
    writers
}

/// Serves one connection over the process's stdin/stdout — the
/// transport a parent process supervising the daemon uses.
pub fn serve_stdio(daemon: &mut Daemon<'_>) {
    serve_pair(daemon, vec![(std::io::stdin(), std::io::stdout())]);
}

/// Listens on a Unix socket at `path` and serves every connection until
/// a client requests `shutdown`. The socket file is removed first if it
/// already exists, and removed again on exit.
#[cfg(unix)]
pub fn serve_unix(daemon: &mut Daemon<'_>, path: &std::path::Path) -> std::io::Result<()> {
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::sync::Arc;

    use dynsum_cfl::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<Event<UnixStream>>();
    let registry = daemon.cancel_registry();
    let acceptor = {
        let stop = Arc::clone(&stop);
        let tx = tx.clone();
        thread::spawn(move || {
            let ids = AtomicU64::new(0);
            // Ordering::Acquire — pairs with the event loop's Release
            // store below: once the acceptor observes `stop`, it also
            // observes everything the event loop did before requesting
            // the stop (all answers delivered, writers shut down), so
            // no connection is accepted-then-answered after shutdown.
            // Model-checked: no answer after stop (crates/modelcheck,
            // `server_stop_*`).
            while !stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // Ordering::Relaxed — the RMW's atomicity alone
                        // guarantees unique, monotone client ids; the
                        // counter is thread-local to the acceptor today
                        // and orders nothing else.
                        let id = ids.fetch_add(1, Ordering::Relaxed) + 1;
                        if stream.set_nonblocking(false).is_err() {
                            continue;
                        }
                        let writer = match stream.try_clone() {
                            Ok(w) => w,
                            Err(_) => continue,
                        };
                        if tx.send(Event::Connect(id, writer)).is_err() {
                            return;
                        }
                        let tx = tx.clone();
                        let registry = registry.clone();
                        thread::spawn(move || pump_lines(stream, id, &registry, &tx));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => return,
                }
            }
        })
    };
    drop(tx);
    let writers = event_loop(daemon, &rx, HashMap::new());
    // Unblock any reader still parked on its stream, then stop
    // accepting.
    for (_, stream) in writers {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
    // Ordering::Release — publishes everything the event loop completed
    // (final frames written, streams shut down) to the acceptor's
    // Acquire load above before it can observe the stop request.
    stop.store(true, Ordering::Release);
    let _ = acceptor.join();
    let _ = std::fs::remove_file(path);
    Ok(())
}
