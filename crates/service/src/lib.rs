//! `dynsum-service` — the long-lived analysis daemon.
//!
//! The batch APIs grown in earlier layers answer *one process's* demand
//! queries; this crate turns the analysis into a **service**: a daemon
//! that holds [`Session`](dynsum_core::Session)s alive across many
//! clients, speaking a line-delimited JSON protocol over stdio or a
//! Unix socket. Clients that negotiate the same analysis — same PAG
//! fingerprint, same semantic config digest, same engine — share one
//! session, so summaries computed on behalf of one IDE pane or CI shard
//! warm every other, and a snapshot directory carries that warmth
//! across daemon restarts.
//!
//! The crate is layered so the deterministic core never touches IO:
//!
//! - [`json`] — a hand-rolled JSON tree (the workspace is offline;
//!   there is no serde), with the strictness the wire needs: depth
//!   caps, duplicate-key rejection, exact integers to 2^53.
//! - [`proto`] — frame grammar: requests in, `ok`/`error` frames out,
//!   with a closed error-code taxonomy. Malformed input of any shape
//!   becomes a structured error frame, never a panic and never a
//!   dropped connection.
//! - [`daemon`] — the transport-agnostic state machine: client
//!   registry, shared-session multiplexing, per-client budgets and
//!   deadlines, and a round-robin scheduler that keeps an adversarial
//!   batch from starving interactive clients. Fully deterministic given
//!   a frame sequence, which is what the differential fuzzer leans on.
//! - [`server`] — the IO shell: reader threads feed an event loop;
//!   cancel frames take a fast path through the shared
//!   [`CancelRegistry`] so they interrupt the query that is running
//!   *right now*.
//!
//! A quick session, one frame per line:
//!
//! ```text
//! → {"op":"hello","id":1,"name":"ide","engine":"dynsum"}
//! ← {"id":1,"ok":true,"engine":"dynsum",...,"warm":true,"warm_summaries":41,...}
//! → {"op":"query","id":2,"var":"Main.main#box"}
//! ← {"id":2,"ok":true,"result":{"outcome":"resolved","pts":[[3,0]],...}}
//! → {"op":"shutdown","id":3}
//! ← {"id":3,"ok":true,"shutdown":true}
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod json;
pub mod proto;
pub mod server;

pub use daemon::{
    CancelRegistry, ClientCounters, ClientId, Daemon, ServedWorkload, ServiceConfig, SessionKeyView,
};
pub use json::{Json, JsonError};
pub use proto::{ErrorCode, ProtoError, Request, VarRef, MAX_BATCH_VARS, MAX_FRAME_BYTES};
#[cfg(unix)]
pub use server::serve_unix;
pub use server::{serve_pair, serve_stdio};
