//! The daemon core: client registry, shared-session multiplexing, and
//! the fair round-robin scheduler.
//!
//! [`Daemon`] is a transport-agnostic state machine. Transports feed it
//! raw frame lines ([`Daemon::ingest`]) and crank the scheduler
//! ([`Daemon::step`]); it hands back response frames tagged with the
//! client they belong to. Everything is deterministic given the frame
//! sequence — the wall clock is consulted only when a client actually
//! requests a deadline — which is what lets the differential fuzzer
//! drive the daemon in-process and judge its answers byte-for-byte
//! against a clean single-client [`Session`].
//!
//! # Session multiplexing
//!
//! Clients negotiating the same analysis — same PAG (by
//! [`pag_fingerprint`]), same [`EngineConfig::semantic_digest`], same
//! engine kind — share one [`Session`], so summaries computed for one
//! client warm every other. Sessions are created lazily at `hello` and
//! warm-started from the snapshot directory when one is configured,
//! degrading to a cold start exactly like
//! [`Session::load_snapshot_from_path`] always has. Shared sessions
//! require deterministic reuse accounting (results independent of
//! cache state), so a `hello` that tries to disable it is rejected:
//! sharing must never let one client's traffic change another's
//! answers.
//!
//! # Scheduler fairness
//!
//! Work is queued per client and scheduled round-robin, one query per
//! turn: a client that submits a budget-exhausting 4096-query batch
//! waits its turn between every other client's queries, so cheap
//! interactive queries never starve behind it. Per-client edge
//! allowances bound total work (admission control — exhausted clients
//! get a structured `budget-exhausted` error, never a silently degraded
//! answer), and per-query deadlines bound latency.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dynsum_cfl::sync::{Mutex, MutexGuard, PoisonError};

use dynsum_cfl::{CancelToken, Outcome};
use dynsum_core::{
    pag_fingerprint, BatchControl, EngineConfig, EngineKind, Session, SessionQuery, SnapshotLoad,
};
use dynsum_pag::{MethodId, Pag, VarId};

use crate::json::Json;
use crate::proto::{
    encode_query_result, engine_name, error_frame, ok_frame, parse_request, ErrorCode, ProtoError,
    Request, VarRef,
};

/// A client identifier, unique per daemon lifetime. Transports that
/// manage their own connection ids register them with
/// [`Daemon::connect_as`].
pub type ClientId = u64;

/// Daemon-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Base engine configuration; `hello` frames may override the
    /// negotiable fields ([`crate::proto::CONFIG_KEYS`]).
    /// `deterministic_reuse` is forced on — shared sessions require it.
    pub engine_config: EngineConfig,
    /// Directory snapshots are loaded from at session creation and
    /// written to by `save_snapshot`. `None` disables both.
    pub snapshot_dir: Option<PathBuf>,
    /// Default and maximum per-client edge allowance. A `hello` may
    /// request less; requests for more are capped here.
    pub max_client_budget: u64,
    /// Cap applied to every negotiated or per-request deadline. `None`
    /// leaves deadlines uncapped.
    pub max_deadline_ms: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            engine_config: EngineConfig::default(),
            snapshot_dir: None,
            // Generous but bounded: ~13 million default-budget queries.
            max_client_budget: 1 << 40,
            max_deadline_ms: None,
        }
    }
}

/// One workload the daemon serves, selected by name in `hello`.
#[derive(Debug, Clone, Copy)]
pub struct ServedWorkload<'p> {
    /// Wire name (`"workload"` field of `hello`).
    pub name: &'p str,
    /// The frozen graph.
    pub pag: &'p Pag,
}

/// Shared handle that lets transport reader threads cancel an in-flight
/// request **while the scheduler thread is executing it**: tokens are
/// registered at ingest and observed by the running query at
/// budget-charge granularity, so a `cancel` frame takes effect without
/// waiting for the scheduler to come around to parsing it.
#[derive(Clone, Default)]
pub struct CancelRegistry {
    inner: Arc<Mutex<TokenMap>>,
}

/// In-flight cancel tokens keyed by `(client, request)`.
type TokenMap = HashMap<(ClientId, u64), Arc<CancelToken>>;

impl CancelRegistry {
    /// Cancels `(client, request)` if it is registered. Returns whether
    /// a token was found.
    pub fn cancel(&self, client: ClientId, request: u64) -> bool {
        match self.lock().get(&(client, request)) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    fn lock(&self) -> MutexGuard<'_, TokenMap> {
        // A reader thread that panicked while holding the lock poisons
        // it; the map itself is still consistent (no partial writes).
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    // `insert`/`remove` are hidden-public rather than private so the
    // out-of-workspace model-check harness (crates/modelcheck) can
    // drive the real registration/cancel/unregister protocol under the
    // schedule explorer. They are not part of the supported API.
    #[doc(hidden)]
    pub fn insert(&self, client: ClientId, request: u64, token: Arc<CancelToken>) {
        self.lock().insert((client, request), token);
    }

    #[doc(hidden)]
    pub fn remove(&self, client: ClientId, request: u64) {
        self.lock().remove(&(client, request));
    }
}

impl std::fmt::Debug for CancelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CancelRegistry({} tokens)", self.lock().len())
    }
}

/// Per-client protocol counters, reported by `health`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientCounters {
    /// Queries executed (batch queries count individually).
    pub queries: u64,
    /// Queries that resolved in full.
    pub resolved: u64,
    /// Queries that exhausted their per-query engine budget.
    pub over_budget: u64,
    /// Queries that observed a cancellation.
    pub cancelled: u64,
    /// Queries that tripped their deadline.
    pub deadline_trips: u64,
    /// Queries isolated after a panic.
    pub panicked: u64,
    /// Whole requests rejected before running (allowance exhausted,
    /// unknown vars, duplicate ids).
    pub rejected: u64,
    /// Malformed frames answered with an error.
    pub errors: u64,
    /// Edges charged against the client allowance.
    pub edges_spent: u64,
}

/// One queued query evaluation.
#[derive(Debug)]
struct Unit {
    request: u64,
    index: usize,
    var: VarId,
    deadline_ms: Option<u64>,
}

/// Book-keeping for one in-flight `query`/`batch` request.
#[derive(Debug)]
struct Flight {
    token: Arc<CancelToken>,
    done: Vec<Option<Json>>,
    completed: usize,
    batch: bool,
}

#[derive(Debug)]
struct ClientState {
    name: String,
    session: Option<usize>,
    budget_left: u64,
    default_deadline_ms: Option<u64>,
    queue: VecDeque<Unit>,
    inflight: HashMap<u64, Flight>,
    counters: ClientCounters,
    in_ready: bool,
}

impl ClientState {
    fn new() -> Self {
        ClientState {
            name: String::new(),
            session: None,
            budget_left: 0,
            default_deadline_ms: None,
            queue: VecDeque::new(),
            inflight: HashMap::new(),
            counters: ClientCounters::default(),
            in_ready: false,
        }
    }
}

struct SessionEntry<'p> {
    key: SessionKeyView,
    workload: usize,
    session: Session<'p>,
    warm_summaries: usize,
    clients: usize,
}

/// The daemon state machine. See the [module docs](self) for the
/// scheduling and multiplexing model.
pub struct Daemon<'p> {
    workloads: Vec<ServedWorkload<'p>>,
    config: ServiceConfig,
    sessions: Vec<SessionEntry<'p>>,
    clients: HashMap<ClientId, ClientState>,
    ready: VecDeque<ClientId>,
    registry: CancelRegistry,
    shutdown: bool,
    next_client: ClientId,
}

impl<'p> Daemon<'p> {
    /// Builds a daemon serving `workloads` (the first is the default
    /// for `hello` frames that name none).
    pub fn new(workloads: Vec<ServedWorkload<'p>>, mut config: ServiceConfig) -> Self {
        // Shared sessions require cache-independent results; the
        // protocol additionally rejects any hello trying to turn this
        // off.
        config.engine_config.deterministic_reuse = true;
        Daemon {
            workloads,
            config,
            sessions: Vec::new(),
            clients: HashMap::new(),
            ready: VecDeque::new(),
            registry: CancelRegistry::default(),
            shutdown: false,
            next_client: 0,
        }
    }

    /// The shared cancel registry for transport reader threads.
    pub fn cancel_registry(&self) -> CancelRegistry {
        self.registry.clone()
    }

    /// Registers a new client and returns its id.
    pub fn connect(&mut self) -> ClientId {
        self.next_client += 1;
        let id = self.next_client;
        self.clients.insert(id, ClientState::new());
        id
    }

    /// Registers a client under a transport-chosen id (transports that
    /// allocate connection ids themselves). No-op if taken.
    pub fn connect_as(&mut self, id: ClientId) {
        self.next_client = self.next_client.max(id);
        self.clients.entry(id).or_insert_with(ClientState::new);
    }

    /// Deregisters a client: queued work is dropped, in-flight cancel
    /// tokens are released, and its session share is returned.
    pub fn disconnect(&mut self, id: ClientId) {
        if let Some(client) = self.clients.remove(&id) {
            for request in client.inflight.keys() {
                self.registry.remove(id, *request);
            }
            if let Some(si) = client.session {
                self.sessions[si].clients = self.sessions[si].clients.saturating_sub(1);
            }
        }
        // Stale `ready` entries for this id are skipped by `step`.
    }

    /// `true` once a `shutdown` frame was accepted.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// `true` while any client has queued work.
    pub fn has_work(&self) -> bool {
        self.clients.values().any(|c| !c.queue.is_empty())
    }

    /// Number of connected clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Number of materialized shared sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Feeds one raw frame line from `client`, returning any response
    /// frames that are ready immediately (errors, acks; query answers
    /// arrive via [`step`](Self::step)). Malformed input of any shape
    /// is answered with a structured error frame — never a panic, never
    /// a dropped connection.
    pub fn ingest(&mut self, client: ClientId, line: &str) -> Vec<String> {
        if !self.clients.contains_key(&client) {
            // A frame from a connection the transport already tore
            // down; nothing to answer.
            return Vec::new();
        }
        let request = match parse_request(line) {
            Ok(r) => r,
            Err((id, e)) => {
                self.client_mut(client).counters.errors += 1;
                return vec![error_frame(id, &e)];
            }
        };
        let id = request.id();
        if self.shutdown && !matches!(request, Request::Shutdown { .. }) {
            return vec![error_frame(
                Some(id),
                &ProtoError::new(ErrorCode::ShuttingDown, "daemon is shutting down"),
            )];
        }
        let outcome = match request {
            Request::Hello {
                id,
                name,
                workload,
                engine,
                config,
                budget,
                deadline_ms,
            } => self.op_hello(
                client,
                id,
                name,
                workload,
                engine,
                &config,
                budget,
                deadline_ms,
            ),
            Request::Query {
                id,
                var,
                deadline_ms,
            } => self.op_enqueue(client, id, vec![var], deadline_ms, false),
            Request::Batch {
                id,
                vars,
                deadline_ms,
            } => self.op_enqueue(client, id, vars, deadline_ms, true),
            Request::Cancel { id, target } => self.op_cancel(client, id, target),
            Request::InvalidateMethod { id, method } => self.op_invalidate(client, id, method),
            Request::Health { id } => self.op_health(client, id),
            Request::SaveSnapshot { id } => self.op_save_snapshot(client, id),
            Request::Shutdown { id } => {
                self.shutdown = true;
                Ok(vec![ok_frame(
                    id,
                    vec![("shutdown".to_owned(), Json::Bool(true))],
                )])
            }
        };
        match outcome {
            Ok(frames) => frames,
            Err(e) => {
                let c = self.client_mut(client);
                c.counters.errors += 1;
                vec![error_frame(Some(id), &e)]
            }
        }
    }

    /// Runs one scheduler turn — at most one query of one client — and
    /// returns any response frames it completed. Returns an empty list
    /// when there is no work, or when the turn finished a batch query
    /// whose siblings are still pending.
    pub fn step(&mut self) -> Vec<(ClientId, String)> {
        let cid = loop {
            let cid = match self.ready.pop_front() {
                Some(c) => c,
                None => return Vec::new(),
            };
            match self.clients.get_mut(&cid) {
                Some(client) if !client.queue.is_empty() => break cid,
                Some(client) => client.in_ready = false,
                None => {} // disconnected since it was queued
            }
        };
        // Pull everything the execution needs out of the client entry,
        // then release the borrow so the session can be borrowed.
        let (unit, token, si) = {
            let client = self.clients.get_mut(&cid).expect("client checked above");
            let unit = client.queue.pop_front().expect("queue checked above");
            let token = client
                .inflight
                .get(&unit.request)
                .map(|f| Arc::clone(&f.token))
                .expect("flight registered at ingest");
            let si = client.session.expect("units only enqueued post-hello");
            (unit, token, si)
        };
        let deadline = unit
            .deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let control = BatchControl {
            cancel: Some(token),
            deadline,
            ..BatchControl::default()
        };
        let query = [SessionQuery::new(unit.var)];
        let result = self.sessions[si]
            .session
            .run_batch_with(&query, 1, &control)
            .pop()
            .expect("one result per query");
        let encoded = encode_query_result(&result);
        let mut frames = Vec::new();
        let client = self.clients.get_mut(&cid).expect("client checked above");
        client.budget_left = client
            .budget_left
            .saturating_sub(result.stats.edges_traversed);
        client.counters.queries += 1;
        client.counters.edges_spent += result.stats.edges_traversed;
        match result.outcome {
            Outcome::Resolved => client.counters.resolved += 1,
            Outcome::OverBudget => client.counters.over_budget += 1,
            Outcome::Cancelled => client.counters.cancelled += 1,
            Outcome::DeadlineExceeded => client.counters.deadline_trips += 1,
            Outcome::Panicked => client.counters.panicked += 1,
        }
        let flight = client
            .inflight
            .get_mut(&unit.request)
            .expect("flight registered at ingest");
        flight.done[unit.index] = Some(encoded);
        flight.completed += 1;
        if flight.completed == flight.done.len() {
            let flight = client
                .inflight
                .remove(&unit.request)
                .expect("present just above");
            self.registry.remove(cid, unit.request);
            let results: Vec<Json> = flight
                .done
                .into_iter()
                .map(|r| r.expect("all results recorded"))
                .collect();
            let frame = if flight.batch {
                ok_frame(
                    unit.request,
                    vec![("results".to_owned(), Json::Arr(results))],
                )
            } else {
                let mut results = results;
                ok_frame(
                    unit.request,
                    vec![(
                        "result".to_owned(),
                        results.pop().expect("single-query flight"),
                    )],
                )
            };
            frames.push((cid, frame));
        }
        if client.queue.is_empty() {
            client.in_ready = false;
        } else {
            self.ready.push_back(cid);
        }
        frames
    }

    /// Cranks [`step`](Self::step) until no work remains, collecting
    /// every completed frame — the single-threaded convenience used by
    /// tests and the fuzzer.
    pub fn drain(&mut self) -> Vec<(ClientId, String)> {
        let mut out = Vec::new();
        while self.has_work() {
            out.extend(self.step());
        }
        out
    }

    fn client_mut(&mut self, id: ClientId) -> &mut ClientState {
        self.clients.get_mut(&id).expect("caller checked presence")
    }

    #[allow(clippy::too_many_arguments)]
    fn op_hello(
        &mut self,
        client: ClientId,
        id: u64,
        name: String,
        workload: Option<String>,
        engine: EngineKind,
        overrides: &[(String, Json)],
        budget: Option<u64>,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<String>, ProtoError> {
        if self.client_mut(client).session.is_some() {
            return Err(ProtoError::new(
                ErrorCode::BadFrame,
                "session already negotiated on this connection",
            ));
        }
        let wi = match &workload {
            None if self.workloads.is_empty() => {
                return Err(ProtoError::new(
                    ErrorCode::UnknownWorkload,
                    "daemon serves no workloads",
                ))
            }
            None => 0,
            Some(name) => self
                .workloads
                .iter()
                .position(|w| w.name == name)
                .ok_or_else(|| {
                    ProtoError::new(
                        ErrorCode::UnknownWorkload,
                        format!("unknown workload `{name}`"),
                    )
                })?,
        };
        let config = apply_overrides(self.config.engine_config, overrides)?;
        let si = self.session_for(wi, engine, config)?;
        let entry = &mut self.sessions[si];
        entry.clients += 1;
        let allowance = budget
            .unwrap_or(self.config.max_client_budget)
            .min(self.config.max_client_budget);
        let deadline_default = cap_deadline(deadline_ms, self.config.max_deadline_ms);
        let shared = entry.clients;
        let warm = entry.warm_summaries;
        let key = entry.key;
        let c = self.client_mut(client);
        c.name = name;
        c.session = Some(si);
        c.budget_left = allowance;
        c.default_deadline_ms = deadline_default;
        Ok(vec![ok_frame(
            id,
            vec![
                ("engine".to_owned(), Json::str(engine_name(engine))),
                ("workload".to_owned(), Json::str(self.workloads[wi].name)),
                (
                    "pag_fingerprint".to_owned(),
                    Json::str(format!("{:016x}", key.fingerprint)),
                ),
                (
                    "semantic_digest".to_owned(),
                    Json::str(format!("{:016x}", key.digest)),
                ),
                ("warm".to_owned(), Json::Bool(warm > 0)),
                ("warm_summaries".to_owned(), Json::num(warm as u64)),
                ("shared_clients".to_owned(), Json::num(shared as u64)),
                ("budget".to_owned(), Json::num(allowance)),
            ],
        )])
    }

    /// Finds or creates the shared session for `(workload, engine,
    /// config)`, warm-starting from the snapshot directory when
    /// configured.
    fn session_for(
        &mut self,
        wi: usize,
        kind: EngineKind,
        config: EngineConfig,
    ) -> Result<usize, ProtoError> {
        let pag = self.workloads[wi].pag;
        let key = SessionKeyView {
            fingerprint: pag_fingerprint(pag),
            digest: config.semantic_digest(),
            kind,
        };
        if let Some(i) = self
            .sessions
            .iter()
            .position(|e| e.key == key && e.workload == wi)
        {
            return Ok(i);
        }
        let (session, warm_summaries) = match &self.config.snapshot_dir {
            Some(dir) => {
                let path = dir.join(snapshot_file_name(&key));
                let (session, load) = Session::load_snapshot_from_path(&path, pag, kind, config);
                let warm = match load {
                    SnapshotLoad::Warm { summaries, .. } => summaries,
                    SnapshotLoad::Cold(_) => 0,
                };
                (session, warm)
            }
            None => (Session::with_config(pag, kind, config), 0),
        };
        self.sessions.push(SessionEntry {
            key,
            workload: wi,
            session,
            warm_summaries,
            clients: 0,
        });
        Ok(self.sessions.len() - 1)
    }

    fn op_enqueue(
        &mut self,
        client: ClientId,
        id: u64,
        vars: Vec<VarRef>,
        deadline_ms: Option<u64>,
        batch: bool,
    ) -> Result<Vec<String>, ProtoError> {
        let (si, default_deadline, budget_left, duplicate) = {
            let c = self.client_mut(client);
            (
                c.session,
                c.default_deadline_ms,
                c.budget_left,
                c.inflight.contains_key(&id),
            )
        };
        let si = si
            .ok_or_else(|| ProtoError::new(ErrorCode::NeedHello, "send `hello` before querying"))?;
        let reject = |this: &mut Self, e: ProtoError| -> Result<Vec<String>, ProtoError> {
            this.client_mut(client).counters.rejected += 1;
            Err(e)
        };
        if duplicate {
            return reject(
                self,
                ProtoError::new(
                    ErrorCode::DuplicateId,
                    format!("request id {id} is still in flight"),
                ),
            );
        }
        if budget_left == 0 {
            return reject(
                self,
                ProtoError::new(ErrorCode::BudgetExhausted, "client edge allowance is spent"),
            );
        }
        let pag = self.workloads[self.sessions[si].workload].pag;
        let mut resolved = Vec::with_capacity(vars.len());
        for var in &vars {
            match var {
                VarRef::Raw(raw) => {
                    if (*raw as usize) >= pag.num_vars() {
                        return reject(
                            self,
                            ProtoError::new(
                                ErrorCode::UnknownVar,
                                format!("no variable with raw id {raw}"),
                            ),
                        );
                    }
                    resolved.push(VarId::from_raw(*raw));
                }
                VarRef::Named(name) => match pag.find_var(name) {
                    Some(v) => resolved.push(v),
                    None => {
                        return reject(
                            self,
                            ProtoError::new(
                                ErrorCode::UnknownVar,
                                format!("no variable named `{name}`"),
                            ),
                        )
                    }
                },
            }
        }
        let deadline = cap_deadline(deadline_ms, self.config.max_deadline_ms).or(default_deadline);
        let token = Arc::new(CancelToken::new());
        self.registry.insert(client, id, Arc::clone(&token));
        let c = self.client_mut(client);
        c.inflight.insert(
            id,
            Flight {
                token,
                done: resolved.iter().map(|_| None).collect(),
                completed: 0,
                batch,
            },
        );
        for (index, var) in resolved.into_iter().enumerate() {
            c.queue.push_back(Unit {
                request: id,
                index,
                var,
                deadline_ms: deadline,
            });
        }
        if !c.in_ready {
            c.in_ready = true;
            self.ready.push_back(client);
        }
        Ok(Vec::new())
    }

    fn op_cancel(
        &mut self,
        client: ClientId,
        id: u64,
        target: u64,
    ) -> Result<Vec<String>, ProtoError> {
        let c = self.client_mut(client);
        let active = match c.inflight.get(&target) {
            Some(flight) => {
                flight.token.cancel();
                true
            }
            None => false,
        };
        Ok(vec![ok_frame(
            id,
            vec![("active".to_owned(), Json::Bool(active))],
        )])
    }

    fn op_invalidate(
        &mut self,
        client: ClientId,
        id: u64,
        method: u32,
    ) -> Result<Vec<String>, ProtoError> {
        let si = self.client_mut(client).session.ok_or_else(|| {
            ProtoError::new(ErrorCode::NeedHello, "send `hello` before invalidating")
        })?;
        let pag = self.workloads[self.sessions[si].workload].pag;
        if (method as usize) >= pag.num_methods() {
            return Err(ProtoError::new(
                ErrorCode::UnknownMethod,
                format!("no method with raw id {method}"),
            ));
        }
        let evicted = self.sessions[si]
            .session
            .invalidate_method(MethodId::from_raw(method));
        Ok(vec![ok_frame(
            id,
            vec![("evicted".to_owned(), Json::num(evicted as u64))],
        )])
    }

    fn op_health(&mut self, client: ClientId, id: u64) -> Result<Vec<String>, ProtoError> {
        let daemon = Json::Obj(vec![
            ("clients".to_owned(), Json::num(self.clients.len() as u64)),
            ("sessions".to_owned(), Json::num(self.sessions.len() as u64)),
            ("shutdown".to_owned(), Json::Bool(self.shutdown)),
        ]);
        let c = self.clients.get(&client).expect("caller checked presence");
        let n = c.counters;
        let client_obj = Json::Obj(vec![
            ("name".to_owned(), Json::str(&*c.name)),
            ("queries".to_owned(), Json::num(n.queries)),
            ("resolved".to_owned(), Json::num(n.resolved)),
            ("over_budget".to_owned(), Json::num(n.over_budget)),
            ("cancelled".to_owned(), Json::num(n.cancelled)),
            ("deadline_trips".to_owned(), Json::num(n.deadline_trips)),
            ("panicked".to_owned(), Json::num(n.panicked)),
            ("rejected".to_owned(), Json::num(n.rejected)),
            ("errors".to_owned(), Json::num(n.errors)),
            ("edges_spent".to_owned(), Json::num(n.edges_spent)),
            ("budget_left".to_owned(), Json::num(c.budget_left)),
            ("queued".to_owned(), Json::num(c.queue.len() as u64)),
        ]);
        let session_obj = match c.session {
            None => Json::Null,
            Some(si) => {
                let entry = &self.sessions[si];
                let h = entry.session.health();
                Json::Obj(vec![
                    ("engine".to_owned(), Json::str(engine_name(entry.key.kind))),
                    ("shared_clients".to_owned(), Json::num(entry.clients as u64)),
                    (
                        "warm_summaries".to_owned(),
                        Json::num(entry.warm_summaries as u64),
                    ),
                    ("spawn_failures".to_owned(), Json::num(h.spawn_failures)),
                    ("stale_rejections".to_owned(), Json::num(h.stale_rejections)),
                    ("evictions".to_owned(), Json::num(h.evictions)),
                    ("cancellations".to_owned(), Json::num(h.cancellations)),
                    ("deadline_trips".to_owned(), Json::num(h.deadline_trips)),
                    ("query_panics".to_owned(), Json::num(h.query_panics)),
                ])
            }
        };
        Ok(vec![ok_frame(
            id,
            vec![
                ("daemon".to_owned(), daemon),
                ("client".to_owned(), client_obj),
                ("session".to_owned(), session_obj),
            ],
        )])
    }

    fn op_save_snapshot(&mut self, client: ClientId, id: u64) -> Result<Vec<String>, ProtoError> {
        let si = self
            .client_mut(client)
            .session
            .ok_or_else(|| ProtoError::new(ErrorCode::NeedHello, "send `hello` before saving"))?;
        let dir = self.config.snapshot_dir.clone().ok_or_else(|| {
            ProtoError::new(ErrorCode::SnapshotIo, "no snapshot directory configured")
        })?;
        let entry = &self.sessions[si];
        let path = dir.join(snapshot_file_name(&entry.key));
        entry.session.save_snapshot_to_path(&path).map_err(|e| {
            ProtoError::new(ErrorCode::SnapshotIo, format!("snapshot write failed: {e}"))
        })?;
        Ok(vec![ok_frame(
            id,
            vec![(
                "path".to_owned(),
                Json::str(path.to_string_lossy().into_owned()),
            )],
        )])
    }
}

impl std::fmt::Debug for Daemon<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("workloads", &self.workloads.len())
            .field("clients", &self.clients.len())
            .field("sessions", &self.sessions.len())
            .field("shutdown", &self.shutdown)
            .finish_non_exhaustive()
    }
}

/// The snapshot file a session key maps to inside the snapshot
/// directory.
pub fn snapshot_file_name(key: &SessionKeyView) -> String {
    format!(
        "dynsum-{}-{:016x}-{:016x}.snap",
        engine_name(key.kind),
        key.fingerprint,
        key.digest
    )
}

/// Public view of a session key (used to derive snapshot file names in
/// the serve bin, e.g. to pre-warm a directory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionKeyView {
    /// [`pag_fingerprint`] of the workload.
    pub fingerprint: u64,
    /// [`EngineConfig::semantic_digest`].
    pub digest: u64,
    /// Engine kind.
    pub kind: EngineKind,
}

fn cap_deadline(requested: Option<u64>, cap: Option<u64>) -> Option<u64> {
    match (requested, cap) {
        (Some(r), Some(c)) => Some(r.min(c)),
        (Some(r), None) => Some(r),
        (None, _) => None,
    }
}

fn apply_overrides(
    mut config: EngineConfig,
    overrides: &[(String, Json)],
) -> Result<EngineConfig, ProtoError> {
    let bad = |key: &str, want: &str| {
        ProtoError::new(
            ErrorCode::BadConfig,
            format!("config key `{key}` must be {want}"),
        )
    };
    for (key, value) in overrides {
        match key.as_str() {
            "budget" => {
                config.budget = value.as_u64().ok_or_else(|| bad(key, "an integer"))?;
            }
            "max_field_depth" => {
                config.max_field_depth =
                    value.as_u64().ok_or_else(|| bad(key, "an integer"))? as usize;
            }
            "max_ctx_depth" => {
                config.max_ctx_depth =
                    value.as_u64().ok_or_else(|| bad(key, "an integer"))? as usize;
            }
            "max_refinements" => {
                let n = value.as_u64().ok_or_else(|| bad(key, "an integer"))?;
                config.max_refinements = u32::try_from(n).map_err(|_| bad(key, "a u32 integer"))?;
            }
            "max_cached_summaries" => {
                config.max_cached_summaries = match value {
                    Json::Null => None,
                    v => Some(v.as_u64().ok_or_else(|| bad(key, "an integer or null"))? as usize),
                };
            }
            "context_sensitive" => {
                config.context_sensitive = value.as_bool().ok_or_else(|| bad(key, "a boolean"))?;
            }
            "cache_summaries" => {
                config.cache_summaries = value.as_bool().ok_or_else(|| bad(key, "a boolean"))?;
            }
            // parse_request already filtered unknown keys; keep the
            // error anyway so the two layers cannot drift apart.
            other => {
                return Err(ProtoError::new(
                    ErrorCode::BadConfig,
                    format!("unknown config key `{other}`"),
                ))
            }
        }
    }
    Ok(config)
}
