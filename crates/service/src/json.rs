//! A hand-rolled JSON value, parser and encoder.
//!
//! The workspace is offline (no serde); this module hand-rolls the wire
//! format the way `dynsum_core::snapshot` hand-rolls its binary format.
//! The dialect is deliberately small but standard: `null`, booleans,
//! numbers (stored as `f64` — integers round-trip exactly up to 2^53,
//! far beyond any counter the protocol carries), strings with the
//! standard escapes (`\uXXXX` included, surrogate pairs handled),
//! arrays, and objects (key order preserved, duplicate keys rejected).
//!
//! Robustness is the point: the parser is bounded (depth cap, input
//! length checked by the caller), never panics on any input, and
//! reports typed errors with byte offsets so the daemon can answer
//! malformed frames with a structured error instead of dying.

use std::fmt;

/// Maximum nesting depth the parser accepts. Protocol frames are at
/// most three levels deep; 32 leaves headroom without letting an
/// adversarial `[[[[…` recurse the stack away.
pub const MAX_JSON_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Integers are exact up to 2^53.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, keys unique.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from an unsigned counter.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as a non-negative integer, if this is a number that
    /// is one (rejects fractions, negatives, and anything above 2^53
    /// where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= MAX_EXACT_INT => Some(*n as u64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => render_num(*n, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Largest integer magnitude `f64` represents exactly (2^53).
const MAX_EXACT_INT: f64 = 9_007_199_254_740_992.0;

fn render_num(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if n.fract() == 0.0 && n.abs() <= MAX_EXACT_INT {
        let _ = write!(out, "{}", n as i64);
    } else if n.is_finite() {
        let _ = write!(out, "{n}");
    } else {
        // JSON has no NaN/Inf; the encoder never receives them from the
        // protocol, but degrade to null rather than emit garbage.
        out.push_str("null");
    }
}

fn render_str(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it went wrong
/// at. Never panics, never recurses unboundedly — every malformed input
/// maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value from `input`, requiring it to span the whole
/// string (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_JSON_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
        if !n.is_finite() {
            return Err(self.error("number out of range"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // A leading surrogate must pair with a
                            // trailing one.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.error("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.error("unpaired surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.error("unpaired surrogate"));
                        } else {
                            hi
                        };
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return Err(self.error("invalid escape")),
                        }
                    }
                    _ => return Err(self.error("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.error("control character in string")),
                Some(b) => {
                    // Re-decode multi-byte UTF-8 from the source slice
                    // (input is a &str, so it is valid by construction).
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(b);
                        let end = start + len;
                        let s = std::str::from_utf8(&self.bytes[start..end.min(self.bytes.len())])
                            .map_err(|_| self.error("invalid utf-8"))?;
                        out.push_str(s);
                        self.pos = start + len;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.error("truncated escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected `,` or `]`"));
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.error("duplicate object key"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected `,` or `}`"));
                }
            }
        }
    }
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(text: &str) -> String {
        parse(text).unwrap().render()
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(round_trip("null"), "null");
        assert_eq!(round_trip("true"), "true");
        assert_eq!(round_trip("false"), "false");
        assert_eq!(round_trip("42"), "42");
        assert_eq!(round_trip("-7"), "-7");
        assert_eq!(round_trip("2.5"), "2.5");
        assert_eq!(round_trip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn containers_round_trip() {
        assert_eq!(round_trip("[1, 2, [3]]"), "[1,2,[3]]");
        assert_eq!(
            round_trip("{\"a\": 1, \"b\": {\"c\": []}}"),
            "{\"a\":1,\"b\":{\"c\":[]}}"
        );
    }

    #[test]
    fn escapes_round_trip() {
        let v = parse("\"a\\n\\t\\\"\\\\b\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "a\n\t\"\\bé😀");
        // Re-render + re-parse is a fixed point.
        let again = parse(&v.render()).unwrap();
        assert_eq!(again, v);
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"héllo — 世界\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "héllo — 世界");
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn accessors_work() {
        let v = parse("{\"op\":\"query\",\"id\":3,\"deep\":[true]}").unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("query"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(
            v.get("deep").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "\"unterminated",
            "tru",
            "01x",
            "nul",
            "{\"a\":1,\"a\":2}",
            "[1] trailing",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"), "{err}");
    }

    #[test]
    fn big_counters_render_as_integers() {
        assert_eq!(Json::num(1_000_000_000_000).render(), "1000000000000");
        assert_eq!(
            parse("1000000000000").unwrap().as_u64(),
            Some(1_000_000_000_000)
        );
    }
}
