//! Cross-engine equivalence and oracle soundness on random PAGs.
//!
//! The paper's central precision claim is that DYNSUM loses nothing:
//! *"DYNSUM can deliver the same precision as REFINEPTS"* (§4.4), and all
//! context-sensitive demand engines compute `L_FT ∩ R_RP` reachability.
//! These properties are checked here on randomly generated, structurally
//! valid PAGs:
//!
//! 1. DYNSUM == NOREFINE == REFINEPTS == STASUM (object sets, whenever
//!    every engine resolves within budget);
//! 2. DYNSUM with the summary cache == DYNSUM without it (reuse is
//!    precision-free);
//! 3. every context-sensitive answer ⊆ the Andersen whole-program
//!    solution (context sensitivity only removes objects);
//! 4. the context-insensitive demand engine == Andersen exactly
//!    (`L_FT` reachability ≡ inclusion-based points-to).

use std::collections::BTreeSet;

use dynsum_andersen::Andersen;
use dynsum_core::{DemandPointsTo, DynSum, EngineConfig, NoRefine, RefinePts, StaSum};
use dynsum_pag::{ObjId, Pag, PagBuilder, VarId};
use proptest::prelude::*;

/// A generable program shape. All indices are taken modulo the respective
/// arena sizes, so any instance is constructible.
#[derive(Debug, Clone)]
struct Spec {
    methods: usize,
    locals_per: usize,
    globals: usize,
    fields: usize,
    objs: Vec<(usize, usize)>,
    assigns: Vec<(usize, usize, usize)>,
    loads: Vec<(usize, usize, usize, usize)>,
    stores: Vec<(usize, usize, usize, usize)>,
    gassigns: Vec<(bool, usize, usize, usize)>,
    calls: Vec<(usize, usize, usize, usize, usize, usize)>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    let idx = 0usize..32;
    (
        (1usize..=3, 2usize..=4, 0usize..=2, 1usize..=2),
        proptest::collection::vec((idx.clone(), idx.clone()), 1..6),
        proptest::collection::vec((idx.clone(), idx.clone(), idx.clone()), 0..6),
        proptest::collection::vec((idx.clone(), idx.clone(), idx.clone(), idx.clone()), 0..4),
        proptest::collection::vec((idx.clone(), idx.clone(), idx.clone(), idx.clone()), 0..4),
        proptest::collection::vec((any::<bool>(), idx.clone(), idx.clone(), idx.clone()), 0..3),
        proptest::collection::vec(
            (
                idx.clone(),
                idx.clone(),
                idx.clone(),
                idx.clone(),
                idx.clone(),
                idx,
            ),
            0..4,
        ),
    )
        .prop_map(
            |(
                (methods, locals_per, globals, fields),
                objs,
                assigns,
                loads,
                stores,
                gassigns,
                calls,
            )| {
                Spec {
                    methods,
                    locals_per,
                    globals,
                    fields,
                    objs,
                    assigns,
                    loads,
                    stores,
                    gassigns,
                    calls,
                }
            },
        )
}

/// Materializes a spec into a valid PAG plus the query set (all locals of
/// method 0 and all globals).
fn build(spec: &Spec) -> (Pag, Vec<VarId>) {
    let mut b = PagBuilder::new();
    let mut methods = Vec::new();
    let mut locals: Vec<Vec<VarId>> = Vec::new();
    for m in 0..spec.methods {
        let mid = b.add_method(&format!("m{m}"), None).unwrap();
        methods.push(mid);
        let mut ls = Vec::new();
        for l in 0..spec.locals_per {
            ls.push(b.add_local(&format!("v_{m}_{l}"), mid, None).unwrap());
        }
        locals.push(ls);
    }
    let mut globals = Vec::new();
    for g in 0..spec.globals {
        globals.push(b.add_global(&format!("g{g}"), None).unwrap());
    }
    let mut fields = Vec::new();
    for f in 0..spec.fields {
        fields.push(b.field(&format!("f{f}")));
    }

    for (i, &(m, l)) in spec.objs.iter().enumerate() {
        let m = m % spec.methods;
        let l = l % spec.locals_per;
        let o = b.add_obj(&format!("o{i}"), None, Some(methods[m])).unwrap();
        b.add_new(o, locals[m][l]).unwrap();
    }
    for &(m, s, d) in &spec.assigns {
        let m = m % spec.methods;
        let (s, d) = (s % spec.locals_per, d % spec.locals_per);
        if s != d {
            b.add_assign(locals[m][s], locals[m][d]).unwrap();
        }
    }
    for &(m, f, base, dst) in &spec.loads {
        let m = m % spec.methods;
        b.add_load(
            fields[f % spec.fields],
            locals[m][base % spec.locals_per],
            locals[m][dst % spec.locals_per],
        )
        .unwrap();
    }
    for &(m, f, src, base) in &spec.stores {
        let m = m % spec.methods;
        b.add_store(
            fields[f % spec.fields],
            locals[m][src % spec.locals_per],
            locals[m][base % spec.locals_per],
        )
        .unwrap();
    }
    for &(to_global, m, l, g) in &spec.gassigns {
        if spec.globals == 0 {
            continue;
        }
        let m = m % spec.methods;
        let l = locals[m][l % spec.locals_per];
        let g = globals[g % spec.globals];
        if to_global {
            b.add_assign(l, g).unwrap();
        } else {
            b.add_assign(g, l).unwrap();
        }
    }
    for (i, &(caller, callee, actual, formal, ret, dst)) in spec.calls.iter().enumerate() {
        let caller = caller % spec.methods;
        let callee = callee % spec.methods;
        let site = b.add_call_site(&format!("cs{i}"), methods[caller]).unwrap();
        if caller == callee {
            // Self-call: a call-graph cycle, traversed context-free.
            b.set_recursive(site, true).unwrap();
        }
        b.add_entry(
            site,
            locals[caller][actual % spec.locals_per],
            locals[callee][formal % spec.locals_per],
        )
        .unwrap();
        b.add_exit(
            site,
            locals[callee][ret % spec.locals_per],
            locals[caller][dst % spec.locals_per],
        )
        .unwrap();
    }

    let mut queries: Vec<VarId> = locals[0].clone();
    queries.extend(globals.iter().copied());
    (b.finish(), queries)
}

fn test_config() -> EngineConfig {
    EngineConfig {
        budget: 200_000,
        max_field_depth: 8,
        max_ctx_depth: 32,
        ..EngineConfig::default()
    }
}

fn objset(r: &dynsum_cfl::QueryResult) -> BTreeSet<ObjId> {
    r.pts.objects()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engines_agree_and_respect_oracle(spec in spec_strategy()) {
        let (pag, queries) = build(&spec);
        prop_assert!(dynsum_pag::validate(&pag).is_empty());

        let oracle = Andersen::analyze(&pag);
        let config = test_config();
        let mut dynsum = DynSum::with_config(&pag, config);
        let mut dynsum_nocache = DynSum::with_config(
            &pag,
            EngineConfig { cache_summaries: false, ..config },
        );
        let mut norefine = NoRefine::with_config(&pag, config);
        let mut refinepts = RefinePts::with_config(&pag, config);
        let mut stasum = StaSum::precompute_with(&pag, config, Default::default());
        let mut ci = NoRefine::with_config(
            &pag,
            EngineConfig { context_sensitive: false, ..config },
        );

        for &v in &queries {
            let rd = dynsum.points_to(v);
            let rdn = dynsum_nocache.points_to(v);
            let rn = norefine.points_to(v);
            let rr = refinepts.points_to(v);
            let rs = stasum.points_to(v);
            let rc = ci.points_to(v);

            // (1) + (2): full cross-engine agreement when all resolve.
            if rd.resolved && rdn.resolved && rn.resolved && rr.resolved && rs.resolved {
                let d = objset(&rd);
                prop_assert_eq!(&d, &objset(&rdn), "cache changed precision for {:?}", v);
                prop_assert_eq!(&d, &objset(&rn), "DYNSUM != NOREFINE for {:?}", v);
                prop_assert_eq!(&d, &objset(&rr), "DYNSUM != REFINEPTS for {:?}", v);
                prop_assert_eq!(&d, &objset(&rs), "DYNSUM != STASUM for {:?}", v);
            }

            // (3): context-sensitive answers never exceed the oracle.
            let oracle_set: BTreeSet<ObjId> = oracle.var_pts(v).iter().copied().collect();
            if rd.resolved {
                prop_assert!(
                    objset(&rd).is_subset(&oracle_set),
                    "DYNSUM exceeded the Andersen oracle for {:?}", v
                );
            }

            // (4): context-insensitive demand == Andersen, exactly.
            if rc.resolved {
                prop_assert_eq!(
                    objset(&rc), oracle_set,
                    "context-insensitive demand != Andersen for {:?}", v
                );
            }
        }
    }

    #[test]
    fn summary_reuse_only_reduces_work(spec in spec_strategy()) {
        let (pag, queries) = build(&spec);
        let config = test_config();
        let mut warm = DynSum::with_config(&pag, config);
        // Warm the cache with one pass.
        for &v in &queries {
            warm.points_to(v);
        }
        // A second pass must never traverse more edges per query than a
        // cold engine does.
        for &v in &queries {
            let mut cold = DynSum::with_config(&pag, config);
            let cold_r = cold.points_to(v);
            let warm_r = warm.points_to(v);
            prop_assert!(
                warm_r.stats.edges_traversed <= cold_r.stats.edges_traversed,
                "warm cache must not do more edge work (var {:?})", v
            );
        }
    }
}
