//! Budget exhaustion: a deliberately deep random PAG that NOREFINE
//! cannot finish within the paper's default 75,000-edge budget (§5.2).
//! The query must come back `resolved == false` — a conservative,
//! partial answer — without panicking, and the engine must stay usable
//! for subsequent queries.

use dynsum_cfl::Budget;
use dynsum_core::{DemandPointsTo, EngineConfig, NoRefine};
use dynsum_pag::{Pag, PagBuilder, VarId};

/// Deterministic mixer for the pseudo-random edge wiring (the PAG is
/// "random" in shape but identical across runs).
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.rotate_left(31);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 27)
}

/// Builds a layered assign DAG: `width` locals per layer, every local
/// fed by `preds` pseudo-random locals of the previous layer, with
/// allocations only at layer 0. Backward reachability from the top
/// layer therefore has to traverse on the order of
/// `layers × width × preds` edges before it can resolve.
fn deep_random_pag(layers: usize, width: usize, preds: usize, seed: u64) -> (Pag, VarId) {
    let mut b = PagBuilder::new();
    let m = b.add_method("deep", None).unwrap();
    let mut prev: Vec<VarId> = Vec::with_capacity(width);
    for j in 0..width {
        let v = b.add_local(&format!("l0_{j}"), m, None).unwrap();
        let o = b.add_obj(&format!("o{j}"), None, Some(m)).unwrap();
        b.add_new(o, v).unwrap();
        prev.push(v);
    }
    for i in 1..layers {
        let mut cur = Vec::with_capacity(width);
        for j in 0..width {
            let v = b.add_local(&format!("l{i}_{j}"), m, None).unwrap();
            for k in 0..preds {
                let src = prev[mix(seed, (i * width + j) as u64, k as u64) as usize % width];
                b.add_assign(src, v).unwrap();
            }
            cur.push(v);
        }
        prev = cur;
    }
    let query = prev[0];
    (b.finish(), query)
}

#[test]
fn default_budget_matches_the_paper() {
    assert_eq!(Budget::DEFAULT_LIMIT, 75_000);
    assert_eq!(EngineConfig::default().budget, 75_000);
}

#[test]
fn norefine_exhausts_budget_without_panicking() {
    // ~3 × 100 × 300 = 90,000 assign edges reachable from the query —
    // comfortably past the 75,000 default.
    let (pag, query) = deep_random_pag(300, 100, 3, 0xD45);
    assert!(dynsum_pag::validate(&pag).is_empty());

    let mut engine = NoRefine::new(&pag);
    assert_eq!(engine.config().budget, Budget::DEFAULT_LIMIT);

    let r = engine.points_to(query);
    assert!(!r.resolved, "90k-edge DAG must exceed the 75k budget");
    // The traversal did real work right up to the cap.
    assert!(
        r.stats.edges_traversed >= 70_000,
        "expected near-budget work, saw {} edges",
        r.stats.edges_traversed
    );

    // Exhaustion is per-query state: the engine answers an easy query
    // afterwards, and re-asking the hard one stays non-panicking.
    let easy = pag.find_var("l0_0").unwrap();
    let re = engine.points_to(easy);
    assert!(re.resolved);
    assert_eq!(re.pts.objects().len(), 1);
    let again = engine.points_to(query);
    assert!(!again.resolved);
}

#[test]
fn raised_budget_resolves_the_same_query() {
    let (pag, query) = deep_random_pag(300, 100, 3, 0xD45);
    let mut engine = NoRefine::with_config(
        &pag,
        EngineConfig {
            budget: 2_000_000,
            ..EngineConfig::default()
        },
    );
    let r = engine.points_to(query);
    assert!(r.resolved, "20x the budget must be enough for 90k edges");
    assert!(!r.pts.objects().is_empty());
}
