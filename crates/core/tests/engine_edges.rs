//! Edge-case tests for the engines: queries on globals, deep context
//! chains, heap contexts, recursion transparency, and cap behavior.

use dynsum_cfl::CtxId;
use dynsum_core::{DemandPointsTo, DynSum, EngineConfig, NoRefine, RefinePts, StaSum};
use dynsum_pag::{MethodId, Pag, PagBuilder, VarId};

/// A chain of k wrapper methods: main calls w1 calls w2 ... calls wk,
/// the innermost allocating. Exercises deep balanced contexts.
fn deep_chain(k: usize) -> (Pag, VarId) {
    let mut b = PagBuilder::new();
    let mut methods: Vec<MethodId> = Vec::new();
    for i in 0..=k {
        methods.push(b.add_method(&format!("w{i}"), None).unwrap());
    }
    // Innermost: ret = new O.
    let mut prev_ret = {
        let m = methods[k];
        let ret = b.add_local(&format!("ret{k}"), m, None).unwrap();
        let o = b.add_obj("deep", None, Some(m)).unwrap();
        b.add_new(o, ret).unwrap();
        ret
    };
    // Wrappers: ret_i = w_{i+1}().
    for i in (0..k).rev() {
        let m = methods[i];
        let ret = b.add_local(&format!("ret{i}"), m, None).unwrap();
        let site = b.add_call_site(&format!("c{i}"), m).unwrap();
        b.add_exit(site, prev_ret, ret).unwrap();
        prev_ret = ret;
    }
    (b.finish(), prev_ret)
}

#[test]
fn deep_call_chains_resolve_within_context_cap() {
    let (pag, root) = deep_chain(24);
    for engine in [true, false] {
        let r = if engine {
            DynSum::new(&pag).points_to(root)
        } else {
            NoRefine::new(&pag).points_to(root)
        };
        assert!(r.resolved, "depth 24 must fit the default context cap");
        assert_eq!(r.pts.objects().len(), 1);
    }
}

#[test]
fn context_cap_aborts_conservatively() {
    let (pag, root) = deep_chain(24);
    let config = EngineConfig {
        max_ctx_depth: 4,
        ..EngineConfig::default()
    };
    let r = DynSum::with_config(&pag, config).points_to(root);
    assert!(
        !r.resolved,
        "a 24-deep chain cannot fit a 4-deep context cap"
    );
}

#[test]
fn heap_contexts_distinguish_allocation_paths() {
    // alloc() { return new O; } called from two sites: the same abstract
    // object arrives under two heap contexts but is one object.
    let mut b = PagBuilder::new();
    let main = b.add_method("main", None).unwrap();
    let alloc = b.add_method("alloc", None).unwrap();
    let ret = b.add_local("ret", alloc, None).unwrap();
    let o = b.add_obj("o", None, Some(alloc)).unwrap();
    b.add_new(o, ret).unwrap();
    let r1 = b.add_local("r1", main, None).unwrap();
    let r2 = b.add_local("r2", main, None).unwrap();
    let joint = b.add_local("joint", main, None).unwrap();
    let s1 = b.add_call_site("1", main).unwrap();
    let s2 = b.add_call_site("2", main).unwrap();
    b.add_exit(s1, ret, r1).unwrap();
    b.add_exit(s2, ret, r2).unwrap();
    b.add_assign(r1, joint).unwrap();
    b.add_assign(r2, joint).unwrap();
    let pag = b.finish();

    let mut e = DynSum::new(&pag);
    let r = e.points_to(joint);
    assert!(r.resolved);
    // One abstract object, reached under two distinct allocation
    // contexts (the paper's heap abstraction, §3.3).
    assert_eq!(r.pts.objects().len(), 1);
    assert_eq!(r.pts.len(), 2, "two (object, context) pairs");
}

#[test]
fn recursive_sites_still_find_objects() {
    // walk(p) { return walk(p); } — plus a base flow in via entry.
    let mut b = PagBuilder::new();
    let main = b.add_method("main", None).unwrap();
    let walk = b.add_method("walk", None).unwrap();
    let p = b.add_local("p", walk, None).unwrap();
    let ret = b.add_local("ret", walk, None).unwrap();
    b.add_assign(p, ret).unwrap();
    // Self-call: ret = walk(p), marked recursive.
    let sr = b.add_call_site("rec", walk).unwrap();
    b.set_recursive(sr, true).unwrap();
    b.add_entry(sr, p, p).unwrap();
    b.add_exit(sr, ret, ret).unwrap();
    // main: x = new O; r = walk(x).
    let x = b.add_local("x", main, None).unwrap();
    let r = b.add_local("r", main, None).unwrap();
    let o = b.add_obj("o", None, Some(main)).unwrap();
    b.add_new(o, x).unwrap();
    let s = b.add_call_site("call", main).unwrap();
    b.add_entry(s, x, p).unwrap();
    b.add_exit(s, ret, r).unwrap();
    let pag = b.finish();

    for name in ["dynsum", "norefine", "refinepts", "stasum"] {
        let result = match name {
            "dynsum" => DynSum::new(&pag).points_to(r),
            "norefine" => NoRefine::new(&pag).points_to(r),
            "refinepts" => RefinePts::new(&pag).points_to(r),
            _ => StaSum::precompute(&pag).points_to(r),
        };
        assert!(result.resolved, "{name} must terminate on recursion");
        assert!(result.pts.contains_obj(o), "{name} must find o");
    }
}

#[test]
fn querying_a_global_works() {
    let mut b = PagBuilder::new();
    let m = b.add_method("m", None).unwrap();
    let v = b.add_local("v", m, None).unwrap();
    let g = b.add_global("G", None).unwrap();
    let o = b.add_obj("o", None, Some(m)).unwrap();
    b.add_new(o, v).unwrap();
    b.add_assign(v, g).unwrap();
    let pag = b.finish();
    for resolved in [
        DynSum::new(&pag).points_to(g),
        NoRefine::new(&pag).points_to(g),
        RefinePts::new(&pag).points_to(g),
        StaSum::precompute(&pag).points_to(g),
    ] {
        assert!(resolved.resolved);
        assert!(resolved.pts.contains_obj(o));
    }
}

#[test]
fn unreachable_variable_has_empty_set() {
    let mut b = PagBuilder::new();
    let m = b.add_method("m", None).unwrap();
    let v = b.add_local("v", m, None).unwrap();
    let pag = b.finish();
    let r = DynSum::new(&pag).points_to(v);
    assert!(r.resolved);
    assert!(r.pts.is_empty());
}

#[test]
fn explicit_context_filters_returns() {
    // Same structure as deep_chain(1) but queried from inside.
    let (pag, _) = deep_chain(2);
    let ret2 = pag.find_var("ret2").unwrap();
    let c1 = pag.find_call_site("c1").unwrap();
    let mut e = DynSum::new(&pag);
    // From inside w2 under context [c1], the object is still found
    // (allocation is local to w2).
    let r = e.points_to_in(ret2, &[c1]);
    assert!(r.resolved);
    assert_eq!(r.pts.objects().len(), 1);
    // The reported allocation context is the query context.
    let (_, ctx) = r.pts.iter().next().unwrap();
    assert_ne!(ctx, CtxId::EMPTY);
}

#[test]
fn empty_graph_engines_do_not_panic() {
    let pag = PagBuilder::new().finish();
    let _ = StaSum::precompute(&pag);
    // No variables to query; constructing engines must be safe.
    let _ = DynSum::new(&pag);
    let _ = NoRefine::new(&pag);
    let _ = RefinePts::new(&pag);
}
