//! PPTA — the Partial Points-To Analysis of Algorithm 3 (`DSPOINTSTO`).
//!
//! Starting from a `(node, field stack, direction)` configuration, PPTA
//! explores **only the local edges** of the enclosing method, following
//! the `pointsTo`/`alias` RSM of Figure 3(a):
//!
//! * in `S1` it walks `flowsTo̅` paths backwards (in-edges), pushing
//!   `load(f)` labels on the field stack and reporting objects whose
//!   `new` edge is reached with an empty stack;
//! * at an allocation reached with a non-empty stack it performs the
//!   `new new̅` transition into `S2` (the alias detour);
//! * in `S2` it walks `flowsTo` paths forwards (out-edges), popping at
//!   matching loads, pushing at stores (nested alias detours), and
//!   switching back to `S1` at matching in-stores (the stored value
//!   feeds the pending field).
//!
//! Because local edges never touch the context stack, the resulting
//! [`Summary`] is context-independent and can be reused under any calling
//! context — the key insight of the paper (§4.1).

use std::collections::BTreeSet;

use dynsum_cfl::{
    Direction, FieldFrame, FieldStackId, FxHashSet, Interrupt, QueryStats, StackPool, Ticket,
};
use dynsum_pag::{AdjClass, NodeId, NodeRef, Pag};

use crate::engine::EngineConfig;
use crate::summary::Summary;

/// Reusable PPTA working state: the visited set plus the sorted
/// accumulators a run fills before they are frozen into a [`Summary`].
/// Logically fresh per call (cleared), but the backing allocations
/// persist across the many PPTA runs a warm engine performs.
#[derive(Debug, Default)]
pub struct PptaScratch {
    visited: FxHashSet<(NodeId, FieldStackId, Direction)>,
    objs: BTreeSet<dynsum_pag::ObjId>,
    boundaries: BTreeSet<(NodeId, FieldStackId, Direction)>,
}

/// Computes the partial points-to summary for `(node, fstack, dir)`.
///
/// Edge traversals are charged against the `ticket`; pushing beyond the
/// configured field-stack depth is treated as budget exhaustion.
///
/// # Errors
///
/// Returns the tripped [`Interrupt`] when the traversal budget, the
/// field-stack depth cap, a cancellation, or a deadline trips; the
/// partial result must then **not** be cached (the query is answered
/// conservatively).
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 3's signature
pub fn compute(
    pag: &Pag,
    fields: &mut StackPool<FieldFrame>,
    scratch: &mut PptaScratch,
    config: &EngineConfig,
    ticket: &mut Ticket,
    stats: &mut QueryStats,
    node: NodeId,
    fstack: FieldStackId,
    dir: Direction,
) -> Result<Summary, Interrupt> {
    scratch.visited.clear();
    scratch.objs.clear();
    scratch.boundaries.clear();
    let mut ppta = Ppta {
        pag,
        fields,
        config,
        ticket,
        stats,
        charged: 0,
        visited: &mut scratch.visited,
        objs: &mut scratch.objs,
        boundaries: &mut scratch.boundaries,
    };
    ppta.go(node, fstack, dir)?;
    let cost = ppta.charged;
    let mut objs = Vec::with_capacity(scratch.objs.len());
    objs.extend(scratch.objs.iter().copied());
    let mut boundaries = Vec::with_capacity(scratch.boundaries.len());
    boundaries.extend(scratch.boundaries.iter().copied());
    // Canonical, pool-independent boundary order: the accumulator set is
    // keyed by raw stack ids (interning history), but the driver walks
    // boundaries in order and an over-budget query aborts mid-walk, so
    // the order must depend only on content for partial results to be
    // identical across engines, handles, and thread counts.
    boundaries.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then(a.2.cmp(&b.2))
            .then_with(|| fields.cmp_stacks(a.1, b.1))
    });
    Ok(Summary {
        objs,
        boundaries,
        cost,
    })
}

struct Ppta<'a, 'p> {
    pag: &'p Pag,
    fields: &'a mut StackPool<FieldFrame>,
    config: &'a EngineConfig,
    ticket: &'a mut Ticket,
    stats: &'a mut QueryStats,
    /// Edges charged by this run — recorded as the summary's reuse cost.
    charged: u64,
    visited: &'a mut FxHashSet<(NodeId, FieldStackId, Direction)>,
    objs: &'a mut BTreeSet<dynsum_pag::ObjId>,
    boundaries: &'a mut BTreeSet<(NodeId, FieldStackId, Direction)>,
}

impl Ppta<'_, '_> {
    fn charge(&mut self) -> Result<(), Interrupt> {
        self.ticket.charge()?;
        self.stats.edges_traversed += 1;
        self.charged += 1;
        Ok(())
    }

    fn push_field(&mut self, f: FieldStackId, g: FieldFrame) -> Result<FieldStackId, Interrupt> {
        if self.fields.depth(f) >= self.config.max_field_depth {
            return Err(Interrupt::Budget);
        }
        Ok(self.fields.push(f, g))
    }

    fn go(&mut self, u: NodeId, f: FieldStackId, s: Direction) -> Result<(), Interrupt> {
        if !self.visited.insert((u, f, s)) {
            return Ok(());
        }
        match s {
            Direction::S1 => self.s1(u, f),
            Direction::S2 => self.s2(u, f),
        }
    }

    /// Algorithm 3, lines 5–16 — straight iteration over the local kind
    /// segments (global edges are the driver's job; the boundary bit at
    /// the end records that they exist).
    fn s1(&mut self, u: NodeId, f: FieldStackId) -> Result<(), Interrupt> {
        let pag = self.pag;
        let mut saw_new = false;
        for &a in pag.in_seg(u, AdjClass::New) {
            self.charge()?;
            if f.is_empty() {
                if let NodeRef::Obj(o) = pag.node_ref(a.node) {
                    self.objs.insert(o);
                }
            } else {
                saw_new = true;
            }
        }
        for &a in pag.in_seg(u, AdjClass::Assign) {
            self.charge()?;
            self.go(a.node, f, Direction::S1)?;
        }
        for &a in pag.in_seg(u, AdjClass::Load) {
            self.charge()?;
            let f2 = self.push_field(f, FieldFrame::Get(a.field()))?;
            self.go(a.node, f2, Direction::S1)?;
        }
        if saw_new {
            // `new new̅`: the only S1→S2 transition (Figure 3(a)). Every
            // object has a single defining variable, so detouring through
            // the allocation lands back at `u` in S2.
            self.charge()?;
            self.go(u, f, Direction::S2)?;
        }
        if pag.has_global_in(u) {
            self.boundaries.insert((u, f, Direction::S1));
        }
        Ok(())
    }

    /// Algorithm 3, lines 17–29.
    fn s2(&mut self, u: NodeId, f: FieldStackId) -> Result<(), Interrupt> {
        let pag = self.pag;
        for &a in pag.out_seg(u, AdjClass::Assign) {
            self.charge()?;
            self.go(a.node, f, Direction::S2)?;
        }
        for &a in pag.out_seg(u, AdjClass::Load) {
            // Forward over a load: a pending *store* frame is matched
            // (grammar: `store(f) alias load(f)`). A pending `Get`
            // frame must not pop here — a load/load pair witnesses no
            // store into the field.
            if self.fields.peek(f) == Some(FieldFrame::Put(a.field())) {
                self.charge()?;
                let (_, rest) = self.fields.pop(f).expect("peeked");
                self.go(a.node, rest, Direction::S2)?;
            }
        }
        for &a in pag.out_seg(u, AdjClass::Store) {
            // The tracked value is stored into `dst.g`: a nested alias
            // detour must find aliases of the base. The pushed
            // parenthesis can only be consumed at a `load(g)` (grammar:
            // `store(f) alias load(f)`), so fields nobody loads need no
            // detour — this both matches the search engine's rule and
            // defuses field-stack pumping on store-only cycles.
            let g = a.field();
            if !pag.loads_of(g).is_empty() {
                self.charge()?;
                let f2 = self.push_field(f, FieldFrame::Put(g))?;
                self.go(a.node, f2, Direction::S1)?;
            }
        }
        for &a in pag.in_seg(u, AdjClass::Store) {
            // `u` is the base of a store and the alias detour wants
            // the contents of field `g` (a pending `Get` frame): the
            // stored value's points-to set feeds the answer (back to S1
            // at the value). A pending `Put` frame must not pop here.
            if self.fields.peek(f) == Some(FieldFrame::Get(a.field())) {
                self.charge()?;
                let (_, rest) = self.fields.pop(f).expect("peeked");
                self.go(a.node, rest, Direction::S1)?;
            }
        }
        if pag.has_global_out(u) {
            self.boundaries.insert((u, f, Direction::S2));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsum_pag::{PagBuilder, VarId};

    fn run(
        pag: &Pag,
        fields: &mut StackPool<FieldFrame>,
        v: VarId,
        fstack: FieldStackId,
        dir: Direction,
    ) -> Summary {
        let config = EngineConfig::unlimited();
        let mut scratch = PptaScratch::default();
        let mut ticket = Ticket::unlimited();
        let mut stats = QueryStats::default();
        compute(
            pag,
            fields,
            &mut scratch,
            &config,
            &mut ticket,
            &mut stats,
            pag.var_node(v),
            fstack,
            dir,
        )
        .unwrap()
    }

    #[test]
    fn direct_object_found() {
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let v = b.add_local("v", m, None).unwrap();
        let w = b.add_local("w", m, None).unwrap();
        let o = b.add_obj("o1", None, Some(m)).unwrap();
        b.add_new(o, v).unwrap();
        b.add_assign(v, w).unwrap();
        let pag = b.finish();
        let mut fields = StackPool::new();
        let s = run(&pag, &mut fields, w, FieldStackId::EMPTY, Direction::S1);
        assert_eq!(s.objs, vec![o]);
        assert!(s.boundaries.is_empty());
    }

    #[test]
    fn local_store_load_resolves_field() {
        // p = new A; p.f = x; x = new B; y = p.f  =>  ppta(y) = {oB}
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let p = b.add_local("p", m, None).unwrap();
        let x = b.add_local("x", m, None).unwrap();
        let y = b.add_local("y", m, None).unwrap();
        let oa = b.add_obj("oa", None, Some(m)).unwrap();
        let ob = b.add_obj("ob", None, Some(m)).unwrap();
        let f = b.field("f");
        b.add_new(oa, p).unwrap();
        b.add_new(ob, x).unwrap();
        b.add_store(f, x, p).unwrap();
        b.add_load(f, p, y).unwrap();
        let pag = b.finish();
        let mut fields = StackPool::new();
        let s = run(&pag, &mut fields, y, FieldStackId::EMPTY, Direction::S1);
        assert_eq!(s.objs, vec![ob]);
    }

    #[test]
    fn alias_through_local_copy() {
        // p = new A; q = p; p.f = x; y = q.f
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let p = b.add_local("p", m, None).unwrap();
        let q = b.add_local("q", m, None).unwrap();
        let x = b.add_local("x", m, None).unwrap();
        let y = b.add_local("y", m, None).unwrap();
        let oa = b.add_obj("oa", None, Some(m)).unwrap();
        let ob = b.add_obj("ob", None, Some(m)).unwrap();
        let f = b.field("f");
        b.add_new(oa, p).unwrap();
        b.add_new(ob, x).unwrap();
        b.add_assign(p, q).unwrap();
        b.add_store(f, x, p).unwrap();
        b.add_load(f, q, y).unwrap();
        let pag = b.finish();
        let mut fields = StackPool::new();
        let s = run(&pag, &mut fields, y, FieldStackId::EMPTY, Direction::S1);
        assert_eq!(s.objs, vec![ob]);
    }

    #[test]
    fn boundary_recorded_with_pending_fields() {
        // ret = this.elems.arr — the paper's ppta(ret_get) example (§4.1):
        // summary must contain (this, [arr, elems], S1).
        let mut b = PagBuilder::new();
        let m = b.add_method("get", None).unwrap();
        let m2 = b.add_method("caller", None).unwrap();
        let this = b.add_local("this", m, None).unwrap();
        let t = b.add_local("t", m, None).unwrap();
        let ret = b.add_local("ret", m, None).unwrap();
        let recv = b.add_local("recv", m2, None).unwrap();
        let elems = b.field("elems");
        let arr = b.array_field();
        b.add_load(elems, this, t).unwrap();
        b.add_load(arr, t, ret).unwrap();
        let site = b.add_call_site("22", m2).unwrap();
        b.add_entry(site, recv, this).unwrap();
        let pag = b.finish();
        let mut fields = StackPool::new();
        let s = run(&pag, &mut fields, ret, FieldStackId::EMPTY, Direction::S1);
        assert!(s.objs.is_empty());
        assert_eq!(s.boundaries.len(), 1);
        let (bnode, bstack, bdir) = s.boundaries[0];
        assert_eq!(bnode, pag.var_node(this));
        assert_eq!(bdir, Direction::S1);
        // Bottom-to-top: arr pushed first, then elems on top.
        let names: Vec<_> = fields
            .to_vec(bstack)
            .into_iter()
            .map(|fr| {
                assert!(matches!(fr, FieldFrame::Get(_)), "backward loads push Get");
                pag.field_name(fr.field()).to_owned()
            })
            .collect();
        assert_eq!(names, vec!["arr", "elems"]);
    }

    #[test]
    fn uninitialized_field_chain_stays_empty() {
        // c = new C; v = new V; t1 = c.elems; t1.arr = v;
        // t2 = c.elems; y = t2.arr — nothing ever stores into `elems`,
        // so c.elems (hence y) points to nothing. Before field frames
        // carried their provenance, the alias detour at `c` popped the
        // pending `Get(elems)` frame at the *out-load* `t1 = c.elems`
        // (load matched against load, no store witness), walked the
        // in-store `t1.arr = v`, and fabricated y -> {ov}.
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let c = b.add_local("c", m, None).unwrap();
        let v = b.add_local("v", m, None).unwrap();
        let t1 = b.add_local("t1", m, None).unwrap();
        let t2 = b.add_local("t2", m, None).unwrap();
        let y = b.add_local("y", m, None).unwrap();
        let oc = b.add_obj("oc", None, Some(m)).unwrap();
        let ov = b.add_obj("ov", None, Some(m)).unwrap();
        let elems = b.field("elems");
        let arr = b.field("arr");
        b.add_new(oc, c).unwrap();
        b.add_new(ov, v).unwrap();
        b.add_load(elems, c, t1).unwrap();
        b.add_store(arr, v, t1).unwrap();
        b.add_load(elems, c, t2).unwrap();
        b.add_load(arr, t2, y).unwrap();
        let pag = b.finish();
        let mut fields = StackPool::new();
        let s = run(&pag, &mut fields, y, FieldStackId::EMPTY, Direction::S1);
        assert!(
            s.objs.is_empty(),
            "no store into `elems` exists, so no object is reachable: {:?}",
            s.objs
        );
        assert!(s.boundaries.is_empty());
    }

    #[test]
    fn points_to_cycle_terminates() {
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let x = b.add_local("x", m, None).unwrap();
        let y = b.add_local("y", m, None).unwrap();
        let o = b.add_obj("o1", None, Some(m)).unwrap();
        b.add_assign(x, y).unwrap();
        b.add_assign(y, x).unwrap();
        b.add_new(o, x).unwrap();
        let pag = b.finish();
        let mut fields = StackPool::new();
        let s = run(&pag, &mut fields, y, FieldStackId::EMPTY, Direction::S1);
        assert_eq!(s.objs, vec![o]);
    }

    #[test]
    fn budget_exhaustion_propagates() {
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let mut prev = b.add_local("v0", m, None).unwrap();
        for i in 1..50 {
            let v = b.add_local(&format!("v{i}"), m, None).unwrap();
            b.add_assign(prev, v).unwrap();
            prev = v;
        }
        let o = b.add_obj("o", None, Some(m)).unwrap();
        b.add_new(o, prev).unwrap();
        let pag = b.finish();
        let mut fields = StackPool::new();
        let mut scratch = PptaScratch::default();
        let config = EngineConfig::default();
        let mut ticket = Ticket::new(3);
        let mut stats = QueryStats::default();
        let r = compute(
            &pag,
            &mut fields,
            &mut scratch,
            &config,
            &mut ticket,
            &mut stats,
            pag.var_node(prev),
            FieldStackId::EMPTY,
            Direction::S1,
        );
        assert_eq!(r, Err(Interrupt::Budget));
        assert!(stats.edges_traversed <= 3);
    }

    #[test]
    fn field_depth_cap_aborts() {
        // x = x.f in a loop: unbounded pushes must hit the cap.
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let x = b.add_local("x", m, None).unwrap();
        let f = b.field("f");
        b.add_load(f, x, x).unwrap();
        let pag = b.finish();
        let mut fields = StackPool::new();
        let mut scratch = PptaScratch::default();
        let config = EngineConfig {
            max_field_depth: 8,
            ..EngineConfig::unlimited()
        };
        let mut ticket = Ticket::unlimited();
        let mut stats = QueryStats::default();
        let r = compute(
            &pag,
            &mut fields,
            &mut scratch,
            &config,
            &mut ticket,
            &mut stats,
            pag.var_node(x),
            FieldStackId::EMPTY,
            Direction::S1,
        );
        assert_eq!(r, Err(Interrupt::Budget));
    }

    #[test]
    fn stays_within_method() {
        // Local edges of other methods are never touched: callee's ret
        // only reachable over the exit edge, which PPTA must not cross.
        let mut b = PagBuilder::new();
        let main = b.add_method("main", None).unwrap();
        let callee = b.add_method("callee", None).unwrap();
        let r = b.add_local("r", main, None).unwrap();
        let ret = b.add_local("ret", callee, None).unwrap();
        let o = b.add_obj("o", None, Some(callee)).unwrap();
        b.add_new(o, ret).unwrap();
        let site = b.add_call_site("1", main).unwrap();
        b.add_exit(site, ret, r).unwrap();
        let pag = b.finish();
        let mut fields = StackPool::new();
        let s = run(&pag, &mut fields, r, FieldStackId::EMPTY, Direction::S1);
        assert!(s.objs.is_empty());
        assert_eq!(
            s.boundaries,
            vec![(pag.var_node(r), FieldStackId::EMPTY, Direction::S1)]
        );
    }
}
