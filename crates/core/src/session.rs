//! The `Session` API: shared immutable analysis state plus cheap,
//! `Send` per-thread query handles.
//!
//! The paper's economics are about serving *streams* of demand queries
//! cheaply by reusing context-independent summaries (§4, Figure 5);
//! those streams are embarrassingly parallel once the mutable per-query
//! machinery is split off the shareable state. A [`Session`] freezes
//! everything queries only read — the PAG, the [`EngineConfig`], the
//! engine kind, DYNSUM's accumulated summary cache or STASUM's
//! precomputed relative store — and [`Session::handle`] hands out
//! lightweight [`QueryHandle`]s owning the interning pools, worklist
//! buffers, and (for DYNSUM) a private cache *shard*. Handles implement
//! [`DemandPointsTo`], so everything written against the legacy engines
//! works against a handle unchanged.
//!
//! [`Session::run_batch`] executes a query batch across scoped threads
//! with a **sharded, merge-on-join** cache discipline: every worker reads
//! the session cache frozen at batch start, accumulates fresh summaries
//! in its own shard, and the shards are merged back (re-interning
//! field-stack ids) when the workers join. Combined with deterministic
//! budget accounting (reusing a summary charges its recorded cold cost —
//! see [`Summary::cost`]), every query's result is a pure function of
//! `(pag, config, query)`: batches return results **byte-identical** to
//! sequential execution at any thread count.

use std::sync::Arc;

use dynsum_cfl::{FieldStackId, FxHashMap, QueryResult, StackPool};
use dynsum_pag::{FieldId, MethodId, Pag, VarId};

use crate::driver::DriveParts;
use crate::dynsum::{dynsum_query, DynSum};
use crate::engine::{never_satisfied, ClientCheck, DemandPointsTo, EngineConfig};
use crate::norefine::{norefine_query, NoRefine};
use crate::refinepts::{refinepts_query, RefinePts};
use crate::search::SearchParts;
use crate::stasum::{stasum_precompute, stasum_query, StaSum, StaSumOptions, StaSumShared};
use crate::summary::{Summary, SummaryCache};

/// Reserved stack for batch worker threads: PPTA recursion is bounded by
/// method-local graph size, but generated methods can be large, so the
/// workers get the same generous reservation `main` typically has.
const WORKER_STACK_BYTES: usize = 64 * 1024 * 1024;

/// The four demand-driven engines of Table 2, constructible by name.
///
/// Used both to pick a [`Session`]'s engine and to build standalone
/// [`DemandPointsTo`] boxes (the benchmark harness's historical API).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// NOREFINE baseline.
    NoRefine,
    /// REFINEPTS baseline.
    RefinePts,
    /// DYNSUM (the paper's contribution).
    DynSum,
    /// STASUM static-summary comparison point.
    StaSum,
}

impl EngineKind {
    /// All four engines, in the paper's table order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::NoRefine,
        EngineKind::RefinePts,
        EngineKind::DynSum,
        EngineKind::StaSum,
    ];

    /// The three timed engines of Table 4, in the paper's row order.
    pub const TABLE4: [EngineKind; 3] = [
        EngineKind::NoRefine,
        EngineKind::RefinePts,
        EngineKind::DynSum,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::NoRefine => "NOREFINE",
            EngineKind::RefinePts => "REFINEPTS",
            EngineKind::DynSum => "DYNSUM",
            EngineKind::StaSum => "STASUM",
        }
    }

    /// Instantiates a fresh standalone engine over `pag`.
    pub fn build<'p>(self, pag: &'p Pag, config: EngineConfig) -> Box<dyn DemandPointsTo + 'p> {
        match self {
            EngineKind::NoRefine => Box::new(NoRefine::with_config(pag, config)),
            EngineKind::RefinePts => Box::new(RefinePts::with_config(pag, config)),
            EngineKind::DynSum => Box::new(DynSum::with_config(pag, config)),
            EngineKind::StaSum => {
                Box::new(StaSum::precompute_with(pag, config, Default::default()))
            }
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One query in a batch: the variable plus the client-satisfaction
/// predicate (ignored by the engines without refinement).
#[derive(Clone, Copy)]
pub struct SessionQuery<'a> {
    /// The queried variable (`pointsTo(var, ∅)`).
    pub var: VarId,
    /// The client predicate — must be `Sync` so one reference can serve
    /// every worker thread (see [`ClientCheck`]).
    pub satisfied: ClientCheck<'a>,
}

impl<'a> SessionQuery<'a> {
    /// A full-precision query (the predicate is never satisfied).
    pub fn new(var: VarId) -> SessionQuery<'static> {
        SessionQuery {
            var,
            satisfied: &never_satisfied,
        }
    }

    /// A query with a client predicate.
    pub fn with_check(var: VarId, satisfied: ClientCheck<'a>) -> Self {
        SessionQuery { var, satisfied }
    }
}

impl std::fmt::Debug for SessionQuery<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionQuery")
            .field("var", &self.var)
            .finish_non_exhaustive()
    }
}

/// The engine-specific shared (read-only between merges) half.
#[derive(Debug)]
enum SharedState {
    /// NOREFINE and REFINEPTS carry no cross-query state at all.
    NoRefine,
    RefinePts,
    /// DYNSUM: the accumulated summary cache plus the field-stack pool
    /// its keys are interned in. Handles clone the pool (ids stay
    /// aligned) and extend their clones privately.
    DynSum {
        cache: SummaryCache,
        fields: StackPool<FieldId>,
    },
    /// STASUM: the frozen all-pairs relative summary store
    /// (pool-independent inline field arrays).
    StaSum(StaSumShared),
}

/// Immutable, shareable analysis state: a frozen PAG, an engine
/// configuration and kind, and the engine's shareable half (DYNSUM's
/// summary cache / STASUM's precomputed store).
///
/// `Session` is `Send + Sync`; [`handle`](Self::handle) hands out `Send`
/// [`QueryHandle`]s that borrow it, so one warm session can serve any
/// number of threads. Mutation (merging a handle's summary shard back,
/// evicting summaries) goes through `&mut self` — between batches, never
/// during one.
///
/// # Examples
///
/// ```
/// use dynsum_core::{DemandPointsTo, EngineKind, Session};
/// use dynsum_pag::PagBuilder;
///
/// let mut b = PagBuilder::new();
/// let m = b.add_method("main", None)?;
/// let v = b.add_local("v", m, None)?;
/// let o = b.add_obj("o1", None, Some(m))?;
/// b.add_new(o, v)?;
/// let pag = b.finish();
///
/// let session = Session::new(&pag, EngineKind::DynSum);
/// let mut handle = session.handle();
/// assert!(handle.points_to(v).pts.contains_obj(o));
/// # Ok::<(), dynsum_pag::BuildError>(())
/// ```
#[derive(Debug)]
pub struct Session<'p> {
    pag: &'p Pag,
    config: EngineConfig,
    kind: EngineKind,
    state: SharedState,
}

impl<'p> Session<'p> {
    /// Creates a session with the default configuration. STASUM sessions
    /// run their whole-program precomputation here.
    pub fn new(pag: &'p Pag, kind: EngineKind) -> Self {
        Self::with_config(pag, kind, EngineConfig::default())
    }

    /// Creates a session with an explicit configuration (STASUM uses
    /// default [`StaSumOptions`]; see
    /// [`with_stasum_options`](Self::with_stasum_options)).
    pub fn with_config(pag: &'p Pag, kind: EngineKind, config: EngineConfig) -> Self {
        let state = match kind {
            EngineKind::NoRefine => SharedState::NoRefine,
            EngineKind::RefinePts => SharedState::RefinePts,
            EngineKind::DynSum => SharedState::DynSum {
                cache: SummaryCache::new(),
                fields: StackPool::new(),
            },
            EngineKind::StaSum => {
                SharedState::StaSum(stasum_precompute(pag, &config, StaSumOptions::default()))
            }
        };
        Session {
            pag,
            config,
            kind,
            state,
        }
    }

    /// Creates a STASUM session with explicit precomputation options.
    pub fn with_stasum_options(pag: &'p Pag, config: EngineConfig, options: StaSumOptions) -> Self {
        Session {
            pag,
            config,
            kind: EngineKind::StaSum,
            state: SharedState::StaSum(stasum_precompute(pag, &config, options)),
        }
    }

    /// The frozen graph under analysis.
    pub fn pag(&self) -> &'p Pag {
        self.pag
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Which engine this session runs.
    pub fn engine(&self) -> EngineKind {
        self.kind
    }

    /// Number of summaries in the shared state: DYNSUM's merged cache
    /// size (the Figure 5 numerator) or STASUM's precomputed count; 0
    /// for the memorization-free engines.
    pub fn summary_count(&self) -> usize {
        match &self.state {
            SharedState::DynSum { cache, .. } => cache.len(),
            SharedState::StaSum(shared) => shared.stats().summaries,
            _ => 0,
        }
    }

    /// Creates a per-thread query handle borrowing this session.
    ///
    /// Handles are `Send` and cheap: pools, worklist buffers, and (for
    /// DYNSUM) an empty cache shard layered over the shared cache. Any
    /// number may exist concurrently.
    pub fn handle(&self) -> QueryHandle<'_, 'p> {
        let scratch = match &self.state {
            SharedState::NoRefine => HandleScratch::NoRefine(SearchParts::default()),
            SharedState::RefinePts => HandleScratch::RefinePts(SearchParts::default()),
            SharedState::DynSum { fields, .. } => HandleScratch::DynSum {
                parts: DriveParts {
                    // Clone so shared-cache keys resolve identically in
                    // the handle's pool; private pushes extend the clone.
                    fields: fields.clone(),
                    ..DriveParts::default()
                },
                shard: SummaryCache::new(),
            },
            SharedState::StaSum(_) => HandleScratch::StaSum(DriveParts::default()),
        };
        QueryHandle {
            session: self,
            scratch,
        }
    }

    /// Merges a handle's summary shard (see
    /// [`QueryHandle::into_summaries`]) into the shared cache, returning
    /// how many entries were new. Field-stack ids are re-interned into
    /// the session pool; duplicate keys keep the existing entry (summary
    /// contents are canonical per key). No-op for engines without a
    /// cache.
    pub fn absorb(&mut self, shard: SummaryShard) -> usize {
        let SummaryShard {
            cache: shard_cache,
            fields: shard_fields,
        } = shard;
        match &mut self.state {
            SharedState::DynSum { cache, fields } => {
                cache.absorb_counters(&shard_cache);
                let before = cache.len();
                let mut memo: FxHashMap<FieldStackId, FieldStackId> = FxHashMap::default();
                for (&(node, f, dir), sum) in shard_cache.entries() {
                    // Translation is memoized, so deciding `changed`
                    // first and re-walking only when a rewrite is needed
                    // keeps the common case (handle pool is an
                    // unextended clone: every id maps to itself) free of
                    // per-summary allocation.
                    let f2 = translate(&shard_fields, fields, &mut memo, f);
                    let changed = f2 != f
                        || sum.boundaries.iter().any(|&(_, bf, _)| {
                            translate(&shard_fields, fields, &mut memo, bf) != bf
                        });
                    let entry = if changed {
                        let boundaries = sum
                            .boundaries
                            .iter()
                            .map(|&(n, bf, d)| {
                                (n, translate(&shard_fields, fields, &mut memo, bf), d)
                            })
                            .collect();
                        Arc::new(Summary {
                            objs: sum.objs.clone(),
                            boundaries,
                            cost: sum.cost,
                        })
                    } else {
                        Arc::clone(sum)
                    };
                    cache.insert_if_absent((node, f2, dir), entry);
                }
                cache.len() - before
            }
            _ => 0,
        }
    }

    /// Evicts the shared summaries of one method (the incremental-edit
    /// story — see [`DynSum::invalidate_method`]). Returns the number of
    /// evicted entries; 0 for engines without a cache.
    pub fn invalidate_method(&mut self, method: MethodId) -> usize {
        let pag = self.pag;
        match &mut self.state {
            SharedState::DynSum { cache, .. } => {
                cache.evict_where(|&(node, _, _)| pag.method_of(node) == Some(method))
            }
            _ => 0,
        }
    }

    /// Runs a query batch on up to `threads` worker threads and returns
    /// one result per query, in input order.
    ///
    /// Workers read the session cache frozen at batch start and collect
    /// fresh summaries in private shards; the shards are merged back
    /// here after all workers join (so later batches start warmer).
    /// Results — resolution flags and points-to sets, including the
    /// partial sets of over-budget queries — are **byte-identical to
    /// sequential execution** for every thread count: summary reuse
    /// charges its recorded cold cost against the per-query budget, so
    /// no query's outcome depends on what any other query cached.
    pub fn run_batch(&mut self, queries: &[SessionQuery<'_>], threads: usize) -> Vec<QueryResult> {
        if queries.is_empty() {
            return Vec::new();
        }
        let threads = threads.clamp(1, queries.len());
        // One code path for every thread count: a 1-thread batch is a
        // single chunk on a single worker, so it gets the same stack
        // reservation and pays the same per-batch overhead as the
        // multi-thread points it is compared against.
        let sess: &Session<'p> = self;
        let (results, shards) = std::thread::scope(|scope| {
            let workers: Vec<_> = balanced_chunks(queries, threads)
                .map(|chunk| {
                    std::thread::Builder::new()
                        .stack_size(WORKER_STACK_BYTES)
                        .spawn_scoped(scope, move || {
                            let mut h = sess.handle();
                            let out: Vec<QueryResult> =
                                chunk.iter().map(|q| h.query(q.var, q.satisfied)).collect();
                            (out, h.into_summaries())
                        })
                        .expect("failed to spawn query worker")
                })
                .collect();
            let mut results = Vec::with_capacity(queries.len());
            let mut shards = Vec::with_capacity(threads);
            for worker in workers {
                let (out, shard) = worker.join().expect("query worker panicked");
                results.extend(out);
                shards.push(shard);
            }
            (results, shards)
        });
        for shard in shards {
            self.absorb(shard);
        }
        results
    }

    /// [`run_batch`](Self::run_batch) at full precision (no client
    /// predicates).
    pub fn run_batch_vars(&mut self, vars: &[VarId], threads: usize) -> Vec<QueryResult> {
        let queries: Vec<SessionQuery<'_>> = vars.iter().map(|&v| SessionQuery::new(v)).collect();
        self.run_batch(&queries, threads)
    }
}

/// Splits `items` into at most `n` contiguous chunks whose lengths
/// differ by at most one — the deterministic work partition behind
/// [`Session::run_batch`].
fn balanced_chunks<T>(items: &[T], n: usize) -> impl Iterator<Item = &[T]> {
    let len = items.len();
    let base = len / n;
    let extra = len % n;
    (0..n).scan(0usize, move |start, i| {
        let size = base + usize::from(i < extra);
        let s = *start;
        *start += size;
        Some(&items[s..s + size])
    })
}

/// Translates a field-stack id interned in `from` into the equivalent id
/// in `to`, re-interning as needed. Memoized per merge.
fn translate(
    from: &StackPool<FieldId>,
    to: &mut StackPool<FieldId>,
    memo: &mut FxHashMap<FieldStackId, FieldStackId>,
    id: FieldStackId,
) -> FieldStackId {
    if id.is_empty() {
        return FieldStackId::EMPTY;
    }
    if let Some(&t) = memo.get(&id) {
        return t;
    }
    // Walk down to a translated suffix, then re-intern back up.
    let mut chain: Vec<(FieldStackId, FieldId)> = Vec::new();
    let mut cur = id;
    let mut base = FieldStackId::EMPTY;
    while !cur.is_empty() {
        if let Some(&t) = memo.get(&cur) {
            base = t;
            break;
        }
        let (top, rest) = from.pop(cur).expect("non-empty stack");
        chain.push((cur, top));
        cur = rest;
    }
    let mut t = base;
    for &(orig, elem) in chain.iter().rev() {
        t = to.push(t, elem);
        memo.insert(orig, t);
    }
    t
}

/// A handle's detached summary shard: the summaries it computed plus the
/// field-stack pool their keys are interned in. Produced by
/// [`QueryHandle::into_summaries`], consumed by [`Session::absorb`].
#[derive(Debug, Default)]
pub struct SummaryShard {
    cache: SummaryCache,
    fields: StackPool<FieldId>,
}

impl SummaryShard {
    /// Number of summaries carried.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// `true` when the shard carries nothing.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

/// The engine-specific per-handle scratch half.
#[derive(Debug)]
enum HandleScratch {
    NoRefine(SearchParts),
    RefinePts(SearchParts),
    DynSum {
        parts: DriveParts,
        shard: SummaryCache,
    },
    StaSum(DriveParts),
}

/// A cheap, `Send` per-thread query endpoint borrowing a [`Session`].
///
/// Owns everything a query mutates — interning pools, worklist and PPTA
/// scratch, and (DYNSUM) a private summary shard layered over the shared
/// session cache. Implements [`DemandPointsTo`], so existing client code
/// runs against a handle unchanged.
#[derive(Debug)]
pub struct QueryHandle<'s, 'p> {
    session: &'s Session<'p>,
    scratch: HandleScratch,
}

impl QueryHandle<'_, '_> {
    /// The session this handle queries.
    pub fn session(&self) -> &Session<'_> {
        self.session
    }

    /// Summaries accumulated in this handle's private shard (0 for
    /// engines without a cache).
    pub fn shard_len(&self) -> usize {
        match &self.scratch {
            HandleScratch::DynSum { shard, .. } => shard.len(),
            _ => 0,
        }
    }

    /// Detaches the handle's summary shard for
    /// [`Session::absorb`]. Empty for engines without a cache.
    pub fn into_summaries(self) -> SummaryShard {
        match self.scratch {
            HandleScratch::DynSum { parts, shard } => SummaryShard {
                cache: shard,
                fields: parts.fields,
            },
            _ => SummaryShard::default(),
        }
    }
}

impl DemandPointsTo for QueryHandle<'_, '_> {
    fn name(&self) -> &'static str {
        self.session.kind.name()
    }

    fn query(&mut self, v: VarId, satisfied: ClientCheck<'_>) -> QueryResult {
        let pag = self.session.pag;
        let config = &self.session.config;
        match (&mut self.scratch, &self.session.state) {
            (HandleScratch::NoRefine(parts), _) => norefine_query(pag, config, parts, v, &[]),
            (HandleScratch::RefinePts(parts), _) => {
                refinepts_query(pag, config, parts, v, satisfied)
            }
            (HandleScratch::DynSum { parts, shard }, SharedState::DynSum { cache, .. }) => {
                dynsum_query(pag, config, Some(cache), shard, parts, v, &[], None)
            }
            (HandleScratch::StaSum(parts), SharedState::StaSum(shared)) => {
                stasum_query(pag, config, shared, parts, v, &[])
            }
            _ => unreachable!("handle scratch always matches its session's state"),
        }
    }

    /// Shared summaries plus this handle's unmerged shard.
    fn summary_count(&self) -> usize {
        self.session.summary_count() + self.shard_len()
    }

    /// Drops the handle's private state (shard included); the session's
    /// shared summaries are untouched.
    fn reset(&mut self) {
        self.scratch = self.session.handle().scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsum_pag::{ObjId, PagBuilder};

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn session_is_send_sync_and_handles_are_send() {
        assert_send::<Session<'static>>();
        assert_sync::<Session<'static>>();
        assert_send::<QueryHandle<'static, 'static>>();
        assert_send::<SessionQuery<'static>>();
        assert_sync::<SessionQuery<'static>>();
        assert_send::<SummaryShard>();
        assert_send::<EngineKind>();
    }

    /// id(p){return p} from two sites — the canonical context test.
    fn two_callers() -> (Pag, Vec<VarId>, ObjId, ObjId) {
        let mut b = PagBuilder::new();
        let main = b.add_method("main", None).unwrap();
        let id = b.add_method("id", None).unwrap();
        let a1 = b.add_local("a1", main, None).unwrap();
        let a2 = b.add_local("a2", main, None).unwrap();
        let r1 = b.add_local("r1", main, None).unwrap();
        let r2 = b.add_local("r2", main, None).unwrap();
        let p = b.add_local("p", id, None).unwrap();
        let ret = b.add_local("ret", id, None).unwrap();
        let o1 = b.add_obj("o1", None, Some(main)).unwrap();
        let o2 = b.add_obj("o2", None, Some(main)).unwrap();
        b.add_new(o1, a1).unwrap();
        b.add_new(o2, a2).unwrap();
        b.add_assign(p, ret).unwrap();
        let s1 = b.add_call_site("1", main).unwrap();
        let s2 = b.add_call_site("2", main).unwrap();
        b.add_entry(s1, a1, p).unwrap();
        b.add_entry(s2, a2, p).unwrap();
        b.add_exit(s1, ret, r1).unwrap();
        b.add_exit(s2, ret, r2).unwrap();
        (b.finish(), vec![r1, r2, a1, a2, ret, p], o1, o2)
    }

    #[test]
    fn handles_agree_with_legacy_engines_for_every_kind() {
        let (pag, vars, ..) = two_callers();
        for kind in EngineKind::ALL {
            let session = Session::new(&pag, kind);
            let mut handle = session.handle();
            let mut legacy = kind.build(&pag, EngineConfig::default());
            assert_eq!(handle.name(), legacy.name());
            for &v in &vars {
                let a = handle.points_to(v);
                let b = legacy.points_to(v);
                assert_eq!(a.resolved, b.resolved, "{kind} on {v:?}");
                assert_eq!(a.pts, b.pts, "{kind} on {v:?}");
            }
        }
    }

    #[test]
    fn run_batch_matches_sequential_at_any_thread_count() {
        let (pag, vars, ..) = two_callers();
        let sequential: Vec<QueryResult> = {
            let mut engine = DynSum::new(&pag);
            vars.iter().map(|&v| engine.points_to(v)).collect()
        };
        for threads in [1, 2, 4, 7] {
            let mut session = Session::new(&pag, EngineKind::DynSum);
            let results = session.run_batch_vars(&vars, threads);
            assert_eq!(results.len(), sequential.len());
            for (got, want) in results.iter().zip(&sequential) {
                assert_eq!(got.resolved, want.resolved, "threads={threads}");
                assert_eq!(got.pts, want.pts, "threads={threads}");
            }
            assert!(session.summary_count() > 0, "shards merged on join");
        }
    }

    #[test]
    fn merged_shards_warm_later_batches() {
        let (pag, vars, ..) = two_callers();
        let mut session = Session::new(&pag, EngineKind::DynSum);
        session.run_batch_vars(&vars, 2);
        let after_first = session.summary_count();
        assert!(after_first > 0);
        // A warm handle over the merged cache hits it immediately.
        let mut handle = session.handle();
        let r = handle.points_to(vars[0]);
        assert!(r.stats.cache_hits > 0, "batch summaries must be reusable");
        // Re-running the same batch discovers nothing new.
        session.run_batch_vars(&vars, 4);
        assert_eq!(session.summary_count(), after_first);
    }

    #[test]
    fn absorb_reinterns_shard_stacks() {
        // A graph whose cached summaries carry non-empty field stacks in
        // their keys and boundaries, so absorbing the shard exercises the
        // id re-interning path: r = get(c) where get loads this.f.
        let mut b = PagBuilder::new();
        let main = b.add_method("main", None).unwrap();
        let get = b.add_method("get", None).unwrap();
        let f = b.field("f");
        let this_g = b.add_local("this_g", get, None).unwrap();
        let ret = b.add_local("ret", get, None).unwrap();
        b.add_load(f, this_g, ret).unwrap();
        let c = b.add_local("c", main, None).unwrap();
        let x = b.add_local("x", main, None).unwrap();
        let r = b.add_local("r", main, None).unwrap();
        let oc = b.add_obj("oc", None, Some(main)).unwrap();
        let ox = b.add_obj("ox", None, Some(main)).unwrap();
        b.add_new(oc, c).unwrap();
        b.add_new(ox, x).unwrap();
        b.add_store(f, x, c).unwrap();
        let s = b.add_call_site("1", main).unwrap();
        b.add_entry(s, c, this_g).unwrap();
        b.add_exit(s, ret, r).unwrap();
        let pag = b.finish();

        let mut session = Session::new(&pag, EngineKind::DynSum);
        let shard = {
            let mut h = session.handle();
            h.points_to(r);
            h.into_summaries()
        };
        assert!(!shard.is_empty());
        let added = session.absorb(shard);
        assert_eq!(session.summary_count(), added);
        // The merged summaries answer correctly from the shared cache.
        let mut h = session.handle();
        let res = h.points_to(r);
        assert!(res.resolved);
        assert!(res.pts.contains_obj(ox));
        assert!(res.stats.cache_hits > 0);
        // Absorbing the same facts twice adds nothing.
        let shard2 = h.into_summaries();
        assert_eq!(session.absorb(shard2), 0);
    }

    #[test]
    fn refinepts_session_respects_client_predicates() {
        let (pag, vars, o1, _) = two_callers();
        let mut session = Session::new(&pag, EngineKind::RefinePts);
        let check = |pts: &dynsum_cfl::PointsToSet| pts.contains_obj(o1);
        let queries = [
            SessionQuery::with_check(vars[0], &check),
            SessionQuery::new(vars[1]),
        ];
        let results = session.run_batch(&queries, 2);
        assert!(results[0].resolved && results[1].resolved);
    }

    #[test]
    fn session_invalidation_evicts_method_summaries() {
        let (pag, vars, ..) = two_callers();
        let mut session = Session::new(&pag, EngineKind::DynSum);
        session.run_batch_vars(&vars, 2);
        let before = session.summary_count();
        let id = pag.find_method("id").unwrap();
        let evicted = session.invalidate_method(id);
        assert!(evicted > 0);
        assert_eq!(session.summary_count(), before - evicted);
        // Queries still come out right afterwards.
        let mut h = session.handle();
        assert!(h.points_to(vars[0]).resolved);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (pag, ..) = two_callers();
        let mut session = Session::new(&pag, EngineKind::DynSum);
        assert!(session.run_batch_vars(&[], 4).is_empty());
    }
}
