//! The `Session` API: shared immutable analysis state plus cheap,
//! `Send` per-thread query handles.
//!
//! The paper's economics are about serving *streams* of demand queries
//! cheaply by reusing context-independent summaries (§4, Figure 5);
//! those streams are embarrassingly parallel once the mutable per-query
//! machinery is split off the shareable state. A [`Session`] freezes
//! everything queries only read — the PAG, the [`EngineConfig`], the
//! engine kind, DYNSUM's accumulated summary cache or STASUM's
//! precomputed relative store — and [`Session::handle`] hands out
//! lightweight [`QueryHandle`]s owning the interning pools, worklist
//! buffers, and (for DYNSUM) a private cache *shard*. Handles implement
//! [`DemandPointsTo`], so everything written against the legacy engines
//! works against a handle unchanged.
//!
//! [`Session::run_batch`] executes a query batch across scoped threads
//! with a **sharded, merge-on-join** cache discipline: every worker reads
//! the session cache frozen at batch start, accumulates fresh summaries
//! in its own shard, and the shards are merged back (re-interning
//! field-stack ids) when the workers join. Combined with deterministic
//! budget accounting (reusing a summary charges its recorded cold cost —
//! see [`Summary::cost`]), every query's result is a pure function of
//! `(pag, config, query)`: batches return results **byte-identical** to
//! sequential execution at any thread count.
//!
//! # Cache lifecycle
//!
//! The session is built for **long-lived query streams** (the paper's
//! JIT/IDE regime, §1/§7), which demands bounded memory and amortized
//! per-batch overhead:
//!
//! * **Size-capped eviction** — with
//!   [`EngineConfig::max_cached_summaries`] set, a clock (second-chance)
//!   sweep runs over the shared cache at every [`Session::absorb`] merge
//!   point (and over each worker's in-flight shard after every query),
//!   so the cache never exceeds the cap no matter how long the stream
//!   runs. Eviction cannot change results: deterministic reuse
//!   accounting makes every outcome cache-independent by construction,
//!   so an evicted summary is recomputed at exactly the budget price its
//!   reuse would have charged.
//! * **Warm worker reuse** — `run_batch` recycles worker scratch
//!   (worklist buffers, PPTA stacks, shard pools) across calls instead
//!   of rebuilding it per batch, and handles receive the session's
//!   field-stack pool as an O(1) frozen snapshot
//!   ([`StackPool::freeze`]) instead of a deep clone. The absorb merge
//!   detects the shared snapshot prefix and re-interns only the ids a
//!   worker actually added.
//! * **Invalidation fencing** — summary shards are stamped with the
//!   session's invalidation *epoch* at handle creation;
//!   [`Session::invalidate_method`] bumps the epoch, so a shard detached
//!   before an invalidation can never re-absorb stale summaries for the
//!   invalidated method afterwards (counted by
//!   [`Session::stale_rejections`]).
//! * **Spawn resilience** — if the host cannot spawn a batch worker
//!   (stack/rlimit pressure), the batch degrades to fewer workers —
//!   ultimately running chunks on the caller's thread — instead of
//!   panicking, and [`Session::spawn_failures`] counts the degradations.
//! * **Fault isolation** — every per-query evaluation inside a batch is
//!   wrapped in `catch_unwind`: a panicking query is reported as a
//!   per-query [`Outcome::Panicked`] result while the rest of the batch
//!   completes, and the unwound worker's scratch — including its
//!   in-flight summary shard — is discarded wholesale rather than
//!   absorbed. Batches accept a [`BatchControl`] carrying a shared
//!   [`CancelToken`], a deadline, and (for tests and the differential
//!   fuzzer) a deterministic [`FaultPlan`]; all robustness counters are
//!   snapshotted by [`Session::health`].

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use dynsum_cfl::sync::atomic::{AtomicUsize, Ordering};
use dynsum_cfl::sync::thread;
use std::time::Instant;

use dynsum_cfl::{
    CancelToken, FieldFrame, FieldStackId, FxHashMap, Interrupt, Outcome, QueryControl,
    QueryResult, StackPool,
};
use dynsum_pag::{MethodId, Pag, VarId};

use crate::driver::DriveParts;
use crate::dynsum::{dynsum_query, DynSum};
use crate::engine::{never_satisfied, ClientCheck, DemandPointsTo, EngineConfig};
use crate::norefine::{norefine_query, NoRefine};
use crate::refinepts::{refinepts_query, RefinePts};
use crate::search::SearchParts;
use crate::stasum::{stasum_precompute, stasum_query, StaSum, StaSumOptions, StaSumShared};
use crate::summary::{CacheStats, Summary, SummaryCache};

/// The four demand-driven engines of Table 2, constructible by name.
///
/// Used both to pick a [`Session`]'s engine and to build standalone
/// [`DemandPointsTo`] boxes (the benchmark harness's historical API).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// NOREFINE baseline.
    NoRefine,
    /// REFINEPTS baseline.
    RefinePts,
    /// DYNSUM (the paper's contribution).
    DynSum,
    /// STASUM static-summary comparison point.
    StaSum,
}

impl EngineKind {
    /// All four engines, in the paper's table order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::NoRefine,
        EngineKind::RefinePts,
        EngineKind::DynSum,
        EngineKind::StaSum,
    ];

    /// The three timed engines of Table 4, in the paper's row order.
    pub const TABLE4: [EngineKind; 3] = [
        EngineKind::NoRefine,
        EngineKind::RefinePts,
        EngineKind::DynSum,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::NoRefine => "NOREFINE",
            EngineKind::RefinePts => "REFINEPTS",
            EngineKind::DynSum => "DYNSUM",
            EngineKind::StaSum => "STASUM",
        }
    }

    /// Parses a table name back to a kind, case-insensitively
    /// (`"dynsum"`, `"DYNSUM"`, …). The inverse of [`name`](Self::name);
    /// CLI front-ends (`fuzz_engines --engine`) use it via the
    /// [`FromStr`](std::str::FromStr) impl.
    pub fn parse(s: &str) -> Option<EngineKind> {
        EngineKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
    }

    /// Instantiates a fresh standalone engine over `pag`.
    pub fn build<'p>(self, pag: &'p Pag, config: EngineConfig) -> Box<dyn DemandPointsTo + 'p> {
        match self {
            EngineKind::NoRefine => Box::new(NoRefine::with_config(pag, config)),
            EngineKind::RefinePts => Box::new(RefinePts::with_config(pag, config)),
            EngineKind::DynSum => Box::new(DynSum::with_config(pag, config)),
            EngineKind::StaSum => {
                Box::new(StaSum::precompute_with(pag, config, Default::default()))
            }
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EngineKind::parse(s).ok_or_else(|| {
            format!("unknown engine `{s}` (expected NOREFINE, REFINEPTS, DYNSUM or STASUM)")
        })
    }
}

/// One query in a batch: the variable plus the client-satisfaction
/// predicate (ignored by the engines without refinement).
#[derive(Clone, Copy)]
pub struct SessionQuery<'a> {
    /// The queried variable (`pointsTo(var, ∅)`).
    pub var: VarId,
    /// The client predicate — must be `Sync` so one reference can serve
    /// every worker thread (see [`ClientCheck`]).
    pub satisfied: ClientCheck<'a>,
}

impl<'a> SessionQuery<'a> {
    /// A full-precision query (the predicate is never satisfied).
    pub fn new(var: VarId) -> SessionQuery<'static> {
        SessionQuery {
            var,
            satisfied: &never_satisfied,
        }
    }

    /// A query with a client predicate.
    pub fn with_check(var: VarId, satisfied: ClientCheck<'a>) -> Self {
        SessionQuery { var, satisfied }
    }
}

impl std::fmt::Debug for SessionQuery<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionQuery")
            .field("var", &self.var)
            .finish_non_exhaustive()
    }
}

/// Batch-wide interruption controls for [`Session::run_batch_with`]:
/// a shared cancel token, a deadline applied to every query, the ticket
/// poll cadence, and an optional deterministic [`FaultPlan`].
///
/// The default control never interrupts — [`Session::run_batch`] is
/// exactly `run_batch_with(queries, threads, &BatchControl::default())`.
#[derive(Debug, Clone, Default)]
pub struct BatchControl {
    /// Cancel token observed by every query in the batch. Cancelling it
    /// interrupts in-flight queries within one poll window and makes
    /// queries not yet started return immediately.
    pub cancel: Option<Arc<CancelToken>>,
    /// Deadline applied to every query in the batch.
    pub deadline: Option<Instant>,
    /// Budget-charge poll cadence forwarded to each query's ticket
    /// (0 = the [`QueryControl`] default).
    pub poll_every: u64,
    /// Deterministic fault-injection plan, for tests and the
    /// differential fuzzer's fault regime. `None` in production.
    pub faults: Option<FaultPlan>,
}

impl BatchControl {
    /// The per-query control for the query at global batch index
    /// `query_index`: batch-wide token/deadline plus any injected fuse
    /// the fault plan pins to this index (a cancel fuse and a deadline
    /// fuse on the same index keep the deadline one).
    fn query_control(&self, query_index: usize) -> QueryControl {
        let mut qc = QueryControl::new();
        if let Some(token) = &self.cancel {
            qc = qc.cancelled_by(Arc::clone(token));
        }
        if let Some(deadline) = self.deadline {
            qc = qc.deadline_at(deadline);
        }
        if self.poll_every != 0 {
            qc = qc.poll_every(self.poll_every);
        }
        if let Some(plan) = &self.faults {
            if let Some(&at) = plan.cancel_after.get(&query_index) {
                qc = qc.fused_after(at, Interrupt::Cancelled);
            }
            if let Some(&at) = plan.deadline_after.get(&query_index) {
                qc = qc.fused_after(at, Interrupt::Deadline);
            }
        }
        qc
    }

    fn injects_panic(&self, query_index: usize) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|plan| plan.panic_queries.contains(&query_index))
    }

    fn injects_spawn_failure(&self, worker_index: usize) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|plan| plan.fail_spawns.contains(&worker_index))
    }
}

/// A deterministic fault-injection plan for [`BatchControl::faults`].
///
/// Every action is keyed by a count or an index — no wall clock, no
/// cross-thread races — so a plan replays identically at any thread
/// count and on any machine. Batch query indices are **global** (input
/// order); worker indices are the deterministic spawn order
/// `0..threads` of [`Session::run_batch`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Global query indices whose evaluation panics (injected inside the
    /// worker's `catch_unwind`, before the engine runs).
    pub panic_queries: BTreeSet<usize>,
    /// Global query index → budget-charge count after which that query
    /// trips [`Outcome::Cancelled`] (a deterministic stand-in for a
    /// racy token cancellation).
    pub cancel_after: BTreeMap<usize, u64>,
    /// Global query index → budget-charge count after which that query
    /// trips [`Outcome::DeadlineExceeded`].
    pub deadline_after: BTreeMap<usize, u64>,
    /// Worker indices (spawn order, `0..threads`) whose spawn is forced
    /// to fail, exercising the degradation path: the batch runs on the
    /// surviving workers — ultimately on the calling thread when none
    /// survive (counted by [`Session::spawn_failures`]). Ignored by
    /// 1-thread batches, which spawn nothing.
    pub fail_spawns: BTreeSet<usize>,
    /// `write` call index after which snapshot saves fail. `run_batch`
    /// itself never saves snapshots; IO-fault harnesses (the snapshot
    /// unit tests, the fuzzer's fault regime) consume this to construct
    /// a failing writer around [`Session::save_snapshot`].
    pub snapshot_io_after: Option<u64>,
}

impl FaultPlan {
    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.panic_queries.is_empty()
            && self.cancel_after.is_empty()
            && self.deadline_after.is_empty()
            && self.fail_spawns.is_empty()
            && self.snapshot_io_after.is_none()
    }
}

/// A point-in-time snapshot of a session's robustness counters,
/// returned by [`Session::health`]. All counters are lifetime totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionHealth {
    /// Batch workers that could not be spawned and were degraded to
    /// in-line execution ([`Session::spawn_failures`]).
    pub spawn_failures: u64,
    /// Stale shard entries rejected at absorb time
    /// ([`Session::stale_rejections`]).
    pub stale_rejections: u64,
    /// Summaries evicted from the shared cache by the size-cap sweep.
    pub evictions: u64,
    /// Batch queries that returned [`Outcome::Cancelled`].
    pub cancellations: u64,
    /// Batch queries that returned [`Outcome::DeadlineExceeded`].
    pub deadline_trips: u64,
    /// Batch queries that panicked and were isolated
    /// ([`Outcome::Panicked`]).
    pub query_panics: u64,
}

/// The engine-specific shared (read-only between merges) half.
#[derive(Debug)]
pub(crate) enum SharedState {
    /// NOREFINE and REFINEPTS carry no cross-query state at all.
    NoRefine,
    RefinePts,
    /// DYNSUM: the accumulated summary cache plus the field-stack pool
    /// its keys are interned in. Handles clone the pool (ids stay
    /// aligned) and extend their clones privately.
    DynSum {
        cache: SummaryCache,
        fields: StackPool<FieldFrame>,
    },
    /// STASUM: the frozen all-pairs relative summary store
    /// (pool-independent inline field arrays).
    StaSum(StaSumShared),
}

/// Immutable, shareable analysis state: a frozen PAG, an engine
/// configuration and kind, and the engine's shareable half (DYNSUM's
/// summary cache / STASUM's precomputed store).
///
/// `Session` is `Send + Sync`; [`handle`](Self::handle) hands out `Send`
/// [`QueryHandle`]s that borrow it, so one warm session can serve any
/// number of threads. Mutation (merging a handle's summary shard back,
/// evicting summaries) goes through `&mut self` — between batches, never
/// during one.
///
/// # Examples
///
/// ```
/// use dynsum_core::{DemandPointsTo, EngineKind, Session};
/// use dynsum_pag::PagBuilder;
///
/// let mut b = PagBuilder::new();
/// let m = b.add_method("main", None)?;
/// let v = b.add_local("v", m, None)?;
/// let o = b.add_obj("o1", None, Some(m))?;
/// b.add_new(o, v)?;
/// let pag = b.finish();
///
/// let session = Session::new(&pag, EngineKind::DynSum);
/// let mut handle = session.handle();
/// assert!(handle.points_to(v).pts.contains_obj(o));
/// # Ok::<(), dynsum_pag::BuildError>(())
/// ```
#[derive(Debug)]
pub struct Session<'p> {
    pag: &'p Pag,
    config: EngineConfig,
    kind: EngineKind,
    pub(crate) state: SharedState,
    /// Invalidation epoch: bumped by [`invalidate_method`]
    /// (Self::invalidate_method); shards detached under an older epoch
    /// cannot re-absorb summaries of methods invalidated since.
    pub(crate) epoch: u64,
    /// Epoch at which each method was last invalidated.
    pub(crate) invalidated_at: FxHashMap<MethodId, u64>,
    /// Warm worker scratch recycled across [`run_batch`]
    /// (Self::run_batch) calls: worklist/PPTA buffers and shard pools
    /// stay allocated between batches.
    warm: Vec<HandleScratch>,
    /// Lifetime count of worker-spawn failures degraded gracefully.
    spawn_failures: u64,
    /// Lifetime count of stale (post-invalidation) shard entries
    /// rejected at absorb time.
    stale_rejected: u64,
    /// Lifetime count of batch queries that returned
    /// [`Outcome::Cancelled`].
    cancellations: u64,
    /// Lifetime count of batch queries that returned
    /// [`Outcome::DeadlineExceeded`].
    deadline_trips: u64,
    /// Lifetime count of batch queries that panicked and were isolated.
    query_panics: u64,
}

impl<'p> Session<'p> {
    /// Creates a session with the default configuration. STASUM sessions
    /// run their whole-program precomputation here.
    pub fn new(pag: &'p Pag, kind: EngineKind) -> Self {
        Self::with_config(pag, kind, EngineConfig::default())
    }

    /// Creates a session with an explicit configuration (STASUM uses
    /// default [`StaSumOptions`]; see
    /// [`with_stasum_options`](Self::with_stasum_options)).
    pub fn with_config(pag: &'p Pag, kind: EngineKind, config: EngineConfig) -> Self {
        let state = match kind {
            EngineKind::NoRefine => SharedState::NoRefine,
            EngineKind::RefinePts => SharedState::RefinePts,
            EngineKind::DynSum => SharedState::DynSum {
                cache: SummaryCache::new(),
                fields: StackPool::new(),
            },
            EngineKind::StaSum => {
                SharedState::StaSum(stasum_precompute(pag, &config, StaSumOptions::default()))
            }
        };
        Session {
            pag,
            config,
            kind,
            state,
            epoch: 0,
            invalidated_at: FxHashMap::default(),
            warm: Vec::new(),
            spawn_failures: 0,
            stale_rejected: 0,
            cancellations: 0,
            deadline_trips: 0,
            query_panics: 0,
        }
    }

    /// Creates a STASUM session with explicit precomputation options.
    pub fn with_stasum_options(pag: &'p Pag, config: EngineConfig, options: StaSumOptions) -> Self {
        Session {
            pag,
            config,
            kind: EngineKind::StaSum,
            state: SharedState::StaSum(stasum_precompute(pag, &config, options)),
            epoch: 0,
            invalidated_at: FxHashMap::default(),
            warm: Vec::new(),
            spawn_failures: 0,
            stale_rejected: 0,
            cancellations: 0,
            deadline_trips: 0,
            query_panics: 0,
        }
    }

    /// The frozen graph under analysis.
    pub fn pag(&self) -> &'p Pag {
        self.pag
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Which engine this session runs.
    pub fn engine(&self) -> EngineKind {
        self.kind
    }

    /// Number of summaries in the shared state: DYNSUM's merged cache
    /// size (the Figure 5 numerator) or STASUM's precomputed count; 0
    /// for the memorization-free engines.
    pub fn summary_count(&self) -> usize {
        match &self.state {
            SharedState::DynSum { cache, .. } => cache.len(),
            SharedState::StaSum(shared) => shared.stats().summaries,
            _ => 0,
        }
    }

    /// Creates a per-thread query handle borrowing this session.
    ///
    /// Handles are `Send` and cheap: pools, worklist buffers, and (for
    /// DYNSUM) an empty cache shard layered over the shared cache. Any
    /// number may exist concurrently. The handle's field-stack pool is
    /// an O(1) frozen snapshot of the session pool (not a deep clone):
    /// shared-cache keys resolve identically in it, and private pushes
    /// extend it copy-on-write.
    pub fn handle(&self) -> QueryHandle<'_, 'p> {
        QueryHandle {
            session: self,
            scratch: self.new_scratch(),
            epoch: self.epoch,
        }
    }

    /// Builds fresh handle scratch matching this session's engine.
    fn new_scratch(&self) -> HandleScratch {
        match &self.state {
            SharedState::NoRefine => HandleScratch::NoRefine(SearchParts::default()),
            SharedState::RefinePts => HandleScratch::RefinePts(SearchParts::default()),
            SharedState::DynSum { fields, .. } => HandleScratch::DynSum {
                parts: DriveParts {
                    // A frozen-snapshot clone: shared-cache keys resolve
                    // identically in the handle's pool, private pushes
                    // extend the snapshot.
                    fields: fields.clone(),
                    ..DriveParts::default()
                },
                shard: SummaryCache::new(),
            },
            SharedState::StaSum(_) => HandleScratch::StaSum(DriveParts::default()),
        }
    }

    /// Checks a warm worker scratch out of the pool (or builds a fresh
    /// one). Reused scratch keeps its buffers; only the field-stack pool
    /// is re-snapshotted so ids stay aligned with the current session
    /// pool and cache.
    fn checkout(&mut self) -> HandleScratch {
        match self.warm.pop() {
            Some(mut scratch) => {
                if let (
                    HandleScratch::DynSum { parts, shard },
                    SharedState::DynSum { fields, .. },
                ) = (&mut scratch, &self.state)
                {
                    debug_assert!(shard.is_empty(), "returned shards are drained");
                    debug_assert_eq!(shard.stats(), CacheStats::default());
                    parts.fields = fields.clone();
                }
                scratch
            }
            None => self.new_scratch(),
        }
    }

    /// Number of warm worker-scratch slots held for reuse by the next
    /// [`run_batch`](Self::run_batch) call.
    pub fn warm_workers(&self) -> usize {
        self.warm.len()
    }

    /// Drops the warm worker pool (for memory pressure; the next batch
    /// rebuilds scratch from scratch).
    pub fn shed_workers(&mut self) {
        self.warm.clear();
    }

    /// Lifetime count of batch workers that could not be spawned and
    /// were degraded to in-line execution instead of panicking.
    pub fn spawn_failures(&self) -> u64 {
        self.spawn_failures
    }

    /// Lifetime count of stale shard entries (computed before a
    /// [`invalidate_method`](Self::invalidate_method) call for a method
    /// it invalidated) rejected at absorb time.
    pub fn stale_rejections(&self) -> u64 {
        self.stale_rejected
    }

    /// Snapshots every robustness counter into one [`SessionHealth`]
    /// value — the metrics surface for supervising daemons.
    pub fn health(&self) -> SessionHealth {
        SessionHealth {
            spawn_failures: self.spawn_failures,
            stale_rejections: self.stale_rejected,
            evictions: self.cache_stats().evictions,
            cancellations: self.cancellations,
            deadline_trips: self.deadline_trips,
            query_panics: self.query_panics,
        }
    }

    /// Tallies batch outcomes into the lifetime robustness counters.
    fn count_outcomes(&mut self, results: &[QueryResult]) {
        for r in results {
            match r.outcome {
                Outcome::Cancelled => self.cancellations += 1,
                Outcome::DeadlineExceeded => self.deadline_trips += 1,
                Outcome::Panicked => self.query_panics += 1,
                Outcome::Resolved | Outcome::OverBudget => {}
            }
        }
    }

    /// Lifetime hit/miss/eviction counters of the shared summary cache
    /// (all zero for engines without one). `stats().lookups()` equals
    /// the total lookups of every absorbed shard — unmerged handle
    /// shards are not yet included.
    pub fn cache_stats(&self) -> CacheStats {
        match &self.state {
            SharedState::DynSum { cache, .. } => cache.stats(),
            _ => CacheStats::default(),
        }
    }

    /// Merges a handle's summary shard (see
    /// [`QueryHandle::into_summaries`]) into the shared cache, returning
    /// how many entries were new. Field-stack ids are re-interned into
    /// the session pool; duplicate keys keep the existing entry (summary
    /// contents are canonical per key). Entries for methods invalidated
    /// since the shard's handle was created are rejected (see
    /// [`stale_rejections`](Self::stale_rejections)), and the size cap
    /// — [`EngineConfig::max_cached_summaries`] — is enforced after the
    /// merge. No-op for engines without a cache.
    pub fn absorb(&mut self, shard: SummaryShard) -> usize {
        let SummaryShard {
            cache: shard_cache,
            fields: shard_fields,
            epoch: shard_epoch,
        } = shard;
        let added = self.absorb_parts(&shard_cache, &shard_fields, shard_epoch);
        // Release the shard's snapshot before freezing, so the freeze
        // can move the shared prefix instead of deep-copying it.
        drop(shard_fields);
        self.finish_merge();
        added
    }

    /// The merge body, borrowing the shard so the warm-worker path can
    /// drain and keep it. Does **not** enforce the cap or refreeze the
    /// pool — callers run [`finish_merge`](Self::finish_merge) once
    /// after the last shard of a batch.
    fn absorb_parts(
        &mut self,
        shard_cache: &SummaryCache,
        shard_fields: &StackPool<FieldFrame>,
        shard_epoch: u64,
    ) -> usize {
        let pag = self.pag;
        let invalidated_at = &self.invalidated_at;
        let mut stale = 0u64;
        let added = match &mut self.state {
            SharedState::DynSum { cache, fields } => {
                cache.absorb_counters(shard_cache);
                let before = cache.len();
                // Ids at or below the shared frozen prefix denote the
                // same stacks in both pools — the steady-state fast
                // path: a worker that interned nothing new skips
                // translation entirely.
                let shared = fields.shared_base_len(shard_fields) as u32;
                let mut memo: FxHashMap<FieldStackId, FieldStackId> = FxHashMap::default();
                for (&(node, f, dir), sum) in shard_cache.entries() {
                    if let Some(m) = pag.method_of(node) {
                        if invalidated_at.get(&m).is_some_and(|&e| e > shard_epoch) {
                            stale += 1;
                            continue;
                        }
                    }
                    // Translation is memoized, so deciding `changed`
                    // first and re-walking only when a rewrite is needed
                    // keeps the common case (no private extension: every
                    // id maps to itself) free of per-summary allocation.
                    let f2 = translate(shard_fields, fields, &mut memo, shared, f);
                    let changed = f2 != f
                        || sum.boundaries.iter().any(|&(_, bf, _)| {
                            translate(shard_fields, fields, &mut memo, shared, bf) != bf
                        });
                    let entry = if changed {
                        let boundaries = sum
                            .boundaries
                            .iter()
                            .map(|&(n, bf, d)| {
                                (n, translate(shard_fields, fields, &mut memo, shared, bf), d)
                            })
                            .collect();
                        Arc::new(Summary {
                            objs: sum.objs.clone(),
                            boundaries,
                            cost: sum.cost,
                        })
                    } else {
                        Arc::clone(sum)
                    };
                    cache.insert_if_absent((node, f2, dir), entry);
                }
                cache.len() - before
            }
            _ => 0,
        };
        self.stale_rejected += stale;
        added
    }

    /// Post-merge bookkeeping: sweep the shared cache down to the size
    /// cap and refreeze the session pool so the next round of handle
    /// snapshots is O(1) again.
    fn finish_merge(&mut self) {
        if let SharedState::DynSum { cache, fields } = &mut self.state {
            if let Some(cap) = self.config.max_cached_summaries {
                cache.enforce_cap(cap);
            }
            fields.freeze();
        }
    }

    /// Evicts the shared summaries of one method (the incremental-edit
    /// story — see [`DynSum::invalidate_method`]). Returns the number of
    /// evicted entries; 0 for engines without a cache.
    ///
    /// Outstanding shards are fenced, not drained: the session's
    /// invalidation epoch is bumped, and [`absorb`](Self::absorb)
    /// rejects entries for this method from any shard whose handle was
    /// created before this call — stale summaries can never re-enter
    /// the shared cache. Handles created *after* this call recompute
    /// and re-absorb the method's summaries normally.
    pub fn invalidate_method(&mut self, method: MethodId) -> usize {
        let pag = self.pag;
        match &mut self.state {
            SharedState::DynSum { cache, .. } => {
                self.epoch += 1;
                self.invalidated_at.insert(method, self.epoch);
                cache.evict_where(|&(node, _, _)| pag.method_of(node) == Some(method))
            }
            _ => 0,
        }
    }

    /// Runs a query batch on up to `threads` worker threads and returns
    /// one result per query, in input order.
    ///
    /// Work is distributed by **dynamic claiming**: workers pull the
    /// next unclaimed query index off a shared atomic cursor, so one
    /// expensive query occupies one worker while the others drain the
    /// rest of the batch — no worker idles behind a static split (the
    /// skew case of mixed daemon workloads). Workers read the session
    /// cache frozen at batch start and collect fresh summaries in
    /// private shards; the shards are merged back here after all
    /// workers join (so later batches start warmer), the size cap is
    /// enforced on the merged cache, and the worker scratch (buffers,
    /// pools) is kept warm for the next call. Results — resolution
    /// flags and points-to sets, including the partial sets of
    /// over-budget queries — are **byte-identical to sequential
    /// execution** for every thread count and every claim
    /// interleaving: summary reuse charges its recorded cold cost
    /// against the per-query budget, so no query's outcome depends on
    /// what any other query cached or on which worker ran it.
    ///
    /// A 1-thread batch runs directly on the calling thread — same
    /// checkout/merge machinery, no thread spawn — so per-batch
    /// overhead vs the legacy engine is just the merge. If a
    /// multi-thread batch's worker cannot be spawned (stack/rlimit
    /// pressure), the batch degrades to the workers that did spawn —
    /// the unclaimed queries are simply drained by fewer threads, by
    /// the calling thread alone if none spawned — rather than
    /// panicking; [`spawn_failures`](Self::spawn_failures) counts the
    /// degradations.
    ///
    /// Queries on the calling thread run PPTA recursion on the caller's
    /// stack — exactly like the legacy engines' `points_to` always has
    /// — which is typically smaller than
    /// [`EngineConfig::worker_stack_bytes`]. Callers with unusually
    /// deep-recursion workloads who relied on the worker reservation
    /// should pass `threads >= 2` (reserved-stack workers) or raise
    /// their own thread's stack.
    pub fn run_batch(&mut self, queries: &[SessionQuery<'_>], threads: usize) -> Vec<QueryResult> {
        self.run_batch_with(queries, threads, &BatchControl::default())
    }

    /// [`run_batch`](Self::run_batch) under a [`BatchControl`]: a shared
    /// cancel token and/or deadline observed by every query at
    /// budget-charge granularity, plus (for tests and the differential
    /// fuzzer) a deterministic [`FaultPlan`].
    ///
    /// Interrupted queries return their sound partial sets with
    /// [`Outcome::Cancelled`]/[`Outcome::DeadlineExceeded`]; a panicking
    /// query is isolated by `catch_unwind` and reported as
    /// [`Outcome::Panicked`] while the rest of the batch completes, and
    /// the unwound worker's scratch (shard included) is discarded rather
    /// than absorbed. None of this can change any later result:
    /// deterministic reuse accounting makes every outcome
    /// cache-independent, so a follow-up batch on this session is
    /// byte-identical to one on a fresh cold session.
    pub fn run_batch_with(
        &mut self,
        queries: &[SessionQuery<'_>],
        threads: usize,
        control: &BatchControl,
    ) -> Vec<QueryResult> {
        if queries.is_empty() {
            return Vec::new();
        }
        let threads = threads.clamp(1, queries.len());
        let epoch = self.epoch;
        if threads == 1 {
            // The sequential fast path: same slot checkout, chunk run,
            // and shard merge as the parallel path, minus the scoped
            // spawn/join a lone worker would only pay overhead for.
            let slot = self.checkout();
            let (out, scratch) = run_chunk(self, slot, queries, 0, epoch, control);
            self.retire_slot(scratch, epoch);
            self.finish_merge();
            self.count_outcomes(&out);
            return out;
        }
        let mut slots: Vec<HandleScratch> = (0..threads).map(|_| self.checkout()).collect();
        let stack_bytes = self.config.worker_stack_bytes;
        let sess: &Session<'p> = self;
        let cursor = AtomicUsize::new(0);
        let cursor = &cursor;
        let (per_worker, failures) = thread::scope(|scope| {
            let mut spawned = Vec::with_capacity(threads);
            let mut failures = 0u64;
            for wi in 0..threads {
                // The slot moves into the spawn closure, so a failed
                // spawn forfeits it; the surviving workers (or the
                // degraded in-line pass below) absorb its share of the
                // cursor (rare path, correctness unaffected).
                let slot = slots.pop().expect("one slot per worker");
                if control.injects_spawn_failure(wi) {
                    // An injected spawn failure forfeits the slot too,
                    // mirroring the real failure path exactly.
                    drop(slot);
                    failures += 1;
                    continue;
                }
                let spawn = thread::Builder::new()
                    .stack_size(stack_bytes)
                    .spawn_scoped(scope, move || {
                        run_stealing(sess, slot, queries, cursor, epoch, control)
                    });
                match spawn {
                    Ok(worker) => spawned.push(worker),
                    Err(_) => failures += 1,
                }
            }
            let mut per_worker: Vec<(Vec<(usize, QueryResult)>, HandleScratch)> =
                Vec::with_capacity(threads);
            if failures > 0 {
                // Degraded mode: the calling thread joins the claim
                // loop, overlapping any workers that did spawn, so the
                // batch always drains even when no worker could start.
                per_worker.push(run_stealing(
                    sess,
                    sess.new_scratch(),
                    queries,
                    cursor,
                    epoch,
                    control,
                ));
            }
            for worker in spawned {
                match worker.join() {
                    Ok(pair) => per_worker.push(pair),
                    // Per-query panics are caught inside the claim
                    // loop; a panic that still reaches the join is an
                    // engine bug outside any query — re-raise the
                    // original payload rather than masking it.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            (per_worker, failures)
        });
        self.spawn_failures += failures;
        // Scatter the claimed (index, result) pairs back into input
        // order; the claim loop visits every index exactly once, so
        // every cell fills.
        let mut scattered: Vec<Option<QueryResult>> = (0..queries.len()).map(|_| None).collect();
        for (out, scratch) in per_worker {
            for (i, r) in out {
                debug_assert!(scattered[i].is_none(), "each query claimed once");
                scattered[i] = Some(r);
            }
            self.retire_slot(scratch, epoch);
        }
        let results: Vec<QueryResult> = scattered
            .into_iter()
            .map(|r| r.expect("every query ran"))
            .collect();
        self.finish_merge();
        self.count_outcomes(&results);
        results
    }

    /// Merges a finished worker slot's shard into the shared cache and
    /// parks the scratch in the warm pool for the next batch.
    fn retire_slot(&mut self, mut scratch: HandleScratch, epoch: u64) {
        if let HandleScratch::DynSum { parts, shard } = &mut scratch {
            self.absorb_parts(shard, &parts.fields, epoch);
            // Drained after the counter/entry merge: absorbing the
            // same shard again next batch would double-count.
            shard.clear();
            // Release the snapshot too (checkout re-takes one): a
            // parked slot holding the base `Arc` would force the
            // post-merge `freeze` to deep-copy the prefix instead of
            // moving it.
            parts.fields.clear();
        }
        self.warm.push(scratch);
    }

    /// [`run_batch`](Self::run_batch) at full precision (no client
    /// predicates).
    pub fn run_batch_vars(&mut self, vars: &[VarId], threads: usize) -> Vec<QueryResult> {
        let queries: Vec<SessionQuery<'_>> = vars.iter().map(|&v| SessionQuery::new(v)).collect();
        self.run_batch(&queries, threads)
    }
}

/// One worker's dynamic claim loop: pull the next unclaimed global
/// query index off the shared cursor until the batch is drained,
/// returning the claimed `(index, result)` pairs together with the
/// scratch so [`Session::run_batch`] can scatter results back into
/// input order, drain the shard, and keep the scratch warm.
///
/// Which worker claims which index is racy and irrelevant: the
/// [`FaultPlan`] and per-query fuses key off the *global* index
/// claimed, and deterministic reuse accounting makes every result a
/// pure function of `(pag, config, query)` — so any interleaving
/// produces byte-identical results. The per-query `catch_unwind`
/// isolation is identical to [`run_chunk`]'s.
fn run_stealing<'s, 'p>(
    sess: &'s Session<'p>,
    scratch: HandleScratch,
    queries: &[SessionQuery<'_>],
    cursor: &AtomicUsize,
    epoch: u64,
    control: &BatchControl,
) -> (Vec<(usize, QueryResult)>, HandleScratch) {
    let mut h = QueryHandle {
        session: sess,
        scratch,
        epoch,
    };
    let mut out = Vec::new();
    loop {
        // Ordering::Relaxed — uniqueness comes from the RMW's
        // atomicity, not its ordering: no two workers can observe the
        // same counter value, so every index is claimed exactly once
        // regardless of how the claims interleave with anything else.
        // No data rides on the cursor (queries/scratch are passed by
        // reference, and the merge-on-join absorb happens after the
        // scope's join barrier, which is the ordering edge). Model-
        // checked: exactly-once claims (crates/modelcheck, `cursor_*`).
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        let q = match queries.get(i) {
            Some(q) => q,
            None => break,
        };
        let qc = control.query_control(i);
        let inject_panic = control.injects_panic(i);
        let run = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected query fault");
            }
            h.query_with(q.var, q.satisfied, &qc)
        }));
        out.push((
            i,
            run.unwrap_or_else(|_| {
                // Same discard discipline as `run_chunk`: nothing a
                // half-unwound query touched can reach the shared cache.
                h.scratch = sess.new_scratch();
                QueryResult::panicked()
            }),
        ));
    }
    (out, h.scratch)
}

/// Runs one contiguous chunk of a batch on (owned) worker scratch,
/// returning the results together with the scratch so the sequential
/// fast path of [`Session::run_batch`] can drain its shard and keep it
/// warm.
///
/// `base` is the chunk's first global query index — the key the
/// [`FaultPlan`] and per-query fuses are resolved against. Every query
/// evaluation runs under `catch_unwind`: a panic yields a per-query
/// [`QueryResult::panicked`] and replaces the handle's scratch (shard
/// included) with fresh state, so nothing a half-unwound query touched
/// can reach the shared cache.
fn run_chunk<'s, 'p>(
    sess: &'s Session<'p>,
    scratch: HandleScratch,
    chunk: &[SessionQuery<'_>],
    base: usize,
    epoch: u64,
    control: &BatchControl,
) -> (Vec<QueryResult>, HandleScratch) {
    let mut h = QueryHandle {
        session: sess,
        scratch,
        epoch,
    };
    let mut out = Vec::with_capacity(chunk.len());
    for (i, q) in chunk.iter().enumerate() {
        let qc = control.query_control(base + i);
        let inject_panic = control.injects_panic(base + i);
        let run = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected query fault");
            }
            h.query_with(q.var, q.satisfied, &qc)
        }));
        out.push(run.unwrap_or_else(|_| {
            // The unwound query may have left the scratch — and, for
            // DYNSUM, the in-flight shard — half-updated: discard it
            // wholesale. Summaries the *discarded* shard held are merely
            // recomputed later at the exact budget price their reuse
            // would have charged (deterministic accounting), so results
            // are unaffected.
            h.scratch = sess.new_scratch();
            QueryResult::panicked()
        }));
    }
    (out, h.scratch)
}

/// Translates a field-stack id interned in `from` into the equivalent id
/// in `to`, re-interning as needed. Memoized per merge. Ids at or below
/// `shared` — the frozen prefix the two pools share — are identical in
/// both pools and pass through untouched (the empty stack, raw 0, is
/// always below it).
fn translate(
    from: &StackPool<FieldFrame>,
    to: &mut StackPool<FieldFrame>,
    memo: &mut FxHashMap<FieldStackId, FieldStackId>,
    shared: u32,
    id: FieldStackId,
) -> FieldStackId {
    if id.as_raw() <= shared {
        return id;
    }
    if let Some(&t) = memo.get(&id) {
        return t;
    }
    // Walk down to a translated (or shared) suffix, then re-intern back
    // up.
    let mut chain: Vec<(FieldStackId, FieldFrame)> = Vec::new();
    let mut cur = id;
    let base = loop {
        if cur.as_raw() <= shared {
            break cur;
        }
        if let Some(&t) = memo.get(&cur) {
            break t;
        }
        let (top, rest) = from.pop(cur).expect("non-empty stack");
        chain.push((cur, top));
        cur = rest;
    };
    let mut t = base;
    for &(orig, elem) in chain.iter().rev() {
        t = to.push(t, elem);
        memo.insert(orig, t);
    }
    t
}

/// A handle's detached summary shard: the summaries it computed plus the
/// field-stack pool their keys are interned in, stamped with the
/// session's invalidation epoch at handle creation. Produced by
/// [`QueryHandle::into_summaries`], consumed by [`Session::absorb`]
/// (which rejects entries for methods invalidated after the stamp).
#[derive(Debug, Default)]
pub struct SummaryShard {
    pub(crate) cache: SummaryCache,
    pub(crate) fields: StackPool<FieldFrame>,
    pub(crate) epoch: u64,
}

impl SummaryShard {
    /// Number of summaries carried.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// `true` when the shard carries nothing.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

/// The engine-specific per-handle scratch half.
#[derive(Debug)]
enum HandleScratch {
    NoRefine(SearchParts),
    RefinePts(SearchParts),
    DynSum {
        parts: DriveParts,
        shard: SummaryCache,
    },
    StaSum(DriveParts),
}

/// A cheap, `Send` per-thread query endpoint borrowing a [`Session`].
///
/// Owns everything a query mutates — interning pools, worklist and PPTA
/// scratch, and (DYNSUM) a private summary shard layered over the shared
/// session cache. Implements [`DemandPointsTo`], so existing client code
/// runs against a handle unchanged.
#[derive(Debug)]
pub struct QueryHandle<'s, 'p> {
    session: &'s Session<'p>,
    scratch: HandleScratch,
    /// Session invalidation epoch at creation; stamps the detached
    /// shard so stale summaries cannot be re-absorbed after an
    /// invalidation.
    epoch: u64,
}

impl QueryHandle<'_, '_> {
    /// The session this handle queries.
    pub fn session(&self) -> &Session<'_> {
        self.session
    }

    /// Summaries accumulated in this handle's private shard (0 for
    /// engines without a cache).
    pub fn shard_len(&self) -> usize {
        match &self.scratch {
            HandleScratch::DynSum { shard, .. } => shard.len(),
            _ => 0,
        }
    }

    /// [`query`](DemandPointsTo::query) under an explicit
    /// [`QueryControl`] — a cancel token, deadline, or deterministic
    /// fuse observed at budget-charge granularity. A tripped control
    /// unwinds exactly like budget exhaustion: the result carries the
    /// sound partial set with the tripping [`Outcome`], and the handle
    /// (shard included) remains valid for further queries.
    pub fn query_with(
        &mut self,
        v: VarId,
        satisfied: ClientCheck<'_>,
        control: &QueryControl,
    ) -> QueryResult {
        let pag = self.session.pag;
        let config = &self.session.config;
        match (&mut self.scratch, &self.session.state) {
            (HandleScratch::NoRefine(parts), _) => {
                norefine_query(pag, config, parts, v, &[], control)
            }
            (HandleScratch::RefinePts(parts), _) => {
                refinepts_query(pag, config, parts, v, satisfied, control)
            }
            (HandleScratch::DynSum { parts, shard }, SharedState::DynSum { cache, .. }) => {
                dynsum_query(
                    pag,
                    config,
                    Some(cache),
                    shard,
                    parts,
                    v,
                    &[],
                    control,
                    None,
                )
            }
            (HandleScratch::StaSum(parts), SharedState::StaSum(shared)) => {
                stasum_query(pag, config, shared, parts, v, &[], control)
            }
            _ => unreachable!("handle scratch always matches its session's state"),
        }
    }

    /// Detaches the handle's summary shard for
    /// [`Session::absorb`]. Empty for engines without a cache.
    pub fn into_summaries(self) -> SummaryShard {
        match self.scratch {
            HandleScratch::DynSum { parts, shard } => SummaryShard {
                cache: shard,
                fields: parts.fields,
                epoch: self.epoch,
            },
            _ => SummaryShard::default(),
        }
    }
}

impl DemandPointsTo for QueryHandle<'_, '_> {
    fn name(&self) -> &'static str {
        self.session.kind.name()
    }

    fn query(&mut self, v: VarId, satisfied: ClientCheck<'_>) -> QueryResult {
        self.query_with(v, satisfied, &QueryControl::default())
    }

    /// Shared summaries plus this handle's unmerged shard.
    fn summary_count(&self) -> usize {
        self.session.summary_count() + self.shard_len()
    }

    /// Drops the handle's private state (shard included); the session's
    /// shared summaries are untouched.
    fn reset(&mut self) {
        self.scratch = self.session.new_scratch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsum_pag::{ObjId, PagBuilder};

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn session_is_send_sync_and_handles_are_send() {
        assert_send::<Session<'static>>();
        assert_sync::<Session<'static>>();
        assert_send::<QueryHandle<'static, 'static>>();
        assert_send::<SessionQuery<'static>>();
        assert_sync::<SessionQuery<'static>>();
        assert_send::<SummaryShard>();
        assert_send::<EngineKind>();
    }

    /// id(p){return p} from two sites — the canonical context test.
    fn two_callers() -> (Pag, Vec<VarId>, ObjId, ObjId) {
        let mut b = PagBuilder::new();
        let main = b.add_method("main", None).unwrap();
        let id = b.add_method("id", None).unwrap();
        let a1 = b.add_local("a1", main, None).unwrap();
        let a2 = b.add_local("a2", main, None).unwrap();
        let r1 = b.add_local("r1", main, None).unwrap();
        let r2 = b.add_local("r2", main, None).unwrap();
        let p = b.add_local("p", id, None).unwrap();
        let ret = b.add_local("ret", id, None).unwrap();
        let o1 = b.add_obj("o1", None, Some(main)).unwrap();
        let o2 = b.add_obj("o2", None, Some(main)).unwrap();
        b.add_new(o1, a1).unwrap();
        b.add_new(o2, a2).unwrap();
        b.add_assign(p, ret).unwrap();
        let s1 = b.add_call_site("1", main).unwrap();
        let s2 = b.add_call_site("2", main).unwrap();
        b.add_entry(s1, a1, p).unwrap();
        b.add_entry(s2, a2, p).unwrap();
        b.add_exit(s1, ret, r1).unwrap();
        b.add_exit(s2, ret, r2).unwrap();
        (b.finish(), vec![r1, r2, a1, a2, ret, p], o1, o2)
    }

    #[test]
    fn handles_agree_with_legacy_engines_for_every_kind() {
        let (pag, vars, ..) = two_callers();
        for kind in EngineKind::ALL {
            let session = Session::new(&pag, kind);
            let mut handle = session.handle();
            let mut legacy = kind.build(&pag, EngineConfig::default());
            assert_eq!(handle.name(), legacy.name());
            for &v in &vars {
                let a = handle.points_to(v);
                let b = legacy.points_to(v);
                assert_eq!(a.resolved, b.resolved, "{kind} on {v:?}");
                assert_eq!(a.pts, b.pts, "{kind} on {v:?}");
            }
        }
    }

    #[test]
    fn run_batch_matches_sequential_at_any_thread_count() {
        let (pag, vars, ..) = two_callers();
        let sequential: Vec<QueryResult> = {
            let mut engine = DynSum::new(&pag);
            vars.iter().map(|&v| engine.points_to(v)).collect()
        };
        for threads in [1, 2, 4, 7] {
            let mut session = Session::new(&pag, EngineKind::DynSum);
            let results = session.run_batch_vars(&vars, threads);
            assert_eq!(results.len(), sequential.len());
            for (got, want) in results.iter().zip(&sequential) {
                assert_eq!(got.resolved, want.resolved, "threads={threads}");
                assert_eq!(got.pts, want.pts, "threads={threads}");
            }
            assert!(session.summary_count() > 0, "shards merged on join");
        }
    }

    #[test]
    fn merged_shards_warm_later_batches() {
        let (pag, vars, ..) = two_callers();
        let mut session = Session::new(&pag, EngineKind::DynSum);
        session.run_batch_vars(&vars, 2);
        let after_first = session.summary_count();
        assert!(after_first > 0);
        // A warm handle over the merged cache hits it immediately.
        let mut handle = session.handle();
        let r = handle.points_to(vars[0]);
        assert!(r.stats.cache_hits > 0, "batch summaries must be reusable");
        // Re-running the same batch discovers nothing new.
        session.run_batch_vars(&vars, 4);
        assert_eq!(session.summary_count(), after_first);
    }

    #[test]
    fn absorb_reinterns_shard_stacks() {
        // A graph whose cached summaries carry non-empty field stacks in
        // their keys and boundaries, so absorbing the shard exercises the
        // id re-interning path: r = get(c) where get loads this.f.
        let mut b = PagBuilder::new();
        let main = b.add_method("main", None).unwrap();
        let get = b.add_method("get", None).unwrap();
        let f = b.field("f");
        let this_g = b.add_local("this_g", get, None).unwrap();
        let ret = b.add_local("ret", get, None).unwrap();
        b.add_load(f, this_g, ret).unwrap();
        let c = b.add_local("c", main, None).unwrap();
        let x = b.add_local("x", main, None).unwrap();
        let r = b.add_local("r", main, None).unwrap();
        let oc = b.add_obj("oc", None, Some(main)).unwrap();
        let ox = b.add_obj("ox", None, Some(main)).unwrap();
        b.add_new(oc, c).unwrap();
        b.add_new(ox, x).unwrap();
        b.add_store(f, x, c).unwrap();
        let s = b.add_call_site("1", main).unwrap();
        b.add_entry(s, c, this_g).unwrap();
        b.add_exit(s, ret, r).unwrap();
        let pag = b.finish();

        let mut session = Session::new(&pag, EngineKind::DynSum);
        let shard = {
            let mut h = session.handle();
            h.points_to(r);
            h.into_summaries()
        };
        assert!(!shard.is_empty());
        let added = session.absorb(shard);
        assert_eq!(session.summary_count(), added);
        // The merged summaries answer correctly from the shared cache.
        let mut h = session.handle();
        let res = h.points_to(r);
        assert!(res.resolved);
        assert!(res.pts.contains_obj(ox));
        assert!(res.stats.cache_hits > 0);
        // Absorbing the same facts twice adds nothing.
        let shard2 = h.into_summaries();
        assert_eq!(session.absorb(shard2), 0);
    }

    #[test]
    fn refinepts_session_respects_client_predicates() {
        let (pag, vars, o1, _) = two_callers();
        let mut session = Session::new(&pag, EngineKind::RefinePts);
        let check = |pts: &dynsum_cfl::PointsToSet| pts.contains_obj(o1);
        let queries = [
            SessionQuery::with_check(vars[0], &check),
            SessionQuery::new(vars[1]),
        ];
        let results = session.run_batch(&queries, 2);
        assert!(results[0].resolved && results[1].resolved);
    }

    #[test]
    fn session_invalidation_evicts_method_summaries() {
        let (pag, vars, ..) = two_callers();
        let mut session = Session::new(&pag, EngineKind::DynSum);
        session.run_batch_vars(&vars, 2);
        let before = session.summary_count();
        let id = pag.find_method("id").unwrap();
        let evicted = session.invalidate_method(id);
        assert!(evicted > 0);
        assert_eq!(session.summary_count(), before - evicted);
        // Queries still come out right afterwards.
        let mut h = session.handle();
        assert!(h.points_to(vars[0]).resolved);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (pag, ..) = two_callers();
        let mut session = Session::new(&pag, EngineKind::DynSum);
        assert!(session.run_batch_vars(&[], 4).is_empty());
    }

    #[test]
    fn run_batch_recycles_worker_scratch() {
        let (pag, vars, ..) = two_callers();
        let mut session = Session::new(&pag, EngineKind::DynSum);
        assert_eq!(session.warm_workers(), 0);
        let first = session.run_batch_vars(&vars, 2);
        assert_eq!(session.warm_workers(), 2, "both slots returned warm");
        // Re-running on the warm pool gives identical results and does
        // not grow the pool.
        let second = session.run_batch_vars(&vars, 2);
        assert_eq!(session.warm_workers(), 2);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.resolved, b.resolved);
            assert_eq!(a.pts, b.pts);
        }
        // A wider batch grows it; shedding empties it.
        session.run_batch_vars(&vars, 4);
        assert_eq!(session.warm_workers(), 4);
        session.shed_workers();
        assert_eq!(session.warm_workers(), 0);
        assert!(session.run_batch_vars(&vars, 3).len() == vars.len());
    }

    #[test]
    fn unspawnable_workers_degrade_to_inline_execution() {
        let (pag, vars, ..) = two_callers();
        let want = {
            let mut session = Session::new(&pag, EngineKind::DynSum);
            session.run_batch_vars(&vars, 2)
        };
        // An absurd stack reservation makes every spawn fail; the batch
        // must still complete (on the calling thread) with identical
        // results and a nonzero warning counter.
        let config = EngineConfig {
            worker_stack_bytes: usize::MAX,
            ..EngineConfig::default()
        };
        let mut session = Session::with_config(&pag, EngineKind::DynSum, config);
        let got = session.run_batch_vars(&vars, 3);
        assert!(session.spawn_failures() > 0, "degradations must be counted");
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            assert_eq!(a.resolved, b.resolved);
            assert_eq!(a.pts, b.pts);
        }
        // Shards from in-line chunks still merge: later batches warm up.
        assert!(session.summary_count() > 0);
    }

    #[test]
    fn absorb_enforces_the_size_cap() {
        let (pag, vars, ..) = two_callers();
        let uncapped = {
            let mut s = Session::new(&pag, EngineKind::DynSum);
            s.run_batch_vars(&vars, 1);
            s.summary_count()
        };
        assert!(uncapped > 1);
        let cap = 1usize;
        let config = EngineConfig {
            max_cached_summaries: Some(cap),
            ..EngineConfig::default()
        };
        let mut session = Session::with_config(&pag, EngineKind::DynSum, config);
        let results = session.run_batch_vars(&vars, 2);
        assert!(session.summary_count() <= cap);
        assert!(session.cache_stats().evictions > 0);
        // Capped results match the uncapped session's byte for byte.
        let mut reference = Session::new(&pag, EngineKind::DynSum);
        let want = reference.run_batch_vars(&vars, 1);
        for (a, b) in results.iter().zip(&want) {
            assert_eq!(a.resolved, b.resolved);
            assert_eq!(a.pts, b.pts);
        }
    }

    #[test]
    fn stale_shards_cannot_resurrect_invalidated_summaries() {
        let (pag, vars, ..) = two_callers();
        let mut session = Session::new(&pag, EngineKind::DynSum);
        // Detach a shard computed before the invalidation.
        let shard = {
            let mut h = session.handle();
            for &v in &vars {
                h.points_to(v);
            }
            h.into_summaries()
        };
        assert!(!shard.is_empty());
        let id = pag.find_method("id").unwrap();
        session.invalidate_method(id);
        assert_eq!(session.summary_count(), 0, "nothing was merged yet");
        let added = session.absorb(shard);
        assert!(added > 0, "main's summaries are not stale");
        assert!(session.stale_rejections() > 0, "id's summaries are");
        let in_id = |s: &Session<'_>| {
            // No public key iteration: re-deriving `id`'s summaries via
            // eviction count is the observable.
            let mut probe = Session {
                pag: s.pag,
                config: s.config,
                kind: s.kind,
                state: match &s.state {
                    SharedState::DynSum { cache, fields } => SharedState::DynSum {
                        cache: cache.clone(),
                        fields: fields.clone(),
                    },
                    _ => unreachable!(),
                },
                epoch: s.epoch,
                invalidated_at: s.invalidated_at.clone(),
                warm: Vec::new(),
                spawn_failures: 0,
                stale_rejected: 0,
                cancellations: 0,
                deadline_trips: 0,
                query_panics: 0,
            };
            probe.invalidate_method(id)
        };
        assert_eq!(in_id(&session), 0, "no summaries of `id` were absorbed");
        // A post-invalidation handle repopulates the method normally.
        let shard2 = {
            let mut h = session.handle();
            for &v in &vars {
                h.points_to(v);
            }
            h.into_summaries()
        };
        session.absorb(shard2);
        assert!(in_id(&session) > 0, "fresh summaries for `id` re-absorbed");
        // And queries still answer correctly throughout.
        let mut h = session.handle();
        assert!(h.points_to(vars[0]).resolved);
    }

    #[test]
    fn batch_cancellation_is_counted_and_recoverable() {
        let (pag, vars, ..) = two_callers();
        let want = {
            let mut cold = Session::new(&pag, EngineKind::DynSum);
            cold.run_batch_vars(&vars, 1)
        };
        let mut session = Session::new(&pag, EngineKind::DynSum);
        let token = Arc::new(CancelToken::new());
        token.cancel();
        let control = BatchControl {
            cancel: Some(Arc::clone(&token)),
            poll_every: 1,
            ..BatchControl::default()
        };
        let queries: Vec<SessionQuery<'_>> = vars.iter().map(|&v| SessionQuery::new(v)).collect();
        let cancelled = session.run_batch_with(&queries, 2, &control);
        assert!(cancelled.iter().all(|r| r.outcome == Outcome::Cancelled));
        assert!(cancelled.iter().all(|r| !r.resolved));
        assert_eq!(session.health().cancellations, vars.len() as u64);
        // The cancelled batch leaves no trace: clean follow-up batches on
        // the same session match a cold session at every thread count.
        for threads in [1, 2, 4] {
            let after = session.run_batch_vars(&vars, threads);
            for (a, b) in after.iter().zip(&want) {
                assert_eq!(a.outcome, b.outcome, "threads={threads}");
                assert_eq!(a.pts, b.pts, "threads={threads}");
            }
        }
    }

    #[test]
    fn expired_batch_deadline_trips_every_query() {
        let (pag, vars, ..) = two_callers();
        let mut session = Session::new(&pag, EngineKind::DynSum);
        let control = BatchControl {
            deadline: Some(Instant::now()),
            poll_every: 1,
            ..BatchControl::default()
        };
        let queries: Vec<SessionQuery<'_>> = vars.iter().map(|&v| SessionQuery::new(v)).collect();
        let out = session.run_batch_with(&queries, 2, &control);
        assert!(out.iter().all(|r| r.outcome == Outcome::DeadlineExceeded));
        assert_eq!(session.health().deadline_trips, vars.len() as u64);
        // Normal service resumes without the deadline.
        assert!(session.run_batch_vars(&vars, 2).iter().all(|r| r.resolved));
    }

    #[test]
    fn injected_panic_is_isolated_per_query() {
        let (pag, vars, ..) = two_callers();
        let want = {
            let mut cold = Session::new(&pag, EngineKind::DynSum);
            cold.run_batch_vars(&vars, 1)
        };
        let mut session = Session::new(&pag, EngineKind::DynSum);
        let mut plan = FaultPlan::default();
        plan.panic_queries.insert(1);
        let control = BatchControl {
            faults: Some(plan),
            ..BatchControl::default()
        };
        let queries: Vec<SessionQuery<'_>> = vars.iter().map(|&v| SessionQuery::new(v)).collect();
        let out = session.run_batch_with(&queries, 2, &control);
        assert_eq!(out[1].outcome, Outcome::Panicked);
        assert!(out[1].pts.is_empty());
        for (i, (a, b)) in out.iter().zip(&want).enumerate() {
            if i != 1 {
                assert_eq!(a.outcome, b.outcome, "query {i}");
                assert_eq!(a.pts, b.pts, "query {i}");
            }
        }
        assert_eq!(session.health().query_panics, 1);
        // The poisoned worker's shard was discarded, not absorbed:
        // follow-up batches still match a cold session byte for byte.
        for threads in [1, 2, 4] {
            let after = session.run_batch_vars(&vars, threads);
            for (a, b) in after.iter().zip(&want) {
                assert_eq!(a.outcome, b.outcome, "threads={threads}");
                assert_eq!(a.pts, b.pts, "threads={threads}");
            }
        }
    }

    #[test]
    fn injected_spawn_failures_degrade_inline() {
        let (pag, vars, ..) = two_callers();
        let want = {
            let mut cold = Session::new(&pag, EngineKind::DynSum);
            cold.run_batch_vars(&vars, 1)
        };
        let mut session = Session::new(&pag, EngineKind::DynSum);
        let mut plan = FaultPlan::default();
        plan.fail_spawns.insert(0);
        plan.fail_spawns.insert(1);
        let control = BatchControl {
            faults: Some(plan),
            ..BatchControl::default()
        };
        let queries: Vec<SessionQuery<'_>> = vars.iter().map(|&v| SessionQuery::new(v)).collect();
        let out = session.run_batch_with(&queries, 2, &control);
        assert_eq!(session.health().spawn_failures, 2);
        for (a, b) in out.iter().zip(&want) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.pts, b.pts);
        }
    }

    #[test]
    fn partial_spawn_failure_still_drains_the_batch() {
        // One of two workers fails to spawn: the survivor and the
        // degraded in-line pass share the cursor and drain everything.
        let (pag, vars, ..) = two_callers();
        let want = {
            let mut cold = Session::new(&pag, EngineKind::DynSum);
            cold.run_batch_vars(&vars, 1)
        };
        let mut session = Session::new(&pag, EngineKind::DynSum);
        let mut plan = FaultPlan::default();
        plan.fail_spawns.insert(1);
        let control = BatchControl {
            faults: Some(plan),
            ..BatchControl::default()
        };
        let queries: Vec<SessionQuery<'_>> = vars.iter().map(|&v| SessionQuery::new(v)).collect();
        let out = session.run_batch_with(&queries, 2, &control);
        assert_eq!(session.health().spawn_failures, 1);
        for (a, b) in out.iter().zip(&want) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.pts, b.pts);
        }
    }

    #[test]
    fn work_stealing_drains_skewed_batches_byte_identically() {
        // The skew case the static split handled badly: a batch whose
        // tail is a long run of duplicates of one query. Whatever the
        // claim interleaving, results must stay byte-identical to the
        // sequential run, in input order.
        let (pag, vars, ..) = two_callers();
        let mut skewed: Vec<VarId> = vars.clone();
        for _ in 0..40 {
            skewed.push(vars[0]);
        }
        let want = {
            let mut cold = Session::new(&pag, EngineKind::DynSum);
            cold.run_batch_vars(&skewed, 1)
        };
        for threads in [2usize, 4] {
            let mut session = Session::new(&pag, EngineKind::DynSum);
            let got = session.run_batch_vars(&skewed, threads);
            assert_eq!(got.len(), want.len());
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert_eq!(
                    a.fingerprint(),
                    b.fingerprint(),
                    "threads={threads} query {i}"
                );
                assert_eq!(a.pts, b.pts, "threads={threads} query {i}");
            }
        }
    }

    #[test]
    fn injected_cancel_fuse_is_deterministic() {
        let (pag, vars, ..) = two_callers();
        let queries: Vec<SessionQuery<'_>> = vars.iter().map(|&v| SessionQuery::new(v)).collect();
        let run = |threads: usize| {
            let mut session = Session::new(&pag, EngineKind::DynSum);
            let mut plan = FaultPlan::default();
            plan.cancel_after.insert(0, 3);
            plan.deadline_after.insert(2, 0);
            let control = BatchControl {
                faults: Some(plan),
                ..BatchControl::default()
            };
            session.run_batch_with(&queries, threads, &control)
        };
        let base = run(1);
        assert_eq!(base[0].outcome, Outcome::Cancelled);
        assert_eq!(base[2].outcome, Outcome::DeadlineExceeded);
        // Count-based fuses replay identically at every thread count —
        // including the interrupted queries' partial sets.
        for threads in [2, 4] {
            let got = run(threads);
            for (a, b) in got.iter().zip(&base) {
                assert_eq!(a.outcome, b.outcome, "threads={threads}");
                assert_eq!(a.pts, b.pts, "threads={threads}");
            }
        }
    }

    #[test]
    fn health_snapshot_starts_clean() {
        let (pag, vars, ..) = two_callers();
        let mut session = Session::new(&pag, EngineKind::DynSum);
        assert_eq!(session.health(), SessionHealth::default());
        session.run_batch_vars(&vars, 2);
        let h = session.health();
        assert_eq!(h.cancellations, 0);
        assert_eq!(h.deadline_trips, 0);
        assert_eq!(h.query_panics, 0);
    }

    #[test]
    fn batch_lookup_accounting_balances() {
        // stats().lookups() on the shared cache == the per-query stats
        // summed over every absorbed query — each lookup counted exactly
        // once, at any thread count, across multiple batches.
        let (pag, vars, ..) = two_callers();
        for threads in [1usize, 2, 4] {
            let mut session = Session::new(&pag, EngineKind::DynSum);
            let mut per_query = 0u64;
            for _ in 0..3 {
                for r in session.run_batch_vars(&vars, threads) {
                    per_query += r.stats.cache_hits + r.stats.cache_misses;
                }
            }
            let stats = session.cache_stats();
            assert_eq!(
                stats.lookups(),
                per_query,
                "threads={threads}: hits {} + misses {} must equal per-query lookups",
                stats.hits,
                stats.misses
            );
        }
    }
}
