//! Demand-driven alias queries.
//!
//! The paper's CFL defines `x alias y ⟺ x flowsTo̅ o flowsTo y` for some
//! object `o` (§3.2) — i.e. two variables may alias exactly when their
//! points-to sets intersect. Alias queries are what the `NullDeref`-style
//! clients of Zheng–Rugina and Yan et al. consume; this module exposes
//! them over any demand engine.

use dynsum_cfl::QueryStats;
use dynsum_pag::VarId;

use crate::engine::DemandPointsTo;

/// The answer to a may-alias query.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum AliasResult {
    /// The points-to sets are provably disjoint.
    No,
    /// Some abstract object is in both points-to sets.
    May,
    /// At least one of the two queries exhausted its budget; the pair
    /// must be treated as possibly aliased.
    Unknown,
}

impl AliasResult {
    /// Conservative boolean view: everything except a proven `No`.
    pub fn possible(self) -> bool {
        !matches!(self, AliasResult::No)
    }
}

/// The outcome of [`may_alias`]: the verdict plus the combined work of
/// the two underlying points-to queries.
#[derive(Debug, Clone)]
pub struct AliasQuery {
    /// The verdict.
    pub result: AliasResult,
    /// Combined work counters.
    pub stats: QueryStats,
}

/// Answers `may_alias(v1, v2)` on any engine by intersecting the two
/// points-to sets (the paper's `alias` relation, §3.2).
///
/// With DYNSUM the two queries share the summary cache, so alias queries
/// over overlapping code regions get cheaper as more of them are asked.
pub fn may_alias(engine: &mut dyn DemandPointsTo, v1: VarId, v2: VarId) -> AliasQuery {
    let r1 = engine.points_to(v1);
    let r2 = engine.points_to(v2);
    let mut stats = r1.stats;
    stats.absorb(&r2.stats);
    let result = if !r1.resolved || !r2.resolved {
        AliasResult::Unknown
    } else {
        let o1 = r1.pts.objects();
        let o2 = r2.pts.objects();
        if o1.intersection(&o2).next().is_some() {
            AliasResult::May
        } else {
            AliasResult::No
        }
    };
    AliasQuery { result, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynsum::DynSum;
    use crate::engine::EngineConfig;
    use crate::norefine::NoRefine;
    use dynsum_pag::{Pag, PagBuilder};

    /// p and q share an object; r holds a different one; empty has none.
    fn aliasing_pag() -> (Pag, VarId, VarId, VarId, VarId) {
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let p = b.add_local("p", m, None).unwrap();
        let q = b.add_local("q", m, None).unwrap();
        let r = b.add_local("r", m, None).unwrap();
        let empty = b.add_local("empty", m, None).unwrap();
        let o1 = b.add_obj("o1", None, Some(m)).unwrap();
        let o2 = b.add_obj("o2", None, Some(m)).unwrap();
        b.add_new(o1, p).unwrap();
        b.add_assign(p, q).unwrap();
        b.add_new(o2, r).unwrap();
        (b.finish(), p, q, r, empty)
    }

    #[test]
    fn shared_object_means_may() {
        let (pag, p, q, ..) = aliasing_pag();
        let mut e = DynSum::new(&pag);
        let a = may_alias(&mut e, p, q);
        assert_eq!(a.result, AliasResult::May);
        assert!(a.result.possible());
        assert!(a.stats.edges_traversed > 0);
    }

    #[test]
    fn disjoint_objects_mean_no() {
        let (pag, p, _, r, _) = aliasing_pag();
        let mut e = DynSum::new(&pag);
        assert_eq!(may_alias(&mut e, p, r).result, AliasResult::No);
        assert!(!AliasResult::No.possible());
    }

    #[test]
    fn empty_sets_do_not_alias() {
        let (pag, p, _, _, empty) = aliasing_pag();
        let mut e = DynSum::new(&pag);
        assert_eq!(may_alias(&mut e, p, empty).result, AliasResult::No);
        assert_eq!(may_alias(&mut e, empty, empty).result, AliasResult::No);
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        let (pag, p, q, ..) = aliasing_pag();
        let config = EngineConfig {
            budget: 0,
            ..EngineConfig::default()
        };
        let mut e = NoRefine::with_config(&pag, config);
        let a = may_alias(&mut e, p, q);
        assert_eq!(a.result, AliasResult::Unknown);
        assert!(a.result.possible(), "unknown must stay conservative");
    }

    #[test]
    fn alias_is_symmetric() {
        let (pag, p, q, r, _) = aliasing_pag();
        let mut e = DynSum::new(&pag);
        assert_eq!(
            may_alias(&mut e, p, q).result,
            may_alias(&mut e, q, p).result
        );
        assert_eq!(
            may_alias(&mut e, p, r).result,
            may_alias(&mut e, r, p).result
        );
    }
}
