//! STASUM — static all-pairs method summaries (Yan et al., ISSTA'11), the
//! paper's whole-program comparison point (§4.4, Figure 5).
//!
//! STASUM computes, **offline and for every method-boundary node**, a
//! *relative* local-reachability summary: a partial points-to analysis
//! whose field stack is split into
//!
//! * `need` — the sequence of fields the summary *consumes* from whatever
//!   field stack arrives at the node (unknown at precompute time), and
//! * `have` — the fields it pushes on top;
//!
//! a summary entry applies to a concrete arriving stack `f` iff `need` is
//! a top prefix of `f`. At query time the same worklist driver as DYNSUM
//! instantiates these precomputed summaries instead of running PPTA.
//!
//! Relative summaries store their `need`/`have` sequences as **inline
//! field arrays** rather than interned stack ids: the frozen store is
//! then independent of any field-stack pool, so it can be shared across
//! [`Session`](crate::Session) query threads, and instantiation matches
//! prefixes against the arriving stack directly with no per-entry
//! allocation (the ROADMAP's "STASUM instantiation cost" item).
//!
//! The precomputation cost is what the paper criticizes: summaries are
//! computed for *every* boundary node whether or not any query ever
//! reaches it, which is why Figure 5 shows DYNSUM computing only 37–48%
//! as many summaries.

use std::sync::Arc;

use dynsum_cfl::{
    Budget, BudgetExceeded, Direction, FieldFrame, FieldStackId, FxHashMap, FxHashSet, Interrupt,
    QueryControl, QueryResult, QueryStats, StackPool, StepKind, Ticket, Trace,
};
use dynsum_pag::{AdjClass, CallSiteId, NodeId, NodeRef, ObjId, Pag, VarId};

use crate::driver::{drive, DriveParts};
use crate::engine::{ClientCheck, DemandPointsTo, EngineConfig};
use crate::ppta;
use crate::summary::Summary;

/// Precomputation options for STASUM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaSumOptions {
    /// Maximum `need` depth recorded in a relative summary; configurations
    /// needing more are dropped and the summary is marked truncated
    /// (queries arriving with deeper stacks fall back to concrete PPTA).
    pub max_need_depth: usize,
    /// Edge-traversal budget per precomputed summary; exhaustion marks
    /// the summary aborted (always falls back at query time).
    pub node_budget: u64,
}

impl Default for StaSumOptions {
    fn default() -> Self {
        StaSumOptions {
            max_need_depth: 8,
            node_budget: 200_000,
        }
    }
}

/// Precomputation statistics (the Figure 5 quantities).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaSumStats {
    /// Number of summaries computed (one per boundary node/direction).
    pub summaries: usize,
    /// Total object and boundary entries across all summaries.
    pub entries: usize,
    /// Summaries that hit the `need`-depth cap.
    pub truncated: usize,
    /// Summaries that exhausted the per-node budget.
    pub aborted: usize,
    /// Edges traversed during precomputation.
    pub precompute_edges: u64,
}

/// One relative boundary continuation: applies when [`need`](Self::need)
/// is a top prefix of the arriving stack (strictly shorter than it if
/// [`strict`](Self::strict)); the instantiated stack is
/// `pop(need) ++ have`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RelBoundary {
    node: NodeId,
    /// Frames consumed from the arriving stack, in consumption order
    /// (topmost arriving frame first).
    need: Box<[FieldFrame]>,
    /// Frames pushed on the remainder, in push order (bottom-to-top).
    have: Box<[FieldFrame]>,
    dir: Direction,
    /// Marks continuations that passed through a `new new̅` flip while
    /// the concrete stack depth was unknown: the flip is only legal on a
    /// non-empty stack, so the entry applies only when the arriving
    /// stack is *strictly deeper* than `need`.
    strict: bool,
}

/// A relative summary: objects and boundaries qualified by the `need`
/// prefix they consume from the arriving field stack. Pool-independent
/// (inline field arrays), hence freely shareable across threads.
#[derive(Debug, Default, Clone)]
struct RelSummary {
    /// `(object, need)` — applies when the arriving stack equals `need`.
    objs: Vec<(ObjId, Box<[FieldFrame]>)>,
    boundaries: Vec<RelBoundary>,
    truncated: bool,
    aborted: bool,
}

/// The frozen product of STASUM precomputation: the all-pairs relative
/// summary store plus its statistics. Immutable after construction, so
/// one copy serves any number of engines/handles concurrently.
#[derive(Debug)]
pub(crate) struct StaSumShared {
    rel: FxHashMap<(NodeId, Direction), RelSummary>,
    options: StaSumOptions,
    stats: StaSumStats,
}

impl StaSumShared {
    pub(crate) fn stats(&self) -> StaSumStats {
        self.stats
    }
}

/// Runs the whole-program precomputation (every boundary node × the
/// directions its global edges demand).
pub(crate) fn stasum_precompute(
    pag: &Pag,
    config: &EngineConfig,
    options: StaSumOptions,
) -> StaSumShared {
    let mut shared = StaSumShared {
        rel: FxHashMap::default(),
        options,
        stats: StaSumStats::default(),
    };
    // Interning pool private to the precomputation: the frozen summaries
    // carry inline arrays, so nothing outlives this pool.
    let mut fields: StackPool<FieldFrame> = StackPool::new();
    // S1 summaries are consumed where the driver lands after walking a
    // global edge backwards (nodes with global out-edges); S2 where it
    // lands walking forwards (nodes with global in-edges).
    for (v, _) in pag.vars() {
        let n = pag.var_node(v);
        if !pag.has_local_edge(n) {
            continue;
        }
        if pag.has_global_out(n) {
            precompute_node(pag, config, &mut fields, &mut shared, n, Direction::S1);
        }
        if pag.has_global_in(n) {
            precompute_node(pag, config, &mut fields, &mut shared, n, Direction::S2);
        }
    }
    shared
}

fn precompute_node(
    pag: &Pag,
    config: &EngineConfig,
    fields: &mut StackPool<FieldFrame>,
    shared: &mut StaSumShared,
    n: NodeId,
    dir: Direction,
) {
    let mut rp = RelPpta {
        pag,
        fields,
        options: &shared.options,
        max_have_depth: config.max_field_depth,
        budget: Budget::new(shared.options.node_budget),
        visited: FxHashSet::default(),
        out: RawRelSummary::default(),
        edges: 0,
    };
    let aborted = rp
        .go(n, FieldStackId::EMPTY, FieldStackId::EMPTY, dir, false)
        .is_err();
    let edges = rp.edges;
    let raw = rp.out;
    // Freeze: resolve the pool-relative stack ids into inline arrays.
    let summary = RelSummary {
        objs: raw
            .objs
            .iter()
            .map(|&(o, need)| (o, fields.to_vec(need).into_boxed_slice()))
            .collect(),
        boundaries: raw
            .boundaries
            .iter()
            .map(|&(node, need, have, dir, strict)| RelBoundary {
                node,
                need: fields.to_vec(need).into_boxed_slice(),
                have: fields.to_vec(have).into_boxed_slice(),
                dir,
                strict,
            })
            .collect(),
        truncated: raw.truncated,
        aborted,
    };
    shared.stats.summaries += 1;
    shared.stats.entries += summary.objs.len() + summary.boundaries.len();
    shared.stats.precompute_edges += edges;
    if summary.truncated {
        shared.stats.truncated += 1;
    }
    if summary.aborted {
        shared.stats.aborted += 1;
    }
    shared.rel.insert((n, dir), summary);
}

/// Runs one STASUM query over borrowed per-handle state. Shared by the
/// legacy [`StaSum`] engine and [`Session`](crate::Session) query
/// handles; `shared` is the frozen precomputation product.
pub(crate) fn stasum_query(
    pag: &Pag,
    config: &EngineConfig,
    shared: &StaSumShared,
    parts: &mut DriveParts,
    v: VarId,
    ctx: &[CallSiteId],
    control: &QueryControl,
) -> QueryResult {
    let DriveParts {
        fields,
        ctxs,
        drive: drive_scratch,
        ppta: ppta_scratch,
    } = parts;
    ctxs.clear();
    let c0 = ctxs.from_slice(ctx);
    let mut provider = |fields: &mut StackPool<FieldFrame>,
                        ticket: &mut Ticket,
                        stats: &mut QueryStats,
                        u: NodeId,
                        f: FieldStackId,
                        s: Direction|
     -> Result<(Arc<Summary>, StepKind), Interrupt> {
        if let Some(rs) = shared.rel.get(&(u, s)) {
            if let Some(sum) = instantiate(fields, &shared.options, rs, f) {
                stats.cache_hits += 1;
                return Ok((Arc::new(sum), StepKind::PptaReused));
            }
        }
        // No precomputed summary (query root) or unusable one
        // (truncated/aborted): concrete PPTA, not memorized — STASUM
        // is static, it learns nothing new at query time.
        stats.cache_misses += 1;
        let sum = ppta::compute(pag, fields, ppta_scratch, config, ticket, stats, u, f, s)?;
        Ok((Arc::new(sum), StepKind::PptaComputed))
    };
    let mut ticket = Ticket::with_control(config.budget, control);
    drive(
        pag,
        fields,
        ctxs,
        drive_scratch,
        config,
        pag.var_node(v),
        c0,
        &mut ticket,
        &mut provider,
        None::<&mut Trace>,
    )
}

/// The STASUM engine.
///
/// # Examples
///
/// ```
/// use dynsum_core::{DemandPointsTo, StaSum};
/// use dynsum_pag::PagBuilder;
///
/// let mut b = PagBuilder::new();
/// let m = b.add_method("main", None)?;
/// let v = b.add_local("v", m, None)?;
/// let o = b.add_obj("o1", None, Some(m))?;
/// b.add_new(o, v)?;
/// let pag = b.finish();
/// let mut engine = StaSum::precompute(&pag);
/// assert!(engine.points_to(v).pts.contains_obj(o));
/// # Ok::<(), dynsum_pag::BuildError>(())
/// ```
#[derive(Debug)]
pub struct StaSum<'p> {
    pag: &'p Pag,
    config: EngineConfig,
    shared: StaSumShared,
    parts: DriveParts,
    control: QueryControl,
}

impl<'p> StaSum<'p> {
    /// Precomputes all boundary summaries with default configuration.
    pub fn precompute(pag: &'p Pag) -> Self {
        Self::precompute_with(pag, EngineConfig::default(), StaSumOptions::default())
    }

    /// Precomputes with explicit configuration and options.
    pub fn precompute_with(pag: &'p Pag, config: EngineConfig, options: StaSumOptions) -> Self {
        StaSum {
            pag,
            config,
            shared: stasum_precompute(pag, &config, options),
            parts: DriveParts::default(),
            control: QueryControl::default(),
        }
    }

    /// Attaches a [`QueryControl`] (cancel token / deadline) observed by
    /// every subsequent query until replaced. Precomputation is not
    /// affected — it has already happened by construction time.
    pub fn set_control(&mut self, control: QueryControl) {
        self.control = control;
    }

    /// Precomputation statistics.
    pub fn precompute_stats(&self) -> StaSumStats {
        self.shared.stats
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }
}

/// Instantiates a relative summary against a concrete arriving stack.
/// Returns `None` when the summary cannot be trusted for this stack.
///
/// Instantiated summaries carry [`cost`](Summary::cost) 0: STASUM's
/// store is frozen before the first query, so its queries are already
/// independent of each other and need no deterministic reuse charging.
fn instantiate(
    fields: &mut StackPool<FieldFrame>,
    options: &StaSumOptions,
    rel: &RelSummary,
    f: FieldStackId,
) -> Option<Summary> {
    if rel.aborted {
        return None;
    }
    // A truncated summary dropped configurations whose `need` exceeded the
    // cap; those could only match stacks deeper than the cap.
    if rel.truncated && fields.depth(f) > options.max_need_depth {
        return None;
    }
    let depth = fields.depth(f);
    let mut objs = Vec::new();
    for (o, need) in &rel.objs {
        if depth == need.len() && fields.is_top_prefix(f, need) {
            objs.push(*o);
        }
    }
    let mut boundaries = Vec::new();
    for b in &rel.boundaries {
        if b.strict && depth <= b.need.len() {
            continue;
        }
        if fields.is_top_prefix(f, &b.need) {
            let mut stack = fields.pop_n(f, b.need.len()).expect("prefix checked");
            for &g in b.have.iter() {
                stack = fields.push(stack, g);
            }
            boundaries.push((b.node, stack, b.dir));
        }
    }
    objs.sort_unstable();
    objs.dedup();
    // Canonical, pool-independent order (content, not raw ids): the
    // driver walks boundaries in order and may abort mid-walk on budget
    // exhaustion, so partial results must not depend on interning
    // history (see `ppta::compute`).
    boundaries.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then(a.2.cmp(&b.2))
            .then_with(|| fields.cmp_stacks(a.1, b.1))
    });
    boundaries.dedup();
    Some(Summary {
        objs,
        boundaries,
        cost: 0,
    })
}

impl DemandPointsTo for StaSum<'_> {
    fn name(&self) -> &'static str {
        "STASUM"
    }

    /// STASUM has no refinement; the predicate is ignored.
    fn query(&mut self, v: VarId, _satisfied: ClientCheck<'_>) -> QueryResult {
        stasum_query(
            self.pag,
            &self.config,
            &self.shared,
            &mut self.parts,
            v,
            &[],
            &self.control,
        )
    }

    /// The number of *precomputed* summaries — the Figure 5 denominator.
    fn summary_count(&self) -> usize {
        self.shared.stats.summaries
    }

    fn reset(&mut self) {
        // Static state is kept (recomputing it is the whole cost of
        // STASUM); only the per-query scratch is refreshed.
        self.parts = DriveParts::default();
    }
}

/// The raw (pool-relative) accumulator RelPpta fills before freezing.
#[derive(Debug, Default)]
struct RawRelSummary {
    objs: Vec<(ObjId, FieldStackId)>,
    boundaries: Vec<(NodeId, FieldStackId, FieldStackId, Direction, bool)>,
    truncated: bool,
}

/// Relative-stack PPTA: Algorithm 3 with the `(need, have)` split.
struct RelPpta<'a, 'p> {
    pag: &'p Pag,
    fields: &'a mut StackPool<FieldFrame>,
    options: &'a StaSumOptions,
    max_have_depth: usize,
    budget: Budget,
    visited: FxHashSet<(NodeId, FieldStackId, FieldStackId, Direction, bool)>,
    out: RawRelSummary,
    edges: u64,
}

impl RelPpta<'_, '_> {
    fn charge(&mut self) -> Result<(), BudgetExceeded> {
        self.budget.charge()?;
        self.edges += 1;
        Ok(())
    }

    /// Pops field `g`, consuming from `have` first and extending `need`
    /// when `have` is exhausted. Returns the successor
    /// `(need, have, strict)` or `None` when the branch is dead /
    /// dropped. Growing `need` discharges a pending strictness
    /// constraint: the arriving stack is then provably deeper than the
    /// depth at which the constraint was issued.
    fn rel_pop(
        &mut self,
        need: FieldStackId,
        have: FieldStackId,
        g: FieldFrame,
        strict: bool,
    ) -> Option<(FieldStackId, FieldStackId, bool)> {
        match self.fields.peek(have) {
            Some(top) if top == g => {
                let (_, rest) = self.fields.pop(have).expect("peeked");
                Some((need, rest, strict))
            }
            Some(_) => None,
            None => {
                if self.fields.depth(need) >= self.options.max_need_depth {
                    self.out.truncated = true;
                    None
                } else {
                    Some((self.fields.push(need, g), have, false))
                }
            }
        }
    }

    fn rel_push(
        &mut self,
        have: FieldStackId,
        g: FieldFrame,
    ) -> Result<FieldStackId, BudgetExceeded> {
        if self.fields.depth(have) >= self.max_have_depth {
            return Err(BudgetExceeded);
        }
        Ok(self.fields.push(have, g))
    }

    fn go(
        &mut self,
        u: NodeId,
        need: FieldStackId,
        have: FieldStackId,
        s: Direction,
        strict: bool,
    ) -> Result<(), BudgetExceeded> {
        if !self.visited.insert((u, need, have, s, strict)) {
            return Ok(());
        }
        match s {
            Direction::S1 => self.s1(u, need, have, strict),
            Direction::S2 => self.s2(u, need, have, strict),
        }
    }

    fn s1(
        &mut self,
        u: NodeId,
        need: FieldStackId,
        have: FieldStackId,
        strict: bool,
    ) -> Result<(), BudgetExceeded> {
        let mut saw_new = false;
        for &a in self.pag.in_seg(u, AdjClass::New) {
            self.charge()?;
            if have.is_empty() {
                // The object applies when the concrete stack is empty
                // here, i.e. the arriving stack is exactly `need` —
                // impossible under a pending strictness constraint.
                if !strict {
                    if let NodeRef::Obj(o) = self.pag.node_ref(a.node) {
                        self.out.objs.push((o, need));
                    }
                }
            }
            // The alias detour covers strictly deeper stacks.
            saw_new = true;
        }
        for &a in self.pag.in_seg(u, AdjClass::Assign) {
            self.charge()?;
            self.go(a.node, need, have, Direction::S1, strict)?;
        }
        for &a in self.pag.in_seg(u, AdjClass::Load) {
            self.charge()?;
            let have2 = self.rel_push(have, FieldFrame::Get(a.field()))?;
            self.go(a.node, need, have2, Direction::S1, strict)?;
        }
        if saw_new {
            self.charge()?;
            // The `new new̅` flip is only legal on a non-empty concrete
            // stack: with `have` empty that emptiness is unknown, so the
            // continuation carries a strictness constraint.
            let strict2 = strict || have.is_empty();
            self.go(u, need, have, Direction::S2, strict2)?;
        }
        if self.pag.has_global_in(u) {
            self.out
                .boundaries
                .push((u, need, have, Direction::S1, strict));
        }
        Ok(())
    }

    #[allow(clippy::collapsible_match)]
    fn s2(
        &mut self,
        u: NodeId,
        need: FieldStackId,
        have: FieldStackId,
        strict: bool,
    ) -> Result<(), BudgetExceeded> {
        for &a in self.pag.out_seg(u, AdjClass::Assign) {
            self.charge()?;
            self.go(a.node, need, have, Direction::S2, strict)?;
        }
        for &a in self.pag.out_seg(u, AdjClass::Load) {
            // Out-loads discharge pending `Put` frames only (see
            // `FieldFrame`); a `Get` frame on top kills the branch.
            if let Some((n2, h2, st2)) =
                self.rel_pop(need, have, FieldFrame::Put(a.field()), strict)
            {
                self.charge()?;
                self.go(a.node, n2, h2, Direction::S2, st2)?;
            }
        }
        for &a in self.pag.out_seg(u, AdjClass::Store) {
            // Same gate as concrete PPTA: a store detour is only useful
            // when some load of the field exists.
            if !self.pag.loads_of(a.field()).is_empty() {
                self.charge()?;
                let have2 = self.rel_push(have, FieldFrame::Put(a.field()))?;
                self.go(a.node, need, have2, Direction::S1, strict)?;
            }
        }
        for &a in self.pag.in_seg(u, AdjClass::Store) {
            // In-stores discharge pending `Get` frames only.
            if let Some((n2, h2, st2)) =
                self.rel_pop(need, have, FieldFrame::Get(a.field()), strict)
            {
                self.charge()?;
                self.go(a.node, n2, h2, Direction::S1, st2)?;
            }
        }
        if self.pag.has_global_out(u) {
            self.out
                .boundaries
                .push((u, need, have, Direction::S2, strict));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsum_pag::PagBuilder;

    /// The Vector-ish cross-method shape: callee loads through fields,
    /// and is called from two different contexts.
    fn vector_pag() -> (Pag, VarId, VarId, ObjId, ObjId) {
        let mut b = PagBuilder::new();
        let main = b.add_method("main", None).unwrap();
        let get = b.add_method("get", None).unwrap();
        let set = b.add_method("set", None).unwrap();
        let f = b.field("f");

        // set(this_s, p) { this_s.f = p }
        let this_s = b.add_local("this_s", set, None).unwrap();
        let p = b.add_local("p", set, None).unwrap();
        b.add_store(f, p, this_s).unwrap();
        // get(this_g) { return this_g.f }
        let this_g = b.add_local("this_g", get, None).unwrap();
        let ret = b.add_local("ret", get, None).unwrap();
        b.add_load(f, this_g, ret).unwrap();

        // main: c1 = new; c2 = new; x1 = new; x2 = new;
        // set(c1, x1); set(c2, x2); r1 = get(c1); r2 = get(c2);
        let c1 = b.add_local("c1", main, None).unwrap();
        let c2 = b.add_local("c2", main, None).unwrap();
        let x1 = b.add_local("x1", main, None).unwrap();
        let x2 = b.add_local("x2", main, None).unwrap();
        let r1 = b.add_local("r1", main, None).unwrap();
        let r2 = b.add_local("r2", main, None).unwrap();
        let oc1 = b.add_obj("oc1", None, Some(main)).unwrap();
        let oc2 = b.add_obj("oc2", None, Some(main)).unwrap();
        let ox1 = b.add_obj("ox1", None, Some(main)).unwrap();
        let ox2 = b.add_obj("ox2", None, Some(main)).unwrap();
        b.add_new(oc1, c1).unwrap();
        b.add_new(oc2, c2).unwrap();
        b.add_new(ox1, x1).unwrap();
        b.add_new(ox2, x2).unwrap();
        let s1 = b.add_call_site("1", main).unwrap();
        let s2 = b.add_call_site("2", main).unwrap();
        let s3 = b.add_call_site("3", main).unwrap();
        let s4 = b.add_call_site("4", main).unwrap();
        b.add_entry(s1, c1, this_s).unwrap();
        b.add_entry(s1, x1, p).unwrap();
        b.add_entry(s2, c2, this_s).unwrap();
        b.add_entry(s2, x2, p).unwrap();
        b.add_entry(s3, c1, this_g).unwrap();
        b.add_exit(s3, ret, r1).unwrap();
        b.add_entry(s4, c2, this_g).unwrap();
        b.add_exit(s4, ret, r2).unwrap();
        (b.finish(), r1, r2, ox1, ox2)
    }

    #[test]
    fn answers_match_context_sensitive_expectations() {
        let (pag, r1, r2, ox1, ox2) = vector_pag();
        let mut e = StaSum::precompute(&pag);
        let p1 = e.points_to(r1);
        assert!(p1.resolved);
        assert_eq!(p1.pts.objects().into_iter().collect::<Vec<_>>(), vec![ox1]);
        let p2 = e.points_to(r2);
        assert_eq!(p2.pts.objects().into_iter().collect::<Vec<_>>(), vec![ox2]);
    }

    #[test]
    fn precomputes_summaries_for_boundary_nodes() {
        let (pag, ..) = vector_pag();
        let e = StaSum::precompute(&pag);
        let stats = e.precompute_stats();
        assert!(stats.summaries > 0);
        assert_eq!(stats.aborted, 0);
        assert_eq!(e.summary_count(), stats.summaries);
    }

    #[test]
    fn queries_hit_precomputed_summaries() {
        let (pag, r1, ..) = vector_pag();
        let mut e = StaSum::precompute(&pag);
        let p = e.points_to(r1);
        assert!(
            p.stats.cache_hits > 0,
            "arrival configurations must be served statically"
        );
    }

    #[test]
    fn static_count_independent_of_queries() {
        let (pag, r1, r2, ..) = vector_pag();
        let mut e = StaSum::precompute(&pag);
        let before = e.summary_count();
        e.points_to(r1);
        e.points_to(r2);
        assert_eq!(
            e.summary_count(),
            before,
            "STASUM never grows at query time"
        );
    }

    #[test]
    fn relative_pop_extends_need() {
        let (pag, ..) = vector_pag();
        let e = StaSum::precompute(&pag);
        // this_s has a global out edge... S1 summary exists; the store
        // base `this_s` in S2 (arriving via entry) must have consumed a
        // `need` field: find any boundary with non-empty need or objs
        // qualified by need.
        let any_need = e.shared.rel.values().any(|r| {
            r.objs.iter().any(|(_, need)| !need.is_empty())
                || r.boundaries.iter().any(|b| !b.need.is_empty())
        });
        assert!(any_need, "relative summaries must exercise the need stack");
    }

    #[test]
    fn frozen_summaries_are_pool_independent() {
        // Two fresh engines over the same PAG must freeze identical
        // inline entries regardless of interning history, and a second
        // query-time pool must instantiate them identically.
        let (pag, r1, ..) = vector_pag();
        let a = StaSum::precompute(&pag);
        let b = StaSum::precompute(&pag);
        for (key, ra) in &a.shared.rel {
            let rb = &b.shared.rel[key];
            assert_eq!(ra.objs, rb.objs);
            assert_eq!(ra.boundaries, rb.boundaries);
        }
        let mut e1 = a;
        let mut e2 = b;
        // Warm e2's pools with other queries first: raw pool ids now
        // differ between the two engines; results must not.
        let warm: Vec<VarId> = pag.vars().map(|(v, _)| v).take(4).collect();
        for v in warm {
            e2.points_to(v);
        }
        assert_eq!(e1.points_to(r1).pts, e2.points_to(r1).pts);
    }
}
