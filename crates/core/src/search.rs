//! The Sridharan–Bodík demand-driven search (Algorithm 1), in worklist
//! form, shared by NOREFINE and REFINEPTS.
//!
//! The search explores the same configuration space as DYNSUM —
//! `(node, field stack, direction, context)` — but one edge at a time
//! across the whole PAG, with no summarization and no cross-query
//! memorization (each query starts from a fresh `seen` set). Running the
//! engines over a single transition relation makes the paper's precision
//! claim (*"DYNSUM can deliver the same precision as REFINEPTS"*)
//! structural, and the property-based test suite verifies it on random
//! graphs.
//!
//! REFINEPTS's **refinement** (§3.3) is expressed per load edge: a load
//! outside `fldsToRefine` is treated field-based — an artificial *match*
//! edge short-circuits the alias detour, pairing the load with every
//! store of the same field and clearing the calling context — and is
//! recorded in `fldsSeen` so the next iteration can refine it.

use dynsum_cfl::{
    CtxId, Direction, FieldFrame, FieldStackId, FxHashSet, Interrupt, PointsToSet, QueryStats,
    StackPool, Ticket,
};
use dynsum_pag::{AdjClass, CallSiteId, EdgeId, NodeId, NodeRef, Pag, VarId};

use crate::engine::{ctx_clear, ctx_pop, ctx_push, EngineConfig};

/// Which load edges are explored field-sensitively.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Refinement<'a> {
    /// Every load is field-sensitive (NOREFINE, and REFINEPTS's limit).
    All,
    /// Only the listed load edges are field-sensitive; the rest go
    /// through match edges (REFINEPTS iterations).
    Only(&'a FxHashSet<EdgeId>),
}

impl Refinement<'_> {
    #[inline]
    fn is_refined(&self, e: EdgeId) -> bool {
        match self {
            Refinement::All => true,
            Refinement::Only(set) => set.contains(&e),
        }
    }
}

/// Result of one search pass.
#[derive(Debug)]
pub(crate) struct SearchOutcome {
    /// Points-to pairs found.
    pub pts: PointsToSet,
    /// Match edges used (the iteration's `fldsSeen`).
    pub flds_seen: FxHashSet<EdgeId>,
    /// `Some(kind)` when the search was interrupted (budget or depth-cap
    /// exhaustion, cancellation, deadline); `None` when it completed.
    pub interrupt: Option<Interrupt>,
}

impl SearchOutcome {
    /// `true` when the search ran to completion.
    #[cfg(test)]
    pub(crate) fn complete(&self) -> bool {
        self.interrupt.is_none()
    }
}

/// Reusable worklist and seen-set buffers: each query starts logically
/// fresh (cleared), but the backing allocations persist across queries so
/// the table never re-grows from empty on a warm engine.
#[derive(Debug, Default)]
pub(crate) struct SearchScratch {
    seen: FxHashSet<(NodeId, FieldStackId, Direction, CtxId)>,
    wl: Vec<(NodeId, FieldStackId, Direction, CtxId)>,
}

/// The complete per-handle working state of the search-based engines
/// (NOREFINE / REFINEPTS): interning pools plus worklist buffers. Owned
/// by the legacy engine structs and by [`Session`](crate::Session) query
/// handles alike — everything shareable lives in the session, everything
/// mutable lives here.
#[derive(Debug, Default)]
pub(crate) struct SearchParts {
    pub(crate) fields: StackPool<FieldFrame>,
    pub(crate) ctxs: StackPool<CallSiteId>,
    pub(crate) scratch: SearchScratch,
}

/// Runs one demand-driven search pass for `pointsTo(start, start_ctx)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn search(
    pag: &Pag,
    fields: &mut StackPool<FieldFrame>,
    ctxs: &mut StackPool<CallSiteId>,
    scratch: &mut SearchScratch,
    config: &EngineConfig,
    refinement: Refinement<'_>,
    start: VarId,
    start_ctx: CtxId,
    ticket: &mut Ticket,
    stats: &mut QueryStats,
) -> SearchOutcome {
    scratch.seen.clear();
    scratch.wl.clear();
    let mut cx = SearchCx {
        pag,
        fields,
        ctxs,
        config,
        refinement,
        ticket,
        stats,
        pts: PointsToSet::new(),
        flds_seen: FxHashSet::default(),
        seen: &mut scratch.seen,
        wl: &mut scratch.wl,
    };
    let init = (
        pag.var_node(start),
        FieldStackId::EMPTY,
        Direction::S1,
        start_ctx,
    );
    cx.seen.insert(init);
    cx.wl.push(init);
    let interrupt = cx.drive().err();
    SearchOutcome {
        pts: cx.pts,
        flds_seen: cx.flds_seen,
        interrupt,
    }
}

struct SearchCx<'a, 'p> {
    pag: &'p Pag,
    fields: &'a mut StackPool<FieldFrame>,
    ctxs: &'a mut StackPool<CallSiteId>,
    config: &'a EngineConfig,
    refinement: Refinement<'a>,
    ticket: &'a mut Ticket,
    stats: &'a mut QueryStats,
    pts: PointsToSet,
    flds_seen: FxHashSet<EdgeId>,
    seen: &'a mut FxHashSet<(NodeId, FieldStackId, Direction, CtxId)>,
    wl: &'a mut Vec<(NodeId, FieldStackId, Direction, CtxId)>,
}

impl SearchCx<'_, '_> {
    fn charge(&mut self) -> Result<(), Interrupt> {
        self.ticket.charge()?;
        self.stats.edges_traversed += 1;
        Ok(())
    }

    fn push_field(&mut self, f: FieldStackId, g: FieldFrame) -> Result<FieldStackId, Interrupt> {
        if self.fields.depth(f) >= self.config.max_field_depth {
            return Err(Interrupt::Budget);
        }
        Ok(self.fields.push(f, g))
    }

    fn propagate(&mut self, n: NodeId, f: FieldStackId, s: Direction, c: CtxId) {
        let item = (n, f, s, c);
        if self.seen.insert(item) {
            self.wl.push(item);
        }
    }

    fn drive(&mut self) -> Result<(), Interrupt> {
        while let Some((u, f, s, c)) = self.wl.pop() {
            self.stats.steps += 1;
            match s {
                Direction::S1 => self.s1(u, f, c)?,
                Direction::S2 => self.s2(u, f, c)?,
            }
        }
        Ok(())
    }

    /// Backward (`pointsTo`) transitions: in-edges of `u`, one kind
    /// segment at a time (no edge-arena indirection, no per-edge `match`).
    fn s1(&mut self, u: NodeId, f: FieldStackId, c: CtxId) -> Result<(), Interrupt> {
        let pag = self.pag;
        let mut saw_new = false;
        for &a in pag.in_seg(u, AdjClass::New) {
            self.charge()?;
            if f.is_empty() {
                if let NodeRef::Obj(o) = pag.node_ref(a.node) {
                    self.pts.insert(o, c);
                }
            } else {
                saw_new = true;
            }
        }
        for &a in pag.in_seg(u, AdjClass::Assign) {
            self.charge()?;
            self.propagate(a.node, f, Direction::S1, c);
        }
        for &a in pag.in_seg(u, AdjClass::Load) {
            if self.refinement.is_refined(a.edge) {
                // Field-sensitive: push the pending field and resolve
                // the base (Algorithm 1's alias branch).
                self.charge()?;
                let f2 = self.push_field(f, FieldFrame::Get(a.field()))?;
                self.propagate(a.node, f2, Direction::S1, c);
            } else {
                // Field-based match edge: jump straight to every store
                // of the field, clearing the context (Algorithm 1
                // lines 15–17).
                self.flds_seen.insert(a.edge);
                for &st in pag.stores_of(a.field()) {
                    self.charge()?;
                    self.propagate(st.src, f, Direction::S1, ctx_clear());
                }
            }
        }
        for &a in pag.in_seg(u, AdjClass::AssignGlobal) {
            self.charge()?;
            self.propagate(a.node, f, Direction::S1, ctx_clear());
        }
        for &a in pag.in_seg(u, AdjClass::Entry) {
            self.charge()?;
            if let Some(c2) = ctx_pop(self.ctxs, c, a.site(), pag, self.config)? {
                self.propagate(a.node, f, Direction::S1, c2);
            }
        }
        for &a in pag.in_seg(u, AdjClass::Exit) {
            self.charge()?;
            if let Some(c2) = ctx_push(self.ctxs, c, a.site(), pag, self.config)? {
                self.propagate(a.node, f, Direction::S1, c2);
            }
        }
        if saw_new {
            // `new new̅`: flip to the forward state to hunt for aliases.
            self.charge()?;
            self.propagate(u, f, Direction::S2, c);
        }
        Ok(())
    }

    /// Forward (`flowsTo`) transitions: out-edges of `u`, plus the
    /// in-store pop.
    fn s2(&mut self, u: NodeId, f: FieldStackId, c: CtxId) -> Result<(), Interrupt> {
        let pag = self.pag;
        for &a in pag.out_seg(u, AdjClass::Assign) {
            self.charge()?;
            self.propagate(a.node, f, Direction::S2, c);
        }
        for &a in pag.out_seg(u, AdjClass::Load) {
            // Forward over a load discharges a pending *store* frame —
            // only when the load is explored field-sensitively. A
            // pending `Get` frame must not match here: two loads of the
            // same field witness no store/load pairing.
            if self.refinement.is_refined(a.edge)
                && self.fields.peek(f) == Some(FieldFrame::Put(a.field()))
            {
                self.charge()?;
                let (_, rest) = self.fields.pop(f).expect("peeked");
                self.propagate(a.node, rest, Direction::S2, c);
            }
        }
        for &a in pag.out_seg(u, AdjClass::Store) {
            // Unrefined loads of the field pair with this store via the
            // match edge (field-based, context cleared).
            let g = a.field();
            let mut any_refined = false;
            for &le in pag.loads_of(g) {
                if self.refinement.is_refined(le.edge) {
                    any_refined = true;
                } else {
                    self.flds_seen.insert(le.edge);
                    self.charge()?;
                    self.propagate(le.dst, f, Direction::S2, ctx_clear());
                }
            }
            // The precise alias detour feeds the refined loads.
            if any_refined {
                self.charge()?;
                let f2 = self.push_field(f, FieldFrame::Put(g))?;
                self.propagate(a.node, f2, Direction::S1, c);
            }
        }
        for &a in pag.out_seg(u, AdjClass::AssignGlobal) {
            self.charge()?;
            self.propagate(a.node, f, Direction::S2, ctx_clear());
        }
        for &a in pag.out_seg(u, AdjClass::Entry) {
            self.charge()?;
            if let Some(c2) = ctx_push(self.ctxs, c, a.site(), pag, self.config)? {
                self.propagate(a.node, f, Direction::S2, c2);
            }
        }
        for &a in pag.out_seg(u, AdjClass::Exit) {
            self.charge()?;
            if let Some(c2) = ctx_pop(self.ctxs, c, a.site(), pag, self.config)? {
                self.propagate(a.node, f, Direction::S2, c2);
            }
        }
        for &a in pag.in_seg(u, AdjClass::Store) {
            // An in-store discharges a pending *load* frame (the stored
            // value feeds the field the backward walk asked for) —
            // never a `Put` frame, which only an out-load may consume.
            if self.fields.peek(f) == Some(FieldFrame::Get(a.field())) {
                self.charge()?;
                let (_, rest) = self.fields.pop(f).expect("peeked");
                self.propagate(a.node, rest, Direction::S1, c);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsum_pag::PagBuilder;

    fn run_all(pag: &Pag, v: VarId) -> PointsToSet {
        let mut fields = StackPool::new();
        let mut ctxs = StackPool::new();
        let mut scratch = SearchScratch::default();
        let config = EngineConfig::unlimited();
        let mut ticket = Ticket::unlimited();
        let mut stats = QueryStats::default();
        let out = search(
            pag,
            &mut fields,
            &mut ctxs,
            &mut scratch,
            &config,
            Refinement::All,
            v,
            CtxId::EMPTY,
            &mut ticket,
            &mut stats,
        );
        assert!(out.complete());
        out.pts
    }

    #[test]
    fn interprocedural_field_flow() {
        // Vector-like: caller stores into v.f via callee, reads back.
        //   set(this, p) { this.f = p }
        //   main: c = new C; x = new X; set(c, x); t = c.f
        let mut b = PagBuilder::new();
        let main = b.add_method("main", None).unwrap();
        let set = b.add_method("set", None).unwrap();
        let c = b.add_local("c", main, None).unwrap();
        let x = b.add_local("x", main, None).unwrap();
        let t = b.add_local("t", main, None).unwrap();
        let this_set = b.add_local("this_set", set, None).unwrap();
        let p = b.add_local("p", set, None).unwrap();
        let oc = b.add_obj("oc", None, Some(main)).unwrap();
        let ox = b.add_obj("ox", None, Some(main)).unwrap();
        let field = b.field("f");
        b.add_new(oc, c).unwrap();
        b.add_new(ox, x).unwrap();
        let site = b.add_call_site("1", main).unwrap();
        b.add_entry(site, c, this_set).unwrap();
        b.add_entry(site, x, p).unwrap();
        b.add_store(field, p, this_set).unwrap();
        b.add_load(field, c, t).unwrap();
        let pag = b.finish();
        let pts = run_all(&pag, t);
        assert_eq!(pts.objects().into_iter().collect::<Vec<_>>(), vec![ox]);
    }

    #[test]
    fn match_edges_over_approximate_and_record_seen() {
        // Two unrelated containers with the same field: field-based must
        // conflate them, field-sensitive must separate.
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let p1 = b.add_local("p1", m, None).unwrap();
        let p2 = b.add_local("p2", m, None).unwrap();
        let x1 = b.add_local("x1", m, None).unwrap();
        let x2 = b.add_local("x2", m, None).unwrap();
        let y = b.add_local("y", m, None).unwrap();
        let o1 = b.add_obj("o1", None, Some(m)).unwrap();
        let o2 = b.add_obj("o2", None, Some(m)).unwrap();
        let oa = b.add_obj("oa", None, Some(m)).unwrap();
        let ob = b.add_obj("ob", None, Some(m)).unwrap();
        let f = b.field("f");
        b.add_new(oa, p1).unwrap();
        b.add_new(ob, p2).unwrap();
        b.add_new(o1, x1).unwrap();
        b.add_new(o2, x2).unwrap();
        b.add_store(f, x1, p1).unwrap();
        b.add_store(f, x2, p2).unwrap();
        b.add_load(f, p1, y).unwrap();
        let pag = b.finish();

        // Field-sensitive: only o1.
        let precise = run_all(&pag, y);
        assert_eq!(precise.objects().into_iter().collect::<Vec<_>>(), vec![o1]);

        // Field-based (nothing refined): o1 and o2, and the load edge is
        // recorded in fldsSeen.
        let refined = FxHashSet::default();
        let mut fields = StackPool::new();
        let mut ctxs = StackPool::new();
        let mut scratch = SearchScratch::default();
        let config = EngineConfig::unlimited();
        let mut ticket = Ticket::unlimited();
        let mut stats = QueryStats::default();
        let out = search(
            &pag,
            &mut fields,
            &mut ctxs,
            &mut scratch,
            &config,
            Refinement::Only(&refined),
            y,
            CtxId::EMPTY,
            &mut ticket,
            &mut stats,
        );
        assert!(out.complete());
        let objs: Vec<_> = out.pts.objects().into_iter().collect();
        assert_eq!(objs, vec![o1, o2], "field-based conflates the bases");
        assert_eq!(out.flds_seen.len(), 1);
    }

    #[test]
    fn uninitialized_field_chain_stays_empty() {
        // Same shape as ppta's provenance regression test, but through
        // the shared NOREFINE/REFINEPTS search: `elems` has loads and no
        // stores, so the exact answer is empty. A kind-blind pop rule
        // matched the pending `Get(elems)` frame at the out-load and
        // fabricated ov through the `arr` store on the aliased base.
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let c = b.add_local("c", m, None).unwrap();
        let v = b.add_local("v", m, None).unwrap();
        let t1 = b.add_local("t1", m, None).unwrap();
        let t2 = b.add_local("t2", m, None).unwrap();
        let y = b.add_local("y", m, None).unwrap();
        let oc = b.add_obj("oc", None, Some(m)).unwrap();
        let ov = b.add_obj("ov", None, Some(m)).unwrap();
        let elems = b.field("elems");
        let arr = b.field("arr");
        b.add_new(oc, c).unwrap();
        b.add_new(ov, v).unwrap();
        b.add_load(elems, c, t1).unwrap();
        b.add_store(arr, v, t1).unwrap();
        b.add_load(elems, c, t2).unwrap();
        b.add_load(arr, t2, y).unwrap();
        let pag = b.finish();
        let pts = run_all(&pag, y);
        assert!(
            pts.objects().is_empty(),
            "no store into `elems` exists, so y points to nothing: {:?}",
            pts.objects()
        );
    }

    #[test]
    fn unrealizable_paths_filtered() {
        // Same shape as DynSum's two_callers test; the search engine must
        // agree.
        let mut b = PagBuilder::new();
        let main = b.add_method("main", None).unwrap();
        let id = b.add_method("id", None).unwrap();
        let a1 = b.add_local("a1", main, None).unwrap();
        let a2 = b.add_local("a2", main, None).unwrap();
        let r1 = b.add_local("r1", main, None).unwrap();
        let r2 = b.add_local("r2", main, None).unwrap();
        let p = b.add_local("p", id, None).unwrap();
        let ret = b.add_local("ret", id, None).unwrap();
        let o1 = b.add_obj("o1", None, Some(main)).unwrap();
        let o2 = b.add_obj("o2", None, Some(main)).unwrap();
        b.add_new(o1, a1).unwrap();
        b.add_new(o2, a2).unwrap();
        b.add_assign(p, ret).unwrap();
        let s1 = b.add_call_site("1", main).unwrap();
        let s2 = b.add_call_site("2", main).unwrap();
        b.add_entry(s1, a1, p).unwrap();
        b.add_entry(s2, a2, p).unwrap();
        b.add_exit(s1, ret, r1).unwrap();
        b.add_exit(s2, ret, r2).unwrap();
        let pag = b.finish();
        let pts1 = run_all(&pag, r1);
        assert_eq!(pts1.objects().into_iter().collect::<Vec<_>>(), vec![o1]);
        let pts2 = run_all(&pag, r2);
        assert_eq!(pts2.objects().into_iter().collect::<Vec<_>>(), vec![o2]);
    }

    #[test]
    fn context_insensitive_mode_merges() {
        let mut b = PagBuilder::new();
        let main = b.add_method("main", None).unwrap();
        let id = b.add_method("id", None).unwrap();
        let a1 = b.add_local("a1", main, None).unwrap();
        let a2 = b.add_local("a2", main, None).unwrap();
        let r1 = b.add_local("r1", main, None).unwrap();
        let p = b.add_local("p", id, None).unwrap();
        let ret = b.add_local("ret", id, None).unwrap();
        let o1 = b.add_obj("o1", None, Some(main)).unwrap();
        let o2 = b.add_obj("o2", None, Some(main)).unwrap();
        b.add_new(o1, a1).unwrap();
        b.add_new(o2, a2).unwrap();
        b.add_assign(p, ret).unwrap();
        let s1 = b.add_call_site("1", main).unwrap();
        let s2 = b.add_call_site("2", main).unwrap();
        b.add_entry(s1, a1, p).unwrap();
        b.add_entry(s2, a2, p).unwrap();
        b.add_exit(s1, ret, r1).unwrap();
        let pag = b.finish();

        let mut fields = StackPool::new();
        let mut ctxs = StackPool::new();
        let mut scratch = SearchScratch::default();
        let config = EngineConfig {
            context_sensitive: false,
            ..EngineConfig::unlimited()
        };
        let mut ticket = Ticket::unlimited();
        let mut stats = QueryStats::default();
        let out = search(
            &pag,
            &mut fields,
            &mut ctxs,
            &mut scratch,
            &config,
            Refinement::All,
            r1,
            CtxId::EMPTY,
            &mut ticket,
            &mut stats,
        );
        let objs: Vec<_> = out.pts.objects().into_iter().collect();
        assert_eq!(objs, vec![o1, o2], "insensitive mode merges both sites");
    }

    #[test]
    fn budget_trips_and_reports_incomplete() {
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let mut prev = b.add_local("v0", m, None).unwrap();
        for i in 1..64 {
            let v = b.add_local(&format!("v{i}"), m, None).unwrap();
            b.add_assign(prev, v).unwrap();
            prev = v;
        }
        let pag = b.finish();
        let mut fields = StackPool::new();
        let mut ctxs = StackPool::new();
        let mut scratch = SearchScratch::default();
        let config = EngineConfig::default();
        let mut ticket = Ticket::new(5);
        let mut stats = QueryStats::default();
        let out = search(
            &pag,
            &mut fields,
            &mut ctxs,
            &mut scratch,
            &config,
            Refinement::All,
            prev,
            CtxId::EMPTY,
            &mut ticket,
            &mut stats,
        );
        assert_eq!(out.interrupt, Some(Interrupt::Budget));
    }

    #[test]
    fn cancellation_interrupts_the_search_promptly() {
        use dynsum_cfl::{CancelToken, QueryControl};
        use std::sync::Arc;

        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let mut prev = b.add_local("v0", m, None).unwrap();
        for i in 1..512 {
            let v = b.add_local(&format!("v{i}"), m, None).unwrap();
            b.add_assign(prev, v).unwrap();
            prev = v;
        }
        let pag = b.finish();
        let mut fields = StackPool::new();
        let mut ctxs = StackPool::new();
        let mut scratch = SearchScratch::default();
        let config = EngineConfig::unlimited();
        let token = Arc::new(CancelToken::new());
        token.cancel();
        let control = QueryControl::new().cancelled_by(token).poll_every(8);
        let mut ticket = Ticket::with_control(u64::MAX, &control);
        let mut stats = QueryStats::default();
        let out = search(
            &pag,
            &mut fields,
            &mut ctxs,
            &mut scratch,
            &config,
            Refinement::All,
            prev,
            CtxId::EMPTY,
            &mut ticket,
            &mut stats,
        );
        assert_eq!(out.interrupt, Some(Interrupt::Cancelled));
        assert!(
            stats.edges_traversed <= 8,
            "promptness: {} edges after a pre-cancelled token",
            stats.edges_traversed
        );
    }
}
