//! # dynsum-core — the four demand-driven points-to engines
//!
//! This crate implements the analyses of *On-Demand Dynamic
//! Summary-based Points-to Analysis* (Shang, Xie, Xue — CGO 2012) over
//! the Pointer Assignment Graphs of [`dynsum_pag`]:
//!
//! | engine | paper role | memorization |
//! |--------|-----------|--------------|
//! | [`NoRefine`] | Algorithm 1 without refinement or caching | none |
//! | [`RefinePts`] | Algorithms 1–2 (Sridharan–Bodík PLDI'06) | within a query |
//! | [`DynSum`] | **Algorithms 3–4 — the paper's contribution** | context-independent summaries, across queries |
//! | [`StaSum`] | Yan et al. ISSTA'11 | all-pairs static summaries, precomputed |
//!
//! All engines answer the same question — `pointsTo(v, c)` as
//! CFL-reachability in `L_FT ∩ R_RP` — over one shared configuration
//! space `(node, field stack, direction, context)`, so their precision is
//! identical by construction whenever queries resolve within budget; the
//! test suite verifies this on hand-written and random graphs, plus
//! subset-soundness against the exhaustive Andersen oracle.
//!
//! Each engine is split into a shareable half (frozen PAG + config +
//! DYNSUM's summary cache / STASUM's precomputed store) and a per-thread
//! scratch half. The [`Session`] API packages the former and hands out
//! `Send` [`QueryHandle`]s owning the latter; [`Session::run_batch`]
//! runs query batches across threads with results byte-identical to
//! sequential execution (deterministic budget accounting — see
//! [`Summary::cost`]). Batches are interruptible and fault-isolated:
//! [`Session::run_batch_with`] takes a [`BatchControl`] (shared cancel
//! token, deadline, deterministic [`FaultPlan`]), per-query panics are
//! caught and reported per-query, and [`Session::health`] snapshots the
//! robustness counters. The [`snapshot`] module persists a session's
//! summary-cache working set across process restarts
//! ([`Session::save_snapshot`] / [`Session::load_snapshot`]), with
//! version/fingerprint/digest fencing so stale snapshots degrade to a
//! cold start instead of corrupting results.
//!
//! ## Quickstart
//!
//! ```
//! use dynsum_core::{DemandPointsTo, DynSum};
//! use dynsum_pag::PagBuilder;
//!
//! // main: v = new O; w = v;
//! let mut b = PagBuilder::new();
//! let m = b.add_method("main", None)?;
//! let v = b.add_local("v", m, None)?;
//! let w = b.add_local("w", m, None)?;
//! let o = b.add_obj("o1", None, Some(m))?;
//! b.add_new(o, v)?;
//! b.add_assign(v, w)?;
//! let pag = b.finish();
//!
//! let mut engine = DynSum::new(&pag);
//! let result = engine.points_to(w);
//! assert!(result.resolved && result.pts.contains_obj(o));
//! # Ok::<(), dynsum_pag::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alias;
mod driver;
mod dynsum;
mod engine;
mod norefine;
pub mod ppta;
mod refinepts;
mod search;
mod session;
pub mod snapshot;
mod stasum;
mod summary;

pub use alias::{may_alias, AliasQuery, AliasResult};
pub use dynsum::DynSum;
pub use engine::{never_satisfied, ClientCheck, DemandPointsTo, EngineConfig};
pub use norefine::NoRefine;
pub use refinepts::RefinePts;
pub use session::{
    BatchControl, EngineKind, FaultPlan, QueryHandle, Session, SessionHealth, SessionQuery,
    SummaryShard,
};
pub use snapshot::{
    pag_fingerprint, SnapshotLoad, SnapshotReject, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use stasum::{StaSum, StaSumOptions, StaSumStats};
pub use summary::{CacheStats, Summary, SummaryCache, SummaryKey};
