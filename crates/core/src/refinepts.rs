//! REFINEPTS — refinement-based demand-driven analysis (Algorithms 1–2).

use dynsum_cfl::{CtxId, FxHashSet, PointsToSet, QueryControl, QueryResult, QueryStats, Ticket};
use dynsum_pag::{EdgeId, Pag, VarId};

use crate::engine::{ClientCheck, DemandPointsTo, EngineConfig};
use crate::search::{search, Refinement, SearchParts};

/// Runs one REFINEPTS query (the refinement loop of Algorithm 2) over
/// borrowed per-handle state. Shared by the legacy [`RefinePts`] engine
/// and [`Session`](crate::Session) query handles.
pub(crate) fn refinepts_query(
    pag: &Pag,
    config: &EngineConfig,
    parts: &mut SearchParts,
    v: VarId,
    satisfied: ClientCheck<'_>,
    control: &QueryControl,
) -> QueryResult {
    parts.ctxs.clear();
    let mut refined: FxHashSet<EdgeId> = FxHashSet::default();
    let mut ticket = Ticket::with_control(config.budget, control);
    let mut stats = QueryStats::default();

    for _ in 0..config.max_refinements {
        stats.refinement_iterations += 1;
        let out = search(
            pag,
            &mut parts.fields,
            &mut parts.ctxs,
            &mut parts.scratch,
            config,
            Refinement::Only(&refined),
            v,
            CtxId::EMPTY,
            &mut ticket,
            &mut stats,
        );
        let last = out.pts;
        // fldsSeen only ever contains unrefined loads, so an empty
        // set means no match edge fired this iteration: every object
        // in `last` was reached field-sensitively.
        let fresh: Vec<EdgeId> = out
            .flds_seen
            .iter()
            .copied()
            .filter(|e| !refined.contains(e))
            .collect();
        if let Some(kind) = out.interrupt {
            // Unresolved results must carry an under-approximation
            // (clients answer conservatively from it). When an
            // unrefined match edge fired, `last` may contain spurious
            // field-based objects, so only the empty set is sound. The
            // same soundness rule covers every interrupt kind — a
            // cancelled or deadline-tripped iteration unwinds exactly
            // like a budget-exhausted one.
            let pts = if fresh.is_empty() {
                last
            } else {
                PointsToSet::new()
            };
            return QueryResult::interrupted(pts, stats, kind);
        }
        if satisfied(&last) {
            // Client predicates are universally quantified over the
            // set, so satisfying the over-approximation is definitive.
            return QueryResult::resolved(last, stats);
        }
        if fresh.is_empty() {
            // No match edge fired: the answer is precise and further
            // refinement cannot improve it.
            return QueryResult::resolved(last, stats);
        }
        refined.extend(fresh);
    }
    // Refinement cap exhausted with match edges still unrefined: `last`
    // is over-approximate, and reporting it as resolved would present
    // spurious objects as definitive (letting cast/deref clients emit
    // false Refuted verdicts). Give up conservatively instead.
    QueryResult::over_budget(PointsToSet::new(), stats)
}

/// The REFINEPTS engine (Sridharan–Bodík PLDI'06, the paper's
/// state-of-the-art baseline).
///
/// Each query starts fully **field-based**: every load is paired with
/// every store of the same field through an artificial match edge. If the
/// client predicate is not yet satisfied, the match edges actually used
/// (`fldsSeen`) are promoted into `fldsToRefine` and the query reruns
/// with those loads explored field-sensitively — until the client is
/// satisfied, no new match edges appear (the answer is then precise), or
/// the shared per-query budget runs out (Algorithm 2).
///
/// # Examples
///
/// ```
/// use dynsum_core::{DemandPointsTo, RefinePts};
/// use dynsum_pag::PagBuilder;
///
/// let mut b = PagBuilder::new();
/// let m = b.add_method("main", None)?;
/// let v = b.add_local("v", m, None)?;
/// let o = b.add_obj("o1", None, Some(m))?;
/// b.add_new(o, v)?;
/// let pag = b.finish();
/// let mut engine = RefinePts::new(&pag);
/// assert!(engine.points_to(v).pts.contains_obj(o));
/// # Ok::<(), dynsum_pag::BuildError>(())
/// ```
#[derive(Debug)]
pub struct RefinePts<'p> {
    pag: &'p Pag,
    parts: SearchParts,
    config: EngineConfig,
    control: QueryControl,
}

impl<'p> RefinePts<'p> {
    /// Creates an engine with the default configuration.
    pub fn new(pag: &'p Pag) -> Self {
        Self::with_config(pag, EngineConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(pag: &'p Pag, config: EngineConfig) -> Self {
        RefinePts {
            pag,
            parts: SearchParts::default(),
            config,
            control: QueryControl::default(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Attaches interruption controls (cancellation token, deadline) to
    /// every subsequent query.
    pub fn set_control(&mut self, control: QueryControl) {
        self.control = control;
    }
}

impl DemandPointsTo for RefinePts<'_> {
    fn name(&self) -> &'static str {
        "REFINEPTS"
    }

    fn query(&mut self, v: VarId, satisfied: ClientCheck<'_>) -> QueryResult {
        refinepts_query(
            self.pag,
            &self.config,
            &mut self.parts,
            v,
            satisfied,
            &self.control,
        )
    }

    fn reset(&mut self) {
        self.parts = SearchParts::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsum_pag::{ObjId, PagBuilder};

    /// Two containers sharing a field name: field-based conflates them,
    /// refinement separates them.
    fn conflating_pag() -> (Pag, VarId, ObjId, ObjId) {
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let p1 = b.add_local("p1", m, None).unwrap();
        let p2 = b.add_local("p2", m, None).unwrap();
        let x1 = b.add_local("x1", m, None).unwrap();
        let x2 = b.add_local("x2", m, None).unwrap();
        let y = b.add_local("y", m, None).unwrap();
        let oa = b.add_obj("oa", None, Some(m)).unwrap();
        let ob = b.add_obj("ob", None, Some(m)).unwrap();
        let o1 = b.add_obj("o1", None, Some(m)).unwrap();
        let o2 = b.add_obj("o2", None, Some(m)).unwrap();
        let f = b.field("f");
        b.add_new(oa, p1).unwrap();
        b.add_new(ob, p2).unwrap();
        b.add_new(o1, x1).unwrap();
        b.add_new(o2, x2).unwrap();
        b.add_store(f, x1, p1).unwrap();
        b.add_store(f, x2, p2).unwrap();
        b.add_load(f, p1, y).unwrap();
        (b.finish(), y, o1, o2)
    }

    #[test]
    fn refines_until_precise_when_never_satisfied() {
        let (pag, y, o1, _o2) = conflating_pag();
        let mut e = RefinePts::new(&pag);
        let r = e.points_to(y);
        assert!(r.resolved);
        assert_eq!(r.pts.objects().into_iter().collect::<Vec<_>>(), vec![o1]);
        assert!(
            r.stats.refinement_iterations >= 2,
            "must take a field-based pass plus at least one refinement"
        );
    }

    #[test]
    fn stops_early_when_client_satisfied() {
        let (pag, y, o1, o2) = conflating_pag();
        let mut e = RefinePts::new(&pag);
        // A client that tolerates the conflated answer: one iteration.
        let r = e.query(y, &|pts| pts.contains_obj(o1));
        assert!(r.resolved);
        assert_eq!(r.stats.refinement_iterations, 1);
        assert!(
            r.pts.contains_obj(o2),
            "first iteration is field-based and over-approximate"
        );
    }

    #[test]
    fn refinement_never_loses_soundness() {
        // The refined answer is a subset of the field-based one.
        let (pag, y, ..) = conflating_pag();
        let mut e = RefinePts::new(&pag);
        let precise = e.points_to(y);
        let mut e2 = RefinePts::new(&pag);
        let loose = e2.query(y, &|_| true);
        assert!(precise.pts.objects().is_subset(&loose.pts.objects()));
    }

    #[test]
    fn no_fields_means_single_iteration() {
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let v = b.add_local("v", m, None).unwrap();
        let o = b.add_obj("o", None, Some(m)).unwrap();
        b.add_new(o, v).unwrap();
        let pag = b.finish();
        let mut e = RefinePts::new(&pag);
        let r = e.points_to(v);
        assert_eq!(r.stats.refinement_iterations, 1);
        assert!(r.pts.contains_obj(o));
    }

    #[test]
    fn budget_shared_across_iterations() {
        let (pag, y, _o1, o2) = conflating_pag();
        let config = EngineConfig {
            budget: 6,
            ..EngineConfig::default()
        };
        let mut e = RefinePts::with_config(&pag, config);
        let r = e.points_to(y);
        assert!(!r.resolved);
        assert!(r.stats.edges_traversed <= 6);
        // The partial answer must stay an under-approximation of the
        // exact answer {o1} even though the aborted iteration ran on
        // the over-approximate field-based abstraction.
        assert!(
            !r.pts.contains_obj(o2),
            "budget abort leaked a spurious field-based object"
        );
    }

    #[test]
    fn cancellation_mid_refinement_is_sound() {
        use dynsum_cfl::{Interrupt, Outcome};
        // A fuse that trips partway through the refinement loop must
        // obey the same soundness rule as a budget abort: when a match
        // edge fired in the aborted iteration, only the empty set is a
        // sound partial answer.
        let (pag, y, _o1, o2) = conflating_pag();
        for fuse_at in 1..24 {
            let mut e = RefinePts::new(&pag);
            e.set_control(QueryControl::new().fused_after(fuse_at, Interrupt::Cancelled));
            let r = e.points_to(y);
            if r.resolved {
                continue; // finished under the fuse point
            }
            assert_eq!(r.outcome, Outcome::Cancelled, "fuse at {fuse_at}");
            assert!(
                !r.pts.contains_obj(o2),
                "cancel at {fuse_at} leaked a spurious field-based object"
            );
        }
    }

    #[test]
    fn refinement_cap_exhaustion_is_not_resolved() {
        // One iteration is only the field-based pass; with the cap at 1
        // the engine never refines, so {o1, o2} is all it ever computed
        // and the exact answer {o1} is out of reach. Claiming `resolved`
        // here (the old behaviour) reported the spurious o2 as
        // definitive and broke both fuzzer invariants (answer ⊆ oracle,
        // resolved answers equal across engines).
        let (pag, y, o1, o2) = conflating_pag();
        let config = EngineConfig {
            max_refinements: 1,
            ..EngineConfig::default()
        };
        let mut e = RefinePts::with_config(&pag, config);
        let r = e.points_to(y);
        assert!(
            !r.resolved,
            "cap exhaustion must not claim a definitive answer"
        );
        assert!(!r.pts.contains_obj(o2), "over-approximation leaked");
        assert!(
            !r.pts.contains_obj(o1) || r.pts.objects().len() == 1,
            "unresolved payload must be a sound under-approximation"
        );
        // A cap that lets refinement run to the precise fixpoint still
        // resolves exactly.
        let mut e2 = RefinePts::with_config(&pag, EngineConfig::default());
        let full = e2.points_to(y);
        assert!(full.resolved);
        assert!(r.pts.objects().is_subset(&full.pts.objects()));
    }
}
