//! Persistent summary-cache snapshots: versioned, dependency-free
//! binary serialization of a [`Session`]'s DYNSUM working set, so a
//! JIT/IDE-style process restart starts **warm** instead of recomputing
//! every summary from scratch.
//!
//! The paper's economics (§1, §7) amortize summary computation across a
//! long-lived query stream; without persistence that amortization dies
//! with the process. [`Session::save_snapshot`] serializes the shared
//! summary cache — the *capped working set*, post-eviction, not the
//! unbounded history — together with the interned field-stack prefix its
//! keys reference, and [`Session::load_snapshot`] restores it by
//! re-interning every field stack through the same
//! [`Session::absorb`] machinery a parallel batch merge uses.
//!
//! # Safety model: reject, never trust
//!
//! A snapshot is advisory. The header carries a format version, a
//! [PAG fingerprint](pag_fingerprint), an [`EngineConfig`] semantic
//! digest ([`EngineConfig::semantic_digest`]) and a payload checksum;
//! the payload carries the session's invalidation epochs. **Any**
//! mismatch — version skew, code changed underneath the snapshot
//! (the incomplete-program setting), different analysis configuration,
//! truncation, bit rot, malformed structure — degrades to a cold start
//! ([`SnapshotLoad::Cold`]) instead of corrupting results. Loading never
//! panics on arbitrary bytes. With [`EngineConfig::deterministic_reuse`]
//! on (the default), a warm restore is *outcome-invisible*: every query
//! answers byte-identically to a cold process, only faster.
//!
//! # Wire format (version 1)
//!
//! All integers little-endian; no external dependencies (the workspace
//! is offline, so the codec is hand-rolled). The full specification,
//! versioning rules and the compatibility-rejection matrix live in
//! `docs/ARCHITECTURE.md`.
//!
//! ```text
//! header (45 bytes):
//!   magic            8  b"DSUMSNAP"
//!   version          u32
//!   engine kind      u8   (0 NOREFINE / 1 REFINEPTS / 2 DYNSUM / 3 STASUM)
//!   pag fingerprint  u64  (pag_fingerprint)
//!   config digest    u64  (EngineConfig::semantic_digest)
//!   payload length   u64
//!   payload checksum u64  (StableHasher over the payload bytes)
//! payload:
//!   epoch            u64
//!   invalidations    u32 count, then (method u32, epoch u64) each
//!   field-stack pool u32 count, then (element u32, parent u32) each,
//!                    in id order (StackPool::export)
//!   summary cache    u32 count, then per entry:
//!                      node u32, field stack u32, direction u8,
//!                      cost u64,
//!                      objs u32 count + obj u32 each,
//!                      boundaries u32 count +
//!                        (node u32, field stack u32, direction u8) each
//! ```
//!
//! # Examples
//!
//! Round-trip a warm cache through bytes; the restored session hits it
//! immediately:
//!
//! ```
//! use dynsum_core::{DemandPointsTo, EngineConfig, EngineKind, Session, SnapshotLoad};
//! use dynsum_pag::PagBuilder;
//!
//! let mut b = PagBuilder::new();
//! let m = b.add_method("main", None)?;
//! let v = b.add_local("v", m, None)?;
//! let o = b.add_obj("o1", None, Some(m))?;
//! b.add_new(o, v)?;
//! let pag = b.finish();
//!
//! // Warm a session, then persist its working set.
//! let mut session = Session::new(&pag, EngineKind::DynSum);
//! let shard = {
//!     let mut h = session.handle();
//!     h.points_to(v);
//!     h.into_summaries()
//! };
//! session.absorb(shard);
//! let mut bytes = Vec::new();
//! session.save_snapshot(&mut bytes)?;
//!
//! // "Restart": a fresh process loads the bytes and starts warm.
//! let (mut warm, load) =
//!     Session::load_snapshot(&bytes[..], &pag, EngineKind::DynSum, EngineConfig::default());
//! assert!(load.is_warm());
//! assert_eq!(warm.summary_count(), session.summary_count());
//! let r = warm.handle().points_to(v);
//! assert!(r.resolved && r.pts.contains_obj(o));
//! assert!(r.stats.cache_hits > 0, "first query served from the snapshot");
//!
//! // Garbage degrades to a cold start — never a panic, never bad data.
//! let (cold, load) =
//!     Session::load_snapshot(&b"not a snapshot"[..], &pag, EngineKind::DynSum, Default::default());
//! assert!(!load.is_warm());
//! assert_eq!(cold.summary_count(), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::hash::Hasher;
use std::io::{self, Read, Write};
use std::sync::Arc;

use dynsum_cfl::{Direction, FieldFrame, FieldStackId, FxHashMap, StableHasher, StackPool};
use dynsum_pag::{FieldId, MethodId, NodeId, Pag};

use crate::engine::EngineConfig;
use crate::session::{EngineKind, Session, SharedState, SummaryShard};
use crate::summary::{Summary, SummaryCache, SummaryKey};

/// The 8-byte magic prefix of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"DSUMSNAP";

/// The wire-format version this build writes and accepts. Bump on any
/// layout change; old versions are rejected (cold start), never
/// migrated in place.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Header size in bytes: magic + version + kind + fingerprint + digest
/// + payload length + payload checksum.
const HEADER_LEN: usize = 8 + 4 + 1 + 8 + 8 + 8 + 8;

/// Why a snapshot was rejected. Every variant degrades the load to a
/// clean cold start; none of them is a process-level error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotReject {
    /// The reader failed mid-read (filesystem error).
    Io(io::ErrorKind),
    /// The bytes do not start with [`SNAPSHOT_MAGIC`] — not a snapshot.
    BadMagic,
    /// A snapshot, but of a different format version.
    UnsupportedVersion {
        /// The version recorded in the header.
        found: u32,
    },
    /// Saved from a session running a different engine kind.
    EngineMismatch {
        /// The engine-kind tag recorded in the header.
        found: u8,
    },
    /// The PAG fingerprint differs: the code changed underneath the
    /// snapshot, so its summaries may describe methods that no longer
    /// exist in that shape.
    PagMismatch,
    /// The [`EngineConfig::semantic_digest`] differs: the snapshot's
    /// summaries were computed under different analysis semantics.
    ConfigMismatch,
    /// The loading configuration has
    /// [`EngineConfig::deterministic_reuse`] disabled. Free-reuse
    /// economics make warm results diverge from cold ones, so a warm
    /// restore could change query outcomes — refused by policy.
    NonDeterministicReuse,
    /// The byte stream ended before the header/payload was complete.
    Truncated,
    /// Structural validation failed; the message names the first check
    /// that tripped (checksum, id range, duplicate key, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapshotReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotReject::Io(kind) => write!(f, "read failed: {kind}"),
            SnapshotReject::BadMagic => f.write_str("not a snapshot (bad magic)"),
            SnapshotReject::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported format version {found} (want {SNAPSHOT_VERSION})"
                )
            }
            SnapshotReject::EngineMismatch { found } => {
                write!(f, "snapshot is for engine kind tag {found}")
            }
            SnapshotReject::PagMismatch => f.write_str("PAG fingerprint mismatch (code changed)"),
            SnapshotReject::ConfigMismatch => f.write_str("engine-config digest mismatch"),
            SnapshotReject::NonDeterministicReuse => {
                f.write_str("deterministic_reuse is off: warm restore could change results")
            }
            SnapshotReject::Truncated => f.write_str("snapshot truncated"),
            SnapshotReject::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
        }
    }
}

/// The outcome of [`Session::load_snapshot`]. The session itself is
/// always usable; this reports whether it starts warm or cold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotLoad {
    /// The snapshot was accepted and its working set restored.
    Warm {
        /// Summaries merged into the shared cache (after re-interning
        /// and re-applying the loader's eviction cap).
        summaries: usize,
        /// Field stacks re-interned from the snapshot pool.
        stacks: usize,
    },
    /// The snapshot was rejected; the session is a clean cold start.
    Cold(SnapshotReject),
}

impl SnapshotLoad {
    /// `true` when the load restored a snapshot.
    pub fn is_warm(&self) -> bool {
        matches!(self, SnapshotLoad::Warm { .. })
    }

    /// Summaries restored (0 on a cold start).
    pub fn summaries(&self) -> usize {
        match self {
            SnapshotLoad::Warm { summaries, .. } => *summaries,
            SnapshotLoad::Cold(_) => 0,
        }
    }

    /// The rejection reason, when cold.
    pub fn reject(&self) -> Option<SnapshotReject> {
        match self {
            SnapshotLoad::Warm { .. } => None,
            SnapshotLoad::Cold(reason) => Some(*reason),
        }
    }
}

/// A stable structural fingerprint of a [`Pag`], written into snapshot
/// headers so a snapshot is only restored against the exact graph it
/// was computed on.
///
/// Hashes every edge (endpoints, kind, operand), every name/label (the
/// identity a rebuilt front-end would have to reproduce for dense ids
/// to mean the same thing), per-variable owning methods, per-object
/// allocation sites and classes, and call-site recursion flags —
/// everything the engines' traversal semantics can observe. Two graphs
/// with equal fingerprints answer every query identically; a changed
/// program produces a different fingerprint and the snapshot degrades
/// to a cold start (the incomplete-program discipline: stale summaries
/// are never applied to changed code).
pub fn pag_fingerprint(pag: &Pag) -> u64 {
    let mut h = StableHasher::new();
    let write_str = |h: &mut StableHasher, s: &str| {
        h.write_u32(s.len() as u32);
        h.write(s.as_bytes());
    };
    h.write_u32(pag.num_vars() as u32);
    h.write_u32(pag.num_objs() as u32);
    h.write_u32(pag.num_methods() as u32);
    h.write_u32(pag.num_fields() as u32);
    h.write_u32(pag.num_call_sites() as u32);
    h.write_u32(pag.num_edges() as u32);
    for e in pag.edges() {
        h.write_u32(e.src.index() as u32);
        h.write_u32(e.dst.index() as u32);
        let (tag, operand) = edge_kind_tag(e.kind);
        h.write_u8(tag);
        h.write_u32(operand);
    }
    for (_, name) in pag.fields() {
        write_str(&mut h, name);
    }
    for (_, m) in pag.methods() {
        write_str(&mut h, &m.name);
    }
    for (_, v) in pag.vars() {
        write_str(&mut h, &v.name);
        h.write_u32(v.kind.method().map_or(u32::MAX, MethodId::as_raw));
    }
    for (_, o) in pag.objs() {
        write_str(&mut h, &o.label);
        h.write_u32(o.alloc_method.map_or(u32::MAX, MethodId::as_raw));
        h.write_u32(o.class.map_or(u32::MAX, |c| c.as_raw()));
    }
    for (_, s) in pag.call_sites() {
        write_str(&mut h, &s.label);
        h.write_u8(u8::from(s.recursive));
    }
    h.finish()
}

/// Stable tag + operand for an edge kind (fingerprint input only; edges
/// themselves are never serialized).
fn edge_kind_tag(kind: dynsum_pag::EdgeKind) -> (u8, u32) {
    use dynsum_pag::EdgeKind;
    match kind {
        EdgeKind::New => (0, 0),
        EdgeKind::Assign => (1, 0),
        EdgeKind::Load(f) => (2, f.as_raw()),
        EdgeKind::Store(f) => (3, f.as_raw()),
        EdgeKind::AssignGlobal => (4, 0),
        EdgeKind::Entry(i) => (5, i.as_raw()),
        EdgeKind::Exit(i) => (6, i.as_raw()),
    }
}

fn kind_tag(kind: EngineKind) -> u8 {
    match kind {
        EngineKind::NoRefine => 0,
        EngineKind::RefinePts => 1,
        EngineKind::DynSum => 2,
        EngineKind::StaSum => 3,
    }
}

fn direction_tag(dir: Direction) -> u8 {
    match dir {
        Direction::S1 => 0,
        Direction::S2 => 1,
    }
}

fn direction_of(tag: u8) -> Option<Direction> {
    match tag {
        0 => Some(Direction::S1),
        1 => Some(Direction::S2),
        _ => None,
    }
}

/// Wire form of a [`FieldFrame`]: the field id in the high bits, the
/// provenance kind in bit 0 (`0` = `Get`, `1` = `Put`). Introduced in
/// format version 2 — version-1 snapshots stored untagged field ids and
/// are rejected by the version gate.
fn frame_encode(frame: FieldFrame) -> u32 {
    let kind = match frame {
        FieldFrame::Get(_) => 0,
        FieldFrame::Put(_) => 1,
    };
    (frame.field().as_raw() << 1) | kind
}

fn frame_decode(raw: u32) -> FieldFrame {
    let field = FieldId::from_raw(raw >> 1);
    if raw & 1 == 0 {
        FieldFrame::Get(field)
    } else {
        FieldFrame::Put(field)
    }
}

// ---- little-endian codec ---------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write(bytes);
    h.finish()
}

/// Bounds-checked forward reader over the snapshot bytes. Every read
/// past the end is a clean [`SnapshotReject::Truncated`], which is what
/// makes arbitrary truncation safe.
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotReject> {
        if self.bytes.len() < n {
            return Err(SnapshotReject::Truncated);
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, SnapshotReject> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotReject> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnapshotReject> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl<'p> Session<'p> {
    /// Serializes this session's persistent working set — the DYNSUM
    /// summary cache (post-eviction: exactly the capped working set),
    /// the field-stack pool entries its keys reference, and the
    /// invalidation epochs — as a versioned binary snapshot.
    ///
    /// The header pins the format version, the engine kind, the
    /// [`pag_fingerprint`] and the [`EngineConfig::semantic_digest`], so
    /// [`load_snapshot`](Self::load_snapshot) can refuse anything the
    /// bytes no longer describe. Sessions of engines without cross-query
    /// state (NOREFINE / REFINEPTS / STASUM, whose store is recomputed
    /// from the PAG) write a valid snapshot with an empty working set.
    ///
    /// Lifetime counters ([`cache_stats`](Self::cache_stats),
    /// [`stale_rejections`](Self::stale_rejections), …) and clock
    /// recency bits are per-process observability, not analysis state:
    /// they are deliberately **not** persisted.
    pub fn save_snapshot<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        let payload = self.snapshot_payload();
        let mut head = Vec::with_capacity(HEADER_LEN);
        head.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u32(&mut head, SNAPSHOT_VERSION);
        head.push(kind_tag(self.engine()));
        put_u64(&mut head, pag_fingerprint(self.pag()));
        put_u64(&mut head, self.config().semantic_digest());
        put_u64(&mut head, payload.len() as u64);
        put_u64(&mut head, checksum(&payload));
        writer.write_all(&head)?;
        writer.write_all(&payload)
    }

    /// [`save_snapshot`](Self::save_snapshot) with **atomic replace**
    /// semantics: the bytes are written to a sibling temp file
    /// (`<path>.tmp`), synced, and renamed over `path` only once every
    /// byte landed. An IO failure mid-write — injected or real — can
    /// therefore never leave a truncated snapshot at `path`: a previous
    /// snapshot there survives intact, and the temp file is removed on
    /// failure (best effort).
    ///
    /// # Errors
    ///
    /// Any IO error from creating, writing, syncing, or renaming the
    /// temp file. `path` is unchanged on error.
    pub fn save_snapshot_to_path(&self, path: &std::path::Path) -> io::Result<()> {
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        let result = (|| {
            let mut file = std::fs::File::create(&tmp)?;
            self.save_snapshot(&mut file)?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// [`load_snapshot`](Self::load_snapshot) from a file path. A
    /// missing or unreadable file degrades to a cold start like any
    /// other reject — the returned session is always valid.
    pub fn load_snapshot_from_path(
        path: &std::path::Path,
        pag: &'p Pag,
        kind: EngineKind,
        config: EngineConfig,
    ) -> (Session<'p>, SnapshotLoad) {
        match std::fs::File::open(path) {
            Ok(file) => Self::load_snapshot(io::BufReader::new(file), pag, kind, config),
            Err(e) => (
                Session::with_config(pag, kind, config),
                SnapshotLoad::Cold(SnapshotReject::Io(e.kind())),
            ),
        }
    }

    /// The snapshot body: epoch, invalidation map, stack pool, cache.
    fn snapshot_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.epoch);
        let mut invalidated: Vec<(MethodId, u64)> =
            self.invalidated_at.iter().map(|(&m, &e)| (m, e)).collect();
        invalidated.sort_unstable();
        put_u32(&mut out, invalidated.len() as u32);
        for (m, e) in invalidated {
            put_u32(&mut out, m.as_raw());
            put_u64(&mut out, e);
        }
        match &self.state {
            SharedState::DynSum { cache, fields } => {
                put_u32(&mut out, fields.len() as u32);
                for (elem, parent) in fields.export() {
                    put_u32(&mut out, frame_encode(elem));
                    put_u32(&mut out, parent.as_raw());
                }
                // Sorted by key, so byte output is independent of hash
                // map iteration order (same state ⇒ same bytes).
                let mut entries: Vec<(&SummaryKey, &Arc<Summary>)> = cache.entries().collect();
                entries.sort_unstable_by_key(|(k, _)| **k);
                put_u32(&mut out, entries.len() as u32);
                for (&(node, fstack, dir), sum) in entries {
                    put_u32(&mut out, node.index() as u32);
                    put_u32(&mut out, fstack.as_raw());
                    out.push(direction_tag(dir));
                    put_u64(&mut out, sum.cost);
                    put_u32(&mut out, sum.objs.len() as u32);
                    for o in &sum.objs {
                        put_u32(&mut out, o.as_raw());
                    }
                    put_u32(&mut out, sum.boundaries.len() as u32);
                    for &(bn, bf, bd) in &sum.boundaries {
                        put_u32(&mut out, bn.index() as u32);
                        put_u32(&mut out, bf.as_raw());
                        out.push(direction_tag(bd));
                    }
                }
            }
            _ => {
                // No cross-query working set: empty pool + empty cache.
                put_u32(&mut out, 0);
                put_u32(&mut out, 0);
            }
        }
        out
    }

    /// Restores a session from snapshot bytes, degrading to a **cold
    /// start on any mismatch** — the returned session is always valid
    /// and always produces correct results; [`SnapshotLoad`] reports
    /// whether the working set was restored and, if not, why.
    ///
    /// Acceptance requires: the exact [`SNAPSHOT_VERSION`], the caller's
    /// `kind`, a [`pag_fingerprint`] match against `pag`, an
    /// [`EngineConfig::semantic_digest`] match against `config`,
    /// `config.deterministic_reuse` enabled, an intact checksum, and
    /// structural validity of every id in the payload. Restored
    /// field-stack ids are re-interned into the fresh session pool
    /// through [`Session::absorb`] — the same translation a parallel
    /// batch merge uses — and the loader's
    /// [`EngineConfig::max_cached_summaries`] cap is re-enforced, so a
    /// snapshot saved under a larger cap loads trimmed, not oversized.
    ///
    /// Invalidation epochs are restored too: methods fenced by
    /// [`invalidate_method`](Self::invalidate_method) before the save
    /// stay fenced in the restored session (their summaries were already
    /// evicted at save time and can never resurrect through the
    /// snapshot).
    pub fn load_snapshot<R: Read>(
        mut reader: R,
        pag: &'p Pag,
        kind: EngineKind,
        config: EngineConfig,
    ) -> (Session<'p>, SnapshotLoad) {
        let mut bytes = Vec::new();
        if let Err(e) = reader.read_to_end(&mut bytes) {
            let cold = Session::with_config(pag, kind, config);
            return (cold, SnapshotLoad::Cold(SnapshotReject::Io(e.kind())));
        }
        match Self::restore(&bytes, pag, kind, config) {
            Ok(warm) => warm,
            Err(reject) => {
                let cold = Session::with_config(pag, kind, config);
                (cold, SnapshotLoad::Cold(reject))
            }
        }
    }

    /// The fallible body of [`load_snapshot`](Self::load_snapshot):
    /// header checks, payload validation, absorb-based restore.
    fn restore(
        bytes: &[u8],
        pag: &'p Pag,
        kind: EngineKind,
        config: EngineConfig,
    ) -> Result<(Session<'p>, SnapshotLoad), SnapshotReject> {
        let mut cur = Cursor { bytes };
        if cur.take(8).map_err(|_| SnapshotReject::BadMagic)? != SNAPSHOT_MAGIC {
            return Err(SnapshotReject::BadMagic);
        }
        let version = cur.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotReject::UnsupportedVersion { found: version });
        }
        let found_kind = cur.u8()?;
        if found_kind != kind_tag(kind) {
            return Err(SnapshotReject::EngineMismatch { found: found_kind });
        }
        if !config.deterministic_reuse {
            return Err(SnapshotReject::NonDeterministicReuse);
        }
        if cur.u64()? != pag_fingerprint(pag) {
            return Err(SnapshotReject::PagMismatch);
        }
        if cur.u64()? != config.semantic_digest() {
            return Err(SnapshotReject::ConfigMismatch);
        }
        let payload_len = cur.u64()?;
        let declared_checksum = cur.u64()?;
        let payload = cur.bytes;
        if (payload.len() as u64) < payload_len {
            return Err(SnapshotReject::Truncated);
        }
        if (payload.len() as u64) > payload_len {
            return Err(SnapshotReject::Corrupt("trailing bytes"));
        }
        if checksum(payload) != declared_checksum {
            return Err(SnapshotReject::Corrupt("payload checksum"));
        }

        let mut cur = Cursor { bytes: payload };
        let epoch = cur.u64()?;
        let n_invalidated = cur.u32()?;
        let mut invalidated_at: FxHashMap<MethodId, u64> = FxHashMap::default();
        for _ in 0..n_invalidated {
            let m = cur.u32()?;
            let e = cur.u64()?;
            if m as usize >= pag.num_methods() {
                return Err(SnapshotReject::Corrupt(
                    "invalidated method id out of range",
                ));
            }
            if e > epoch {
                return Err(SnapshotReject::Corrupt(
                    "invalidation epoch beyond session epoch",
                ));
            }
            if invalidated_at.insert(MethodId::from_raw(m), e).is_some() {
                return Err(SnapshotReject::Corrupt("duplicate invalidated method"));
            }
        }

        let n_stacks = cur.u32()?;
        let mut pairs: Vec<(FieldFrame, FieldStackId)> = Vec::new();
        for _ in 0..n_stacks {
            let elem = cur.u32()?;
            let parent = cur.u32()?;
            if (elem >> 1) as usize >= pag.num_fields() {
                return Err(SnapshotReject::Corrupt("field id out of range"));
            }
            pairs.push((frame_decode(elem), FieldStackId::from_raw(parent)));
        }
        let fields: StackPool<FieldFrame> = StackPool::import(pairs)
            .ok_or(SnapshotReject::Corrupt("stack pool is not a valid export"))?;

        let n_summaries = cur.u32()?;
        let mut cache = SummaryCache::new();
        let stack_id = |cur: &mut Cursor<'_>| -> Result<FieldStackId, SnapshotReject> {
            let raw = cur.u32()?;
            if raw > n_stacks {
                return Err(SnapshotReject::Corrupt("field-stack id out of range"));
            }
            Ok(FieldStackId::from_raw(raw))
        };
        let node_id = |raw: u32| -> Result<NodeId, SnapshotReject> {
            if raw as usize >= pag.num_nodes() {
                return Err(SnapshotReject::Corrupt("node id out of range"));
            }
            Ok(NodeId::from_raw(raw))
        };
        for _ in 0..n_summaries {
            let node = node_id(cur.u32()?)?;
            let fstack = stack_id(&mut cur)?;
            let dir =
                direction_of(cur.u8()?).ok_or(SnapshotReject::Corrupt("bad direction tag"))?;
            let cost = cur.u64()?;
            let n_objs = cur.u32()?;
            let mut objs = Vec::new();
            for _ in 0..n_objs {
                let raw = cur.u32()?;
                if raw as usize >= pag.num_objs() {
                    return Err(SnapshotReject::Corrupt("object id out of range"));
                }
                objs.push(dynsum_pag::ObjId::from_raw(raw));
            }
            let n_bounds = cur.u32()?;
            let mut boundaries = Vec::new();
            for _ in 0..n_bounds {
                let bn = node_id(cur.u32()?)?;
                let bf = stack_id(&mut cur)?;
                let bd = direction_of(cur.u8()?)
                    .ok_or(SnapshotReject::Corrupt("bad boundary direction tag"))?;
                boundaries.push((bn, bf, bd));
            }
            let before = cache.len();
            cache.insert_if_absent(
                (node, fstack, dir),
                Arc::new(Summary {
                    objs,
                    boundaries,
                    cost,
                }),
            );
            if cache.len() == before {
                return Err(SnapshotReject::Corrupt("duplicate summary key"));
            }
        }
        if !cur.is_empty() {
            return Err(SnapshotReject::Corrupt("payload longer than its contents"));
        }
        if kind != EngineKind::DynSum && (n_stacks != 0 || n_summaries != 0) {
            return Err(SnapshotReject::Corrupt(
                "working set on a cache-less engine",
            ));
        }

        // Build the cold session, restore the fences, then merge the
        // snapshot exactly like a detached batch shard: absorb
        // re-interns every field stack into the session pool and
        // re-enforces the loader's eviction cap. The shard is stamped
        // with the saved epoch, so entries pass the fence (every
        // invalidation recorded in the snapshot already evicted its
        // summaries before the save).
        let mut session = Session::with_config(pag, kind, config);
        session.epoch = epoch;
        session.invalidated_at = invalidated_at;
        let restored_stacks = fields.len();
        let summaries = session.absorb(SummaryShard {
            cache,
            fields,
            epoch,
        });
        let load = SnapshotLoad::Warm {
            summaries,
            stacks: restored_stacks,
        };
        Ok((session, load))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DemandPointsTo;
    use dynsum_pag::{ObjId, PagBuilder, VarId};

    /// r = get(c) where get loads this.f — summaries with non-empty
    /// field stacks in keys and boundaries, so the snapshot exercises
    /// the pool export and the absorb re-interning path.
    fn field_pag() -> (Pag, VarId, ObjId) {
        let mut b = PagBuilder::new();
        let main = b.add_method("main", None).unwrap();
        let get = b.add_method("get", None).unwrap();
        let f = b.field("f");
        let this_g = b.add_local("this_g", get, None).unwrap();
        let ret = b.add_local("ret", get, None).unwrap();
        b.add_load(f, this_g, ret).unwrap();
        let c = b.add_local("c", main, None).unwrap();
        let x = b.add_local("x", main, None).unwrap();
        let r = b.add_local("r", main, None).unwrap();
        let oc = b.add_obj("oc", None, Some(main)).unwrap();
        let ox = b.add_obj("ox", None, Some(main)).unwrap();
        b.add_new(oc, c).unwrap();
        b.add_new(ox, x).unwrap();
        b.add_store(f, x, c).unwrap();
        let s = b.add_call_site("1", main).unwrap();
        b.add_entry(s, c, this_g).unwrap();
        b.add_exit(s, ret, r).unwrap();
        (b.finish(), r, ox)
    }

    fn warm_session(pag: &Pag, r: VarId) -> Session<'_> {
        let mut session = Session::new(pag, EngineKind::DynSum);
        let shard = {
            let mut h = session.handle();
            h.points_to(r);
            h.into_summaries()
        };
        session.absorb(shard);
        session
    }

    fn snapshot_of(session: &Session<'_>) -> Vec<u8> {
        let mut bytes = Vec::new();
        session.save_snapshot(&mut bytes).unwrap();
        bytes
    }

    /// A `Write` that fails with an injected error once `fail_after`
    /// write calls have succeeded — the IO half of the fault plan.
    struct FailingWriter {
        ok: Vec<u8>,
        calls: u64,
        fail_after: u64,
    }

    impl FailingWriter {
        fn new(fail_after: u64) -> Self {
            FailingWriter {
                ok: Vec::new(),
                calls: 0,
                fail_after,
            }
        }
    }

    impl io::Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.calls >= self.fail_after {
                return Err(io::Error::other("injected IO fault"));
            }
            self.calls += 1;
            self.ok.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// A unique scratch directory per test (no tempfile dependency).
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dynsum_snapshot_{}_{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_fails_cleanly_at_every_write_call() {
        let (pag, r, _) = field_pag();
        let session = warm_session(&pag, r);
        // Count the writes of a clean save, then inject a failure at
        // every single write index: each save must surface the error
        // (never panic, never silently succeed short).
        let total = {
            let mut probe = FailingWriter::new(u64::MAX);
            session.save_snapshot(&mut probe).unwrap();
            probe.calls
        };
        assert!(total >= 2, "header and payload are separate writes");
        for fail_at in 0..total {
            let mut w = FailingWriter::new(fail_at);
            let err = session.save_snapshot(&mut w).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Other, "write {fail_at}");
            // Whatever landed before the fault is a strict prefix of the
            // good bytes — a reader can reject it as truncated.
            let good = snapshot_of(&session);
            assert!(good.starts_with(&w.ok), "write {fail_at}");
            assert!(w.ok.len() < good.len(), "write {fail_at}");
        }
    }

    #[test]
    fn truncated_bytes_always_reject_as_cold() {
        let (pag, r, _) = field_pag();
        let session = warm_session(&pag, r);
        let good = snapshot_of(&session);
        // Every possible truncation point — a torn non-atomic write —
        // must degrade to a cold start, not a corrupt warm one.
        for cut in 0..good.len() {
            let (restored, load) = Session::load_snapshot(
                &good[..cut],
                &pag,
                EngineKind::DynSum,
                EngineConfig::default(),
            );
            assert!(matches!(load, SnapshotLoad::Cold(_)), "cut {cut}");
            assert_eq!(restored.summary_count(), 0, "cut {cut}");
        }
    }

    #[test]
    fn path_save_round_trips_and_leaves_no_temp_file() {
        let (pag, r, ox) = field_pag();
        let session = warm_session(&pag, r);
        let dir = scratch_dir("roundtrip");
        let path = dir.join("warm.snap");
        session.save_snapshot_to_path(&path).unwrap();
        assert!(!dir.join("warm.snap.tmp").exists(), "temp renamed away");
        let (mut restored, load) = Session::load_snapshot_from_path(
            &path,
            &pag,
            EngineKind::DynSum,
            EngineConfig::default(),
        );
        assert!(load.is_warm());
        assert_eq!(restored.summary_count(), session.summary_count());
        let got = restored.run_batch_vars(&[r], 1);
        assert!(got[0].resolved && got[0].pts.contains_obj(ox));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_path_save_preserves_the_previous_snapshot() {
        let (pag, r, _) = field_pag();
        let session = warm_session(&pag, r);
        let dir = scratch_dir("atomic");
        let path = dir.join("warm.snap");
        session.save_snapshot_to_path(&path).unwrap();
        let before = std::fs::read(&path).unwrap();
        // Force the temp-file create to fail by squatting a directory on
        // the temp path: the save must error out, and the previous
        // snapshot at `path` must survive byte-identical.
        let tmp = dir.join("warm.snap.tmp");
        std::fs::create_dir(&tmp).unwrap();
        assert!(session.save_snapshot_to_path(&path).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), before);
        let (restored, load) = Session::load_snapshot_from_path(
            &path,
            &pag,
            EngineKind::DynSum,
            EngineConfig::default(),
        );
        assert!(load.is_warm());
        assert!(restored.summary_count() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_path_degrades_to_cold() {
        let (pag, ..) = field_pag();
        let dir = scratch_dir("missing");
        let (restored, load) = Session::load_snapshot_from_path(
            &dir.join("nope.snap"),
            &pag,
            EngineKind::DynSum,
            EngineConfig::default(),
        );
        assert!(matches!(
            load,
            SnapshotLoad::Cold(SnapshotReject::Io(io::ErrorKind::NotFound))
        ));
        assert_eq!(restored.summary_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_trip_restores_the_working_set() {
        let (pag, r, ox) = field_pag();
        let session = warm_session(&pag, r);
        assert!(session.summary_count() > 0);
        let bytes = snapshot_of(&session);

        let (warm, load) = Session::load_snapshot(
            &bytes[..],
            &pag,
            EngineKind::DynSum,
            EngineConfig::default(),
        );
        assert_eq!(
            load,
            SnapshotLoad::Warm {
                summaries: session.summary_count(),
                stacks: 1, // the [f] stack
            }
        );
        assert_eq!(warm.summary_count(), session.summary_count());
        let res = warm.handle().points_to(r);
        assert!(res.resolved && res.pts.contains_obj(ox));
        assert!(res.stats.cache_hits > 0, "snapshot cache must serve hits");
        // Saving the restored session reproduces identical bytes (the
        // payload is sorted, so this is a meaningful determinism check).
        assert_eq!(snapshot_of(&warm), bytes);
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let (pag, r, _) = field_pag();
        let a = snapshot_of(&warm_session(&pag, r));
        let b = snapshot_of(&warm_session(&pag, r));
        assert_eq!(a, b);
    }

    #[test]
    fn every_truncation_degrades_to_cold() {
        let (pag, r, ox) = field_pag();
        let bytes = snapshot_of(&warm_session(&pag, r));
        for len in 0..bytes.len() {
            let (s, load) = Session::load_snapshot(
                &bytes[..len],
                &pag,
                EngineKind::DynSum,
                EngineConfig::default(),
            );
            assert!(!load.is_warm(), "prefix of {len} bytes accepted");
            assert_eq!(s.summary_count(), 0);
            assert!(s.handle().points_to(r).pts.contains_obj(ox));
        }
    }

    #[test]
    fn every_single_byte_flip_degrades_to_cold() {
        let (pag, r, _) = field_pag();
        let bytes = snapshot_of(&warm_session(&pag, r));
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            let (s, load) =
                Session::load_snapshot(&bad[..], &pag, EngineKind::DynSum, EngineConfig::default());
            assert!(!load.is_warm(), "flip at byte {i} accepted");
            assert_eq!(s.summary_count(), 0);
        }
    }

    #[test]
    fn header_mismatches_carry_their_reason() {
        let (pag, r, _) = field_pag();
        let bytes = snapshot_of(&warm_session(&pag, r));
        let load_with =
            |bytes: &[u8], kind, config| Session::load_snapshot(bytes, &pag, kind, config).1;

        let mut versioned = bytes.clone();
        versioned[8] = SNAPSHOT_VERSION as u8 + 1;
        assert_eq!(
            load_with(&versioned, EngineKind::DynSum, EngineConfig::default()).reject(),
            Some(SnapshotReject::UnsupportedVersion {
                found: SNAPSHOT_VERSION + 1
            })
        );

        assert_eq!(
            load_with(&bytes, EngineKind::NoRefine, EngineConfig::default()).reject(),
            Some(SnapshotReject::EngineMismatch {
                found: kind_tag(EngineKind::DynSum)
            })
        );

        let other_budget = EngineConfig {
            budget: 1234,
            ..EngineConfig::default()
        };
        assert_eq!(
            load_with(&bytes, EngineKind::DynSum, other_budget).reject(),
            Some(SnapshotReject::ConfigMismatch)
        );

        let free_reuse = EngineConfig {
            deterministic_reuse: false,
            ..EngineConfig::default()
        };
        assert_eq!(
            load_with(&bytes, EngineKind::DynSum, free_reuse).reject(),
            Some(SnapshotReject::NonDeterministicReuse)
        );

        assert_eq!(
            load_with(
                b"garbage-bytes",
                EngineKind::DynSum,
                EngineConfig::default()
            )
            .reject(),
            Some(SnapshotReject::BadMagic)
        );

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            load_with(&trailing, EngineKind::DynSum, EngineConfig::default()).reject(),
            Some(SnapshotReject::Corrupt("trailing bytes"))
        );
    }

    #[test]
    fn pag_mismatch_is_rejected() {
        let (pag, r, _) = field_pag();
        let bytes = snapshot_of(&warm_session(&pag, r));
        // Same shape, one extra edge: different program, different
        // fingerprint.
        let mut b = PagBuilder::new();
        let m = b.add_method("main", None).unwrap();
        let v = b.add_local("v", m, None).unwrap();
        let o = b.add_obj("o1", None, Some(m)).unwrap();
        b.add_new(o, v).unwrap();
        let other = b.finish();
        assert_ne!(pag_fingerprint(&pag), pag_fingerprint(&other));
        let (s, load) = Session::load_snapshot(
            &bytes[..],
            &other,
            EngineKind::DynSum,
            EngineConfig::default(),
        );
        assert_eq!(load.reject(), Some(SnapshotReject::PagMismatch));
        assert_eq!(s.summary_count(), 0);
    }

    #[test]
    fn loader_cap_is_reenforced_on_restore() {
        let (pag, r, _) = field_pag();
        let session = warm_session(&pag, r);
        assert!(session.summary_count() > 1);
        let bytes = snapshot_of(&session);
        // The cap is outside the semantic digest, so the snapshot loads
        // — trimmed to the loader's bound.
        let capped = EngineConfig {
            max_cached_summaries: Some(1),
            ..EngineConfig::default()
        };
        let (s, load) = Session::load_snapshot(&bytes[..], &pag, EngineKind::DynSum, capped);
        assert!(load.is_warm());
        assert!(s.summary_count() <= 1);
        assert!(s.cache_stats().evictions > 0);
    }

    #[test]
    fn save_after_invalidation_keeps_the_fence() {
        let (pag, r, ox) = field_pag();
        let mut session = warm_session(&pag, r);
        let get = pag.find_method("get").unwrap();
        assert!(session.invalidate_method(get) > 0);
        let bytes = snapshot_of(&session);
        let (mut restored, load) = Session::load_snapshot(
            &bytes[..],
            &pag,
            EngineKind::DynSum,
            EngineConfig::default(),
        );
        assert!(load.is_warm());
        // The fenced method's summaries did not resurrect...
        assert_eq!(restored.invalidate_method(get), 0);
        // ...and queries recompute them correctly.
        let res = restored.handle().points_to(r);
        assert!(res.resolved && res.pts.contains_obj(ox));
    }

    #[test]
    fn cache_less_engines_round_trip_empty_snapshots() {
        let (pag, ..) = field_pag();
        for kind in [
            EngineKind::NoRefine,
            EngineKind::RefinePts,
            EngineKind::StaSum,
        ] {
            let session = Session::new(&pag, kind);
            let mut bytes = Vec::new();
            session.save_snapshot(&mut bytes).unwrap();
            let (s, load) = Session::load_snapshot(&bytes[..], &pag, kind, EngineConfig::default());
            assert_eq!(
                load,
                SnapshotLoad::Warm {
                    summaries: 0,
                    stacks: 0
                }
            );
            assert_eq!(s.engine(), kind);
        }
    }

    #[test]
    fn fingerprint_is_sensitive_to_semantic_flags() {
        // Recursion flags change traversal semantics without changing
        // the edge list; the fingerprint must see them.
        let build = |recursive: bool| {
            let mut b = PagBuilder::new();
            let m = b.add_method("m", None).unwrap();
            let m2 = b.add_method("m2", None).unwrap();
            let a = b.add_local("a", m, None).unwrap();
            let p = b.add_local("p", m2, None).unwrap();
            let s = b.add_call_site("1", m).unwrap();
            b.set_recursive(s, recursive).unwrap();
            b.add_entry(s, a, p).unwrap();
            b.finish()
        };
        assert_ne!(
            pag_fingerprint(&build(false)),
            pag_fingerprint(&build(true))
        );
    }

    #[test]
    fn config_digest_separates_semantics_from_tuning() {
        let base = EngineConfig::default();
        let semantic = EngineConfig {
            budget: base.budget + 1,
            ..base
        };
        assert_ne!(base.semantic_digest(), semantic.semantic_digest());
        let tuning = EngineConfig {
            max_cached_summaries: Some(7),
            worker_stack_bytes: 1 << 20,
            ..base
        };
        assert_eq!(base.semantic_digest(), tuning.semantic_digest());
    }
}
