//! Engine configuration, the common demand-query trait, and shared
//! context-stack operations.

use dynsum_cfl::{Budget, CtxId, Interrupt, PointsToSet, QueryResult, StackPool};
use dynsum_pag::{CallSiteId, Pag, VarId};

/// Tuning knobs shared by every demand-driven engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Per-query edge-traversal budget (the paper uses 75,000; §5.2).
    pub budget: u64,
    /// Maximum field-stack depth; deeper configurations abort the query
    /// conservatively (recursive data structures can pump the stack).
    pub max_field_depth: usize,
    /// Maximum context-stack depth; deeper pushes abort conservatively.
    pub max_ctx_depth: usize,
    /// Enables DYNSUM's cross-query summary cache (disable for the
    /// ablation study).
    pub cache_summaries: bool,
    /// Maximum REFINEPTS refinement iterations per query.
    pub max_refinements: u32,
    /// When `false`, call entries/exits are treated as plain assignments:
    /// the context-insensitive `L_FT`-only analysis (§3.2), which must
    /// agree exactly with the Andersen oracle.
    pub context_sensitive: bool,
    /// Deterministic reuse accounting (DYNSUM): a summary-cache hit
    /// charges the summary's recorded cold cost against the query budget
    /// instead of being free, making every query's outcome a pure
    /// function of `(pag, config, query)` — the property behind
    /// [`Session::run_batch`](crate::Session::run_batch)'s byte-identical
    /// parallel results.
    ///
    /// The price is resolution rate: queries that only fit the budget
    /// because warm hits were free now abort over-budget exactly as they
    /// would on a cold engine (the medium-profile perf report went from
    /// 33 to 59 unresolved across the three clients). Set `false` to
    /// restore the paper's free-reuse economics for single-engine
    /// replication runs — with it off, warm results may depend on query
    /// order and cache state, and `run_batch` results may vary with the
    /// thread count.
    pub deterministic_reuse: bool,
    /// Size cap on the DYNSUM summary cache: after each query (and after
    /// every [`Session::absorb`](crate::Session::absorb) merge) a clock
    /// sweep evicts entries down to this many, keeping a long-lived
    /// query stream's memory bounded. `None` (the default) never evicts.
    ///
    /// With [`deterministic_reuse`](Self::deterministic_reuse) on,
    /// eviction **cannot change any query's outcome** — reuse charges
    /// cold cost, so results are cache-independent by construction; the
    /// cap only trades hit rate (wall-clock) for memory. In a
    /// [`Session`](crate::Session), the cap bounds the shared cache and
    /// each worker's in-flight shard separately.
    pub max_cached_summaries: Option<usize>,
    /// Stack reservation for
    /// [`Session::run_batch`](crate::Session::run_batch) worker
    /// threads. PPTA recursion is
    /// bounded by method-local graph size, but generated methods can be
    /// large, so workers default to the generous reservation `main`
    /// typically has (64 MiB). If the host cannot spawn a worker with
    /// this reservation, the batch degrades to fewer workers instead of
    /// panicking (see
    /// [`Session::spawn_failures`](crate::Session::spawn_failures)).
    pub worker_stack_bytes: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            budget: Budget::DEFAULT_LIMIT,
            max_field_depth: 512,
            max_ctx_depth: 256,
            cache_summaries: true,
            max_refinements: 32,
            context_sensitive: true,
            deterministic_reuse: true,
            max_cached_summaries: None,
            worker_stack_bytes: 64 * 1024 * 1024,
        }
    }
}

impl EngineConfig {
    /// A configuration with an effectively unlimited budget, for tests
    /// that must observe complete answers.
    pub fn unlimited() -> Self {
        EngineConfig {
            budget: u64::MAX,
            ..EngineConfig::default()
        }
    }

    /// A stable 64-bit digest of the **outcome-relevant** configuration
    /// fields, written into snapshot headers (see the
    /// [`snapshot`](crate::snapshot) module) so a persisted summary
    /// cache is only restored under a configuration that would have
    /// produced the same summaries and the same query results.
    ///
    /// Covered: [`budget`](Self::budget),
    /// [`max_field_depth`](Self::max_field_depth),
    /// [`max_ctx_depth`](Self::max_ctx_depth),
    /// [`cache_summaries`](Self::cache_summaries),
    /// [`max_refinements`](Self::max_refinements),
    /// [`context_sensitive`](Self::context_sensitive) and
    /// [`deterministic_reuse`](Self::deterministic_reuse).
    ///
    /// Deliberately **not** covered:
    /// [`max_cached_summaries`](Self::max_cached_summaries) and
    /// [`worker_stack_bytes`](Self::worker_stack_bytes). Neither can
    /// change any query's
    /// outcome (eviction is outcome-free under deterministic reuse, and
    /// the stack reservation only affects spawn success), so a snapshot
    /// saved under one cap loads cleanly under another — the load path
    /// re-enforces the loader's cap.
    pub fn semantic_digest(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = dynsum_cfl::StableHasher::new();
        h.write_u64(self.budget);
        h.write_u64(self.max_field_depth as u64);
        h.write_u64(self.max_ctx_depth as u64);
        h.write_u8(u8::from(self.cache_summaries));
        h.write_u32(self.max_refinements);
        h.write_u8(u8::from(self.context_sensitive));
        h.write_u8(u8::from(self.deterministic_reuse));
        h.finish()
    }
}

/// A client-satisfaction predicate (the paper's `satisfyClient`): returns
/// `true` when the (possibly over-approximate) points-to set already
/// answers the client's question positively, allowing REFINEPTS to stop
/// refining early.
///
/// The `Sync` bound lets one predicate reference cross the threads of a
/// [`Session::run_batch`](crate::Session::run_batch) without cloning
/// tricks; predicates are read-only views over frozen analysis inputs,
/// so the bound costs client code nothing in practice.
pub type ClientCheck<'a> = &'a (dyn Fn(&PointsToSet) -> bool + Sync);

/// A predicate that is never satisfied — forces full precision.
pub fn never_satisfied(_: &PointsToSet) -> bool {
    false
}

/// The common interface of the four demand-driven points-to engines
/// (Table 2): NOREFINE, REFINEPTS, DYNSUM and STASUM.
pub trait DemandPointsTo {
    /// Engine name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Answers `pointsTo(v, ∅)` for a client, refining only until
    /// `satisfied` returns `true` (engines without refinement ignore the
    /// predicate and always compute the full answer).
    fn query(&mut self, v: VarId, satisfied: ClientCheck<'_>) -> QueryResult;

    /// Answers `pointsTo(v, ∅)` at full precision.
    fn points_to(&mut self, v: VarId) -> QueryResult {
        self.query(v, &never_satisfied)
    }

    /// Number of method summaries currently memorized across queries
    /// (DYNSUM's `Cache` size / STASUM's precomputed store; 0 for the
    /// engines without cross-query memorization). This is the quantity
    /// plotted in Figure 5.
    fn summary_count(&self) -> usize {
        0
    }

    /// Drops all cross-query state, as if freshly constructed.
    fn reset(&mut self);
}

/// Result of a context-stack operation: the successor context, or `None`
/// when the transition is unrealizable (parenthesis mismatch). The error
/// is the general [`Interrupt`] so depth-cap aborts ride the same unwind
/// channel as budget, cancellation and deadline trips.
pub(crate) type CtxStep = Result<Option<CtxId>, Interrupt>;

/// Pushes call site `i` (traversing an `exit_i` edge backwards or an
/// `entry_i` edge forwards).
///
/// Recursive sites are context-transparent (the paper collapses
/// call-graph cycles, §5.1); context-insensitive mode keeps every context
/// empty; exceeding the depth cap aborts the query conservatively.
pub(crate) fn ctx_push(
    ctxs: &mut StackPool<CallSiteId>,
    c: CtxId,
    i: CallSiteId,
    pag: &Pag,
    config: &EngineConfig,
) -> CtxStep {
    if !config.context_sensitive {
        return Ok(Some(CtxId::EMPTY));
    }
    if pag.is_recursive_site(i) {
        return Ok(Some(c));
    }
    if ctxs.depth(c) >= config.max_ctx_depth {
        return Err(Interrupt::Budget);
    }
    Ok(Some(ctxs.push(c, i)))
}

/// Pops call site `i` (traversing an `entry_i` edge backwards or an
/// `exit_i` edge forwards). An empty context matches anything — realizable
/// paths may start and end in different methods (Algorithm 1, line 11).
pub(crate) fn ctx_pop(
    ctxs: &StackPool<CallSiteId>,
    c: CtxId,
    i: CallSiteId,
    pag: &Pag,
    config: &EngineConfig,
) -> CtxStep {
    if !config.context_sensitive {
        return Ok(Some(CtxId::EMPTY));
    }
    if pag.is_recursive_site(i) {
        return Ok(Some(c));
    }
    match ctxs.peek(c) {
        None => Ok(Some(CtxId::EMPTY)),
        Some(top) if top == i => Ok(Some(ctxs.pop(c).expect("non-empty").1)),
        Some(_) => Ok(None),
    }
}

/// The successor context across an `assignglobal` edge: globals are
/// context-insensitive, so the context is cleared (Algorithm 1 lines 6–7).
pub(crate) fn ctx_clear() -> CtxId {
    CtxId::EMPTY
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsum_pag::PagBuilder;

    fn site_pag(recursive: bool) -> (Pag, CallSiteId) {
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let m2 = b.add_method("m2", None).unwrap();
        let a = b.add_local("a", m, None).unwrap();
        let p = b.add_local("p", m2, None).unwrap();
        let s = b.add_call_site("1", m).unwrap();
        b.set_recursive(s, recursive).unwrap();
        b.add_entry(s, a, p).unwrap();
        (b.finish(), s)
    }

    #[test]
    fn push_then_pop_round_trips() {
        let (pag, s) = site_pag(false);
        let config = EngineConfig::default();
        let mut ctxs = StackPool::new();
        let c1 = ctx_push(&mut ctxs, CtxId::EMPTY, s, &pag, &config)
            .unwrap()
            .unwrap();
        assert_eq!(ctxs.depth(c1), 1);
        let c0 = ctx_pop(&ctxs, c1, s, &pag, &config).unwrap().unwrap();
        assert!(c0.is_empty());
    }

    #[test]
    fn pop_on_empty_is_allowed() {
        let (pag, s) = site_pag(false);
        let config = EngineConfig::default();
        let ctxs = StackPool::new();
        let c = ctx_pop(&ctxs, CtxId::EMPTY, s, &pag, &config).unwrap();
        assert_eq!(c, Some(CtxId::EMPTY));
    }

    #[test]
    fn mismatched_pop_is_dead() {
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let m2 = b.add_method("m2", None).unwrap();
        let a = b.add_local("a", m, None).unwrap();
        let p = b.add_local("p", m2, None).unwrap();
        let s1 = b.add_call_site("1", m).unwrap();
        let s2 = b.add_call_site("2", m).unwrap();
        b.add_entry(s1, a, p).unwrap();
        b.add_entry(s2, a, p).unwrap();
        let pag = b.finish();
        let config = EngineConfig::default();
        let mut ctxs = StackPool::new();
        let c1 = ctx_push(&mut ctxs, CtxId::EMPTY, s1, &pag, &config)
            .unwrap()
            .unwrap();
        assert_eq!(ctx_pop(&ctxs, c1, s2, &pag, &config).unwrap(), None);
    }

    #[test]
    fn recursive_sites_are_transparent() {
        let (pag, s) = site_pag(true);
        let config = EngineConfig::default();
        let mut ctxs = StackPool::new();
        let c = ctx_push(&mut ctxs, CtxId::EMPTY, s, &pag, &config)
            .unwrap()
            .unwrap();
        assert!(c.is_empty());
        let c = ctx_pop(&ctxs, CtxId::EMPTY, s, &pag, &config)
            .unwrap()
            .unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn context_insensitive_mode_keeps_empty() {
        let (pag, s) = site_pag(false);
        let config = EngineConfig {
            context_sensitive: false,
            ..EngineConfig::default()
        };
        let mut ctxs = StackPool::new();
        let c = ctx_push(&mut ctxs, CtxId::EMPTY, s, &pag, &config)
            .unwrap()
            .unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn depth_cap_aborts() {
        let (pag, s) = site_pag(false);
        let config = EngineConfig {
            max_ctx_depth: 1,
            ..EngineConfig::default()
        };
        let mut ctxs = StackPool::new();
        let c1 = ctx_push(&mut ctxs, CtxId::EMPTY, s, &pag, &config)
            .unwrap()
            .unwrap();
        assert!(ctx_push(&mut ctxs, c1, s, &pag, &config).is_err());
    }

    #[test]
    fn default_config_matches_paper_budget() {
        assert_eq!(EngineConfig::default().budget, 75_000);
        assert!(EngineConfig::default().context_sensitive);
    }
}
