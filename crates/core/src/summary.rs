//! Partial points-to summaries and the cross-query summary cache.

use dynsum_cfl::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dynsum_cfl::{Direction, FieldStackId, FxHashMap};
use dynsum_pag::{NodeId, ObjId, Pag};

/// The result of one partial points-to analysis (Algorithm 3): everything
/// reachable from a `(node, field stack, direction)` configuration along
/// **local** edges only.
///
/// * [`objs`](Self::objs) — objects whose `new` edge was reached with an
///   empty field stack (fully resolved answers);
/// * [`boundaries`](Self::boundaries) — configurations at method-boundary
///   nodes where a global edge must be crossed to continue; the worklist
///   driver (Algorithm 4) resumes from these.
///
/// Summaries are context-independent by construction (local edges never
/// touch the context stack), which is exactly what makes them reusable
/// across different calling contexts (§4.1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Summary {
    /// Objects found (field stack fully matched).
    pub objs: Vec<ObjId>,
    /// Boundary configurations awaiting global-edge continuation.
    pub boundaries: Vec<(NodeId, FieldStackId, Direction)>,
    /// Edge traversals charged while computing this summary cold.
    ///
    /// Reusing a cached summary charges this amount against the query
    /// budget in one lump (instead of re-traversing), so a query's
    /// resolved/over-budget outcome — and therefore its points-to set —
    /// is *identical* whether summaries are reused or recomputed. That
    /// cache-independence is what makes
    /// [`Session::run_batch`](crate::Session::run_batch) results
    /// byte-identical to sequential execution at any thread count. Wall-clock time still gets the
    /// full reuse speedup; only the accounting is deterministic.
    pub cost: u64,
}

impl Summary {
    /// A summary for a node with no local edges: no objects, and the node
    /// itself as a boundary when it has global edges on the side the
    /// direction needs (the driver skips PPTA entirely for such nodes,
    /// §4.3).
    pub fn trivial(pag: &Pag, node: NodeId, fstack: FieldStackId, dir: Direction) -> Summary {
        Summary {
            objs: Vec::new(),
            boundaries: if Summary::trivial_has_boundary(pag, node, dir) {
                vec![(node, fstack, dir)]
            } else {
                Vec::new()
            },
            cost: 0,
        }
    }

    /// `true` when [`trivial`](Self::trivial) would carry a boundary —
    /// callers use this to hand out a shared empty summary instead of
    /// allocating when it would not.
    #[inline]
    pub fn trivial_has_boundary(pag: &Pag, node: NodeId, dir: Direction) -> bool {
        match dir {
            Direction::S1 => pag.has_global_in(node),
            Direction::S2 => pag.has_global_out(node),
        }
    }

    /// Total number of facts carried (objects + boundary tuples).
    pub fn len(&self) -> usize {
        self.objs.len() + self.boundaries.len()
    }

    /// `true` when the summary carries nothing.
    pub fn is_empty(&self) -> bool {
        self.objs.is_empty() && self.boundaries.is_empty()
    }
}

/// Key of a cached summary: the `(u, f, s)` triple of Algorithm 4 line 5.
///
/// The [`FieldStackId`] component is relative to the field-stack pool of
/// whichever engine/handle interned it; caches are only ever consulted
/// with ids from the same pool (or a clone of it), and
/// [`Session::absorb`](crate::Session::absorb) re-interns ids when a
/// handle's shard is merged back into the session pool.
pub type SummaryKey = (NodeId, FieldStackId, Direction);

/// Lifetime counters of a [`SummaryCache`]: `hits + misses` equals the
/// total number of lookups ever issued against it (each lookup is
/// counted exactly once, even when served through a layered
/// shard-over-session arrangement and merged back later), and
/// `evictions` counts entries removed by the size cap or by method
/// invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache (including a layered base).
    pub hits: u64,
    /// Lookups that fell through to a fresh PPTA computation.
    pub misses: u64,
    /// Entries evicted by [`SummaryCache::enforce_cap`] or
    /// [`SummaryCache::evict_where`].
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups observed (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits over all lookups; 0.0 before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// One cached summary plus its clock reference bit. The bit is atomic so
/// a *shared* (`&self`) lookup against a session cache can still mark
/// recency — that is what lets the clock observe cross-thread reuse
/// without locking the cache.
#[derive(Debug)]
struct CacheSlot {
    summary: Arc<Summary>,
    referenced: AtomicBool,
}

impl Clone for CacheSlot {
    fn clone(&self) -> Self {
        CacheSlot {
            summary: Arc::clone(&self.summary),
            // Ordering::Relaxed — recency is a heuristic hint, not data:
            // a cloned cache that misses a concurrent mark merely ages
            // that entry one sweep earlier, and eviction cannot change
            // outcomes (reuse accounting below).
            referenced: AtomicBool::new(self.referenced.load(Ordering::Relaxed)),
        }
    }
}

/// DYNSUM's cross-query summary cache (the paper's `Cache`).
///
/// Entries are reference-counted ([`Arc`], so caches can be shared
/// across [`Session`](crate::Session) query threads) and cache hits are
/// O(1) clones; the entry count is the quantity compared against STASUM
/// in Figure 5.
///
/// The cache is **size-capped on demand**:
/// [`enforce_cap`](Self::enforce_cap) runs a clock (second-chance)
/// sweep — every
/// lookup sets an entry's reference bit, the sweep clears bits and
/// evicts entries found unreferenced — so a long-lived query stream
/// keeps its working set while cold entries age out. Eviction can never
/// change query outcomes: deterministic reuse accounting charges a
/// summary's cold cost on every hit, so results are cache-independent
/// by construction and an evicted entry is simply recomputed at the
/// same budget price it would have charged anyway.
#[derive(Debug, Default, Clone)]
pub struct SummaryCache {
    // Keyed by dense in-tree ids: safe (and much cheaper) under the
    // non-DoS-resistant fast hasher.
    map: FxHashMap<SummaryKey, CacheSlot>,
    /// Clock ring: insertion-ordered keys, lazily pruned (a key evicted
    /// via [`evict_where`](Self::evict_where) lingers until the next
    /// sweep or compaction passes it).
    ring: Vec<SummaryKey>,
    /// Clock hand into `ring`.
    hand: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SummaryCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SummaryCache::default()
    }

    /// Looks up a summary, counting a hit or miss (the convenience form
    /// of [`get`](Self::get) + [`record_hit`](Self::record_hit) /
    /// [`record_miss`](Self::record_miss) for single-cache users).
    pub fn lookup(&mut self, key: SummaryKey) -> Option<Arc<Summary>> {
        match self.get(key) {
            Some(s) => {
                self.record_hit();
                Some(s)
            }
            None => {
                self.record_miss();
                None
            }
        }
    }

    /// Looks up a summary without touching the hit/miss counters — the
    /// read-only operation parallel query handles use against a shared
    /// (frozen) session cache. Sets the entry's clock reference bit, so
    /// even counter-free shared hits protect the entry from the next
    /// eviction sweep.
    pub fn get(&self, key: SummaryKey) -> Option<Arc<Summary>> {
        self.map.get(&key).map(|slot| {
            // Ordering::Relaxed — the bit only biases *which* entry the
            // next sweep evicts, never what a query answers: summaries
            // are immutable behind `Arc` and reuse accounting charges
            // cold cost on every hit, so a delayed mark is at worst one
            // extra recompute. Model-checked: eviction never changes
            // outcomes (crates/modelcheck, `clock_eviction_*`).
            slot.referenced.store(true, Ordering::Relaxed);
            Arc::clone(&slot.summary)
        })
    }

    /// Records a hit that was served elsewhere (e.g. from a session's
    /// shared cache through [`get`](Self::get)).
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss observed against a layered lookup.
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Inserts a freshly computed summary.
    pub fn insert(&mut self, key: SummaryKey, summary: Arc<Summary>) {
        match self.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().summary = summary;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(CacheSlot {
                    summary,
                    referenced: AtomicBool::new(false),
                });
                self.ring.push(key);
            }
        }
    }

    /// Number of cached summaries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime cache hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime cache misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime entries evicted (size cap + predicate eviction).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The lifetime counters as one value; `stats().lookups()` equals
    /// the number of lookups ever issued (pinned by regression test —
    /// see `tests/cache_lifecycle.rs`).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }

    /// Iterates over the cached entries (used when merging a handle's
    /// shard back into a session cache).
    pub fn entries(&self) -> impl Iterator<Item = (&SummaryKey, &Arc<Summary>)> {
        self.map.iter().map(|(k, slot)| (k, &slot.summary))
    }

    /// Folds another cache's counters into this one (entry merging is
    /// done separately because shard keys may need their field-stack
    /// ids re-interned first).
    ///
    /// Callers that keep the source cache alive after merging — the
    /// warm-worker reuse path of
    /// [`Session::run_batch`](crate::Session::run_batch) — must
    /// [`clear`](Self::clear) it afterwards, or the same lookups would
    /// be folded in again on the next merge (the double-count bug this
    /// accounting scheme exists to rule out).
    pub fn absorb_counters(&mut self, other: &SummaryCache) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }

    /// Inserts `summary` only if `key` is absent. Concurrent shards can
    /// compute the same key independently; contents are canonical per
    /// key, so first-in wins and later duplicates are dropped.
    pub fn insert_if_absent(&mut self, key: SummaryKey, summary: Arc<Summary>) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.map.entry(key) {
            e.insert(CacheSlot {
                summary,
                referenced: AtomicBool::new(false),
            });
            self.ring.push(key);
        }
    }

    /// Clears entries and counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.ring.clear();
        self.hand = 0;
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }

    /// Removes every entry whose key satisfies `pred`, returning how
    /// many were evicted. Hit/miss counters are kept (they describe
    /// history); the evicted entries are added to
    /// [`evictions`](Self::evictions).
    pub fn evict_where(&mut self, mut pred: impl FnMut(&SummaryKey) -> bool) -> usize {
        let before = self.map.len();
        self.map.retain(|k, _| !pred(k));
        let evicted = before - self.map.len();
        self.evictions += evicted as u64;
        // Drop the stale ring keys eagerly when they dominate the ring,
        // so repeated predicate evictions cannot bloat it.
        if self.ring.len() > 2 * self.map.len() + 8 {
            let map = &self.map;
            self.ring.retain(|k| map.contains_key(k));
            self.hand = 0;
        }
        evicted
    }

    /// Evicts entries until at most `cap` remain, using a clock
    /// (second-chance) sweep: entries whose reference bit is set since
    /// the last sweep get the bit cleared and survive; unreferenced
    /// entries go. Returns the number evicted.
    ///
    /// `cap == 0` empties the cache — legal (and deterministic in
    /// outcome) because reuse accounting makes results cache-independent;
    /// the stream just pays cold cost every time, exactly like
    /// `cache_summaries: false`.
    pub fn enforce_cap(&mut self, cap: usize) -> usize {
        let mut evicted = 0usize;
        while self.map.len() > cap {
            debug_assert!(!self.ring.is_empty(), "ring covers every live key");
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let key = self.ring[self.hand];
            match self.map.get(&key) {
                // Stale ring key (already evicted by predicate): drop it.
                None => {
                    self.ring.swap_remove(self.hand);
                }
                Some(slot) => {
                    // Ordering::Relaxed — the swap's atomicity (not its
                    // ordering) is what matters: a concurrent `get`'s
                    // mark either lands before the swap (second chance)
                    // or re-marks after it; neither order loses the
                    // entry's summary or corrupts the ring, and the
                    // sweep itself holds `&mut self`.
                    if slot.referenced.swap(false, Ordering::Relaxed) {
                        // Second chance; the hand moves on.
                        self.hand += 1;
                    } else {
                        self.map.remove(&key);
                        self.ring.swap_remove(self.hand);
                        evicted += 1;
                    }
                }
            }
        }
        self.evictions += evicted as u64;
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsum_pag::PagBuilder;

    #[test]
    fn trivial_summary_reflects_boundary_bits() {
        let mut b = PagBuilder::new();
        let m1 = b.add_method("m1", None).unwrap();
        let m2 = b.add_method("m2", None).unwrap();
        let a = b.add_local("a", m1, None).unwrap();
        let p = b.add_local("p", m2, None).unwrap();
        let s = b.add_call_site("1", m1).unwrap();
        b.add_entry(s, a, p).unwrap();
        let pag = b.finish();
        let na = pag.var_node(a);
        let np = pag.var_node(p);

        // `a` has a global out-edge only.
        let s1 = Summary::trivial(&pag, na, FieldStackId::EMPTY, Direction::S1);
        assert!(s1.is_empty());
        let s2 = Summary::trivial(&pag, na, FieldStackId::EMPTY, Direction::S2);
        assert_eq!(s2.boundaries.len(), 1);
        assert_eq!(s2.len(), 1);
        assert_eq!(s2.cost, 0, "trivial summaries charge nothing on reuse");

        // `p` has a global in-edge only.
        let s1 = Summary::trivial(&pag, np, FieldStackId::EMPTY, Direction::S1);
        assert_eq!(
            s1.boundaries,
            vec![(np, FieldStackId::EMPTY, Direction::S1)]
        );
        let s2 = Summary::trivial(&pag, np, FieldStackId::EMPTY, Direction::S2);
        assert!(s2.is_empty());
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let mut c = SummaryCache::new();
        let key = (NodeId::from_raw(0), FieldStackId::EMPTY, Direction::S1);
        assert!(c.lookup(key).is_none());
        c.insert(key, Arc::new(Summary::default()));
        assert!(c.lookup(key).is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 0);
    }

    fn key(n: u32) -> SummaryKey {
        (NodeId::from_raw(n), FieldStackId::EMPTY, Direction::S1)
    }

    fn filled(n: u32) -> SummaryCache {
        let mut c = SummaryCache::new();
        for i in 0..n {
            c.insert(key(i), Arc::new(Summary::default()));
        }
        c
    }

    #[test]
    fn enforce_cap_evicts_down_to_cap() {
        let mut c = filled(10);
        assert_eq!(c.enforce_cap(16), 0, "under cap: nothing to do");
        let evicted = c.enforce_cap(4);
        assert_eq!(evicted, 6);
        assert_eq!(c.len(), 4);
        assert_eq!(c.evictions(), 6);
        assert_eq!(c.enforce_cap(0), 4, "cap 0 empties the cache");
        assert!(c.is_empty());
        assert_eq!(c.evictions(), 10);
    }

    #[test]
    fn clock_gives_referenced_entries_a_second_chance() {
        let mut c = filled(8);
        // Touch three entries; the sweep must prefer evicting the five
        // untouched ones.
        for i in [1u32, 4, 6] {
            assert!(c.get(key(i)).is_some());
        }
        c.enforce_cap(3);
        assert_eq!(c.len(), 3);
        for i in [1u32, 4, 6] {
            assert!(
                c.entries().any(|(k, _)| *k == key(i)),
                "recently used entry {i} must survive the sweep"
            );
        }
        // A full sweep under continued pressure eventually evicts even
        // previously referenced entries (bits are cleared on the way).
        c.enforce_cap(0);
        assert!(c.is_empty());
    }

    #[test]
    fn cap_sweep_skips_keys_already_evicted_by_predicate() {
        let mut c = filled(6);
        let gone = c.evict_where(|&(n, _, _)| n.index() % 2 == 0);
        assert_eq!(gone, 3);
        assert_eq!(c.evictions(), 3);
        // The ring still holds stale keys; the sweep must not count
        // them as evictions nor loop on them.
        assert_eq!(c.enforce_cap(1), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.evictions(), 5);
        // Re-inserting an evicted key works and is sweepable again.
        c.insert(key(0), Arc::new(Summary::default()));
        assert_eq!(c.len(), 2);
        assert_eq!(c.enforce_cap(0), 2);
    }

    #[test]
    fn absorb_counters_folds_evictions_and_clear_resets_them() {
        let mut a = filled(2);
        a.enforce_cap(0);
        let mut b = SummaryCache::new();
        b.record_hit();
        b.absorb_counters(&a);
        assert_eq!(
            b.stats(),
            CacheStats {
                hits: 1,
                misses: 0,
                evictions: 2
            }
        );
        assert_eq!(b.stats().lookups(), 1);
        b.clear();
        assert_eq!(b.stats(), CacheStats::default());
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn get_is_counter_free_and_insert_if_absent_keeps_first() {
        let mut c = SummaryCache::new();
        let key = (NodeId::from_raw(1), FieldStackId::EMPTY, Direction::S2);
        assert!(c.get(key).is_none());
        let first = Arc::new(Summary {
            cost: 7,
            ..Summary::default()
        });
        c.insert_if_absent(key, Arc::clone(&first));
        c.insert_if_absent(key, Arc::new(Summary::default()));
        assert_eq!(c.get(key).unwrap().cost, 7, "first insert wins");
        assert_eq!((c.hits(), c.misses()), (0, 0));
        c.record_hit();
        c.record_miss();
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }
}
