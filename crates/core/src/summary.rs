//! Partial points-to summaries and the cross-query summary cache.

use std::sync::Arc;

use dynsum_cfl::{Direction, FieldStackId, FxHashMap};
use dynsum_pag::{NodeId, ObjId, Pag};

/// The result of one partial points-to analysis (Algorithm 3): everything
/// reachable from a `(node, field stack, direction)` configuration along
/// **local** edges only.
///
/// * [`objs`](Self::objs) — objects whose `new` edge was reached with an
///   empty field stack (fully resolved answers);
/// * [`boundaries`](Self::boundaries) — configurations at method-boundary
///   nodes where a global edge must be crossed to continue; the worklist
///   driver (Algorithm 4) resumes from these.
///
/// Summaries are context-independent by construction (local edges never
/// touch the context stack), which is exactly what makes them reusable
/// across different calling contexts (§4.1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Summary {
    /// Objects found (field stack fully matched).
    pub objs: Vec<ObjId>,
    /// Boundary configurations awaiting global-edge continuation.
    pub boundaries: Vec<(NodeId, FieldStackId, Direction)>,
    /// Edge traversals charged while computing this summary cold.
    ///
    /// Reusing a cached summary charges this amount against the query
    /// budget in one lump (instead of re-traversing), so a query's
    /// resolved/over-budget outcome — and therefore its points-to set —
    /// is *identical* whether summaries are reused or recomputed. That
    /// cache-independence is what makes [`Session::run_batch`]
    /// (crate::Session::run_batch) results byte-identical to sequential
    /// execution at any thread count. Wall-clock time still gets the
    /// full reuse speedup; only the accounting is deterministic.
    pub cost: u64,
}

impl Summary {
    /// A summary for a node with no local edges: no objects, and the node
    /// itself as a boundary when it has global edges on the side the
    /// direction needs (the driver skips PPTA entirely for such nodes,
    /// §4.3).
    pub fn trivial(pag: &Pag, node: NodeId, fstack: FieldStackId, dir: Direction) -> Summary {
        Summary {
            objs: Vec::new(),
            boundaries: if Summary::trivial_has_boundary(pag, node, dir) {
                vec![(node, fstack, dir)]
            } else {
                Vec::new()
            },
            cost: 0,
        }
    }

    /// `true` when [`trivial`](Self::trivial) would carry a boundary —
    /// callers use this to hand out a shared empty summary instead of
    /// allocating when it would not.
    #[inline]
    pub fn trivial_has_boundary(pag: &Pag, node: NodeId, dir: Direction) -> bool {
        match dir {
            Direction::S1 => pag.has_global_in(node),
            Direction::S2 => pag.has_global_out(node),
        }
    }

    /// Total number of facts carried (objects + boundary tuples).
    pub fn len(&self) -> usize {
        self.objs.len() + self.boundaries.len()
    }

    /// `true` when the summary carries nothing.
    pub fn is_empty(&self) -> bool {
        self.objs.is_empty() && self.boundaries.is_empty()
    }
}

/// Key of a cached summary: the `(u, f, s)` triple of Algorithm 4 line 5.
///
/// The [`FieldStackId`] component is relative to the field-stack pool of
/// whichever engine/handle interned it; caches are only ever consulted
/// with ids from the same pool (or a clone of it), and
/// [`Session::absorb`](crate::Session::absorb) re-interns ids when a
/// handle's shard is merged back into the session pool.
pub type SummaryKey = (NodeId, FieldStackId, Direction);

/// DYNSUM's cross-query summary cache (the paper's `Cache`).
///
/// Entries are reference-counted ([`Arc`], so caches can be shared
/// across [`Session`](crate::Session) query threads) and cache hits are
/// O(1) clones; the entry count is the quantity compared against STASUM
/// in Figure 5.
#[derive(Debug, Default, Clone)]
pub struct SummaryCache {
    // Keyed by dense in-tree ids: safe (and much cheaper) under the
    // non-DoS-resistant fast hasher.
    map: FxHashMap<SummaryKey, Arc<Summary>>,
    hits: u64,
    misses: u64,
}

impl SummaryCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SummaryCache::default()
    }

    /// Looks up a summary, counting a hit or miss (the convenience form
    /// of [`get`](Self::get) + [`record_hit`](Self::record_hit) /
    /// [`record_miss`](Self::record_miss) for single-cache users).
    pub fn lookup(&mut self, key: SummaryKey) -> Option<Arc<Summary>> {
        match self.get(key) {
            Some(s) => {
                self.record_hit();
                Some(s)
            }
            None => {
                self.record_miss();
                None
            }
        }
    }

    /// Looks up a summary without touching the hit/miss counters — the
    /// read-only operation parallel query handles use against a shared
    /// (frozen) session cache.
    pub fn get(&self, key: SummaryKey) -> Option<Arc<Summary>> {
        self.map.get(&key).map(Arc::clone)
    }

    /// Records a hit that was served elsewhere (e.g. from a session's
    /// shared cache through [`get`](Self::get)).
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss observed against a layered lookup.
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Inserts a freshly computed summary.
    pub fn insert(&mut self, key: SummaryKey, summary: Arc<Summary>) {
        self.map.insert(key, summary);
    }

    /// Number of cached summaries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime cache hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime cache misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Iterates over the cached entries (used when merging a handle's
    /// shard back into a session cache).
    pub fn entries(&self) -> impl Iterator<Item = (&SummaryKey, &Arc<Summary>)> {
        self.map.iter()
    }

    /// Folds another cache's hit/miss counters into this one (entry
    /// merging is done separately because shard keys may need their
    /// field-stack ids re-interned first).
    pub fn absorb_counters(&mut self, other: &SummaryCache) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Inserts `summary` only if `key` is absent. Concurrent shards can
    /// compute the same key independently; contents are canonical per
    /// key, so first-in wins and later duplicates are dropped.
    pub fn insert_if_absent(&mut self, key: SummaryKey, summary: Arc<Summary>) {
        self.map.entry(key).or_insert(summary);
    }

    /// Clears entries and counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.hits = 0;
        self.misses = 0;
    }

    /// Removes every entry whose key satisfies `pred`, returning how
    /// many were evicted. Counters are kept (they describe history).
    pub fn evict_where(&mut self, mut pred: impl FnMut(&SummaryKey) -> bool) -> usize {
        let before = self.map.len();
        self.map.retain(|k, _| !pred(k));
        before - self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsum_pag::PagBuilder;

    #[test]
    fn trivial_summary_reflects_boundary_bits() {
        let mut b = PagBuilder::new();
        let m1 = b.add_method("m1", None).unwrap();
        let m2 = b.add_method("m2", None).unwrap();
        let a = b.add_local("a", m1, None).unwrap();
        let p = b.add_local("p", m2, None).unwrap();
        let s = b.add_call_site("1", m1).unwrap();
        b.add_entry(s, a, p).unwrap();
        let pag = b.finish();
        let na = pag.var_node(a);
        let np = pag.var_node(p);

        // `a` has a global out-edge only.
        let s1 = Summary::trivial(&pag, na, FieldStackId::EMPTY, Direction::S1);
        assert!(s1.is_empty());
        let s2 = Summary::trivial(&pag, na, FieldStackId::EMPTY, Direction::S2);
        assert_eq!(s2.boundaries.len(), 1);
        assert_eq!(s2.len(), 1);
        assert_eq!(s2.cost, 0, "trivial summaries charge nothing on reuse");

        // `p` has a global in-edge only.
        let s1 = Summary::trivial(&pag, np, FieldStackId::EMPTY, Direction::S1);
        assert_eq!(
            s1.boundaries,
            vec![(np, FieldStackId::EMPTY, Direction::S1)]
        );
        let s2 = Summary::trivial(&pag, np, FieldStackId::EMPTY, Direction::S2);
        assert!(s2.is_empty());
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let mut c = SummaryCache::new();
        let key = (NodeId::from_raw(0), FieldStackId::EMPTY, Direction::S1);
        assert!(c.lookup(key).is_none());
        c.insert(key, Arc::new(Summary::default()));
        assert!(c.lookup(key).is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn get_is_counter_free_and_insert_if_absent_keeps_first() {
        let mut c = SummaryCache::new();
        let key = (NodeId::from_raw(1), FieldStackId::EMPTY, Direction::S2);
        assert!(c.get(key).is_none());
        let first = Arc::new(Summary {
            cost: 7,
            ..Summary::default()
        });
        c.insert_if_absent(key, Arc::clone(&first));
        c.insert_if_absent(key, Arc::new(Summary::default()));
        assert_eq!(c.get(key).unwrap().cost, 7, "first insert wins");
        assert_eq!((c.hits(), c.misses()), (0, 0));
        c.record_hit();
        c.record_miss();
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }
}
