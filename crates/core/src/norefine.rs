//! NOREFINE — the refinement-free, cache-free baseline (Table 2).

use dynsum_cfl::{QueryControl, QueryResult, QueryStats, Ticket};
use dynsum_pag::{CallSiteId, Pag, VarId};

use crate::engine::{ClientCheck, DemandPointsTo, EngineConfig};
use crate::search::{search, Refinement, SearchParts};

/// Runs one NOREFINE query over borrowed per-handle state. Shared by the
/// legacy [`NoRefine`] engine and [`Session`](crate::Session) query
/// handles: the engine is stateless across queries, so everything it
/// needs besides the frozen PAG and config lives in `parts`.
///
/// The context pool is per-query scratch (cleared here), so the returned
/// result — including the raw context ids inside the points-to set — is
/// a deterministic function of `(pag, config, v, ctx)` alone (plus the
/// interruption signals of `control`, which can only cut it short).
pub(crate) fn norefine_query(
    pag: &Pag,
    config: &EngineConfig,
    parts: &mut SearchParts,
    v: VarId,
    ctx: &[CallSiteId],
    control: &QueryControl,
) -> QueryResult {
    parts.ctxs.clear();
    let c0 = parts.ctxs.from_slice(ctx);
    let mut ticket = Ticket::with_control(config.budget, control);
    let mut stats = QueryStats::default();
    let out = search(
        pag,
        &mut parts.fields,
        &mut parts.ctxs,
        &mut parts.scratch,
        config,
        Refinement::All,
        v,
        c0,
        &mut ticket,
        &mut stats,
    );
    match out.interrupt {
        None => QueryResult::resolved(out.pts, stats),
        Some(kind) => QueryResult::interrupted(out.pts, stats, kind),
    }
}

/// The NOREFINE engine: Sridharan–Bodík demand-driven CFL-reachability
/// with every load explored field-sensitively from the start, no
/// refinement loop, and no memorization across queries.
///
/// It delivers full precision (like DYNSUM) but repeats every traversal
/// on every query — the paper's slowest baseline in most configurations.
///
/// # Examples
///
/// ```
/// use dynsum_core::{DemandPointsTo, NoRefine};
/// use dynsum_pag::PagBuilder;
///
/// let mut b = PagBuilder::new();
/// let m = b.add_method("main", None)?;
/// let v = b.add_local("v", m, None)?;
/// let o = b.add_obj("o1", None, Some(m))?;
/// b.add_new(o, v)?;
/// let pag = b.finish();
/// let mut engine = NoRefine::new(&pag);
/// assert!(engine.points_to(v).pts.contains_obj(o));
/// # Ok::<(), dynsum_pag::BuildError>(())
/// ```
#[derive(Debug)]
pub struct NoRefine<'p> {
    pag: &'p Pag,
    parts: SearchParts,
    config: EngineConfig,
    control: QueryControl,
}

impl<'p> NoRefine<'p> {
    /// Creates an engine with the default configuration.
    pub fn new(pag: &'p Pag) -> Self {
        Self::with_config(pag, EngineConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(pag: &'p Pag, config: EngineConfig) -> Self {
        NoRefine {
            pag,
            parts: SearchParts::default(),
            config,
            control: QueryControl::default(),
        }
    }

    /// Creates the **context-insensitive** variant: entries/exits are
    /// treated as plain assignments, computing pure `L_FT` reachability
    /// (§3.2). Its answers must coincide exactly with the Andersen
    /// whole-program solution — the test suite's oracle equality.
    pub fn context_insensitive(pag: &'p Pag) -> Self {
        Self::with_config(
            pag,
            EngineConfig {
                context_sensitive: false,
                ..EngineConfig::default()
            },
        )
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Attaches interruption controls (cancellation token, deadline) to
    /// every subsequent query.
    pub fn set_control(&mut self, control: QueryControl) {
        self.control = control;
    }

    /// Answers `pointsTo(v, c)` for an explicit initial context.
    pub fn points_to_in(&mut self, v: VarId, ctx: &[CallSiteId]) -> QueryResult {
        norefine_query(
            self.pag,
            &self.config,
            &mut self.parts,
            v,
            ctx,
            &self.control,
        )
    }
}

impl DemandPointsTo for NoRefine<'_> {
    fn name(&self) -> &'static str {
        "NOREFINE"
    }

    /// No refinement: the predicate is ignored, the full field-sensitive
    /// answer is computed directly.
    fn query(&mut self, v: VarId, _satisfied: ClientCheck<'_>) -> QueryResult {
        norefine_query(
            self.pag,
            &self.config,
            &mut self.parts,
            v,
            &[],
            &self.control,
        )
    }

    fn reset(&mut self) {
        self.parts = SearchParts::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsum_pag::PagBuilder;

    #[test]
    fn full_precision_without_refinement() {
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let p1 = b.add_local("p1", m, None).unwrap();
        let p2 = b.add_local("p2", m, None).unwrap();
        let x1 = b.add_local("x1", m, None).unwrap();
        let x2 = b.add_local("x2", m, None).unwrap();
        let y = b.add_local("y", m, None).unwrap();
        let oa = b.add_obj("oa", None, Some(m)).unwrap();
        let ob = b.add_obj("ob", None, Some(m)).unwrap();
        let o1 = b.add_obj("o1", None, Some(m)).unwrap();
        let o2 = b.add_obj("o2", None, Some(m)).unwrap();
        let f = b.field("f");
        b.add_new(oa, p1).unwrap();
        b.add_new(ob, p2).unwrap();
        b.add_new(o1, x1).unwrap();
        b.add_new(o2, x2).unwrap();
        b.add_store(f, x1, p1).unwrap();
        b.add_store(f, x2, p2).unwrap();
        b.add_load(f, p1, y).unwrap();
        let pag = b.finish();
        let mut e = NoRefine::new(&pag);
        let r = e.points_to(y);
        assert!(r.resolved);
        assert_eq!(r.pts.objects().into_iter().collect::<Vec<_>>(), vec![o1]);
        assert_eq!(e.name(), "NOREFINE");
        assert_eq!(e.summary_count(), 0);
    }

    #[test]
    fn no_cross_query_speedup() {
        // Identical queries cost identical work: nothing is memorized.
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let v = b.add_local("v", m, None).unwrap();
        let w = b.add_local("w", m, None).unwrap();
        let o = b.add_obj("o", None, Some(m)).unwrap();
        b.add_new(o, v).unwrap();
        b.add_assign(v, w).unwrap();
        let pag = b.finish();
        let mut e = NoRefine::new(&pag);
        let r1 = e.points_to(w);
        let r2 = e.points_to(w);
        assert_eq!(r1.stats.edges_traversed, r2.stats.edges_traversed);
    }

    #[test]
    fn cancelled_engine_returns_a_sound_partial() {
        use dynsum_cfl::{CancelToken, Outcome};
        use std::sync::Arc;
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let v = b.add_local("v", m, None).unwrap();
        let o = b.add_obj("o", None, Some(m)).unwrap();
        b.add_new(o, v).unwrap();
        let pag = b.finish();
        let mut e = NoRefine::new(&pag);
        let token = Arc::new(CancelToken::new());
        token.cancel();
        e.set_control(
            dynsum_cfl::QueryControl::new()
                .cancelled_by(token)
                .poll_every(1),
        );
        let r = e.points_to(v);
        assert!(!r.resolved);
        assert_eq!(r.outcome, Outcome::Cancelled);
        // A fresh control resumes normal service on the same engine.
        e.set_control(dynsum_cfl::QueryControl::default());
        let r = e.points_to(v);
        assert!(r.resolved && r.pts.contains_obj(o));
    }

    #[test]
    fn context_insensitive_constructor() {
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let v = b.add_local("v", m, None).unwrap();
        let _ = v;
        let pag = b.finish();
        let e = NoRefine::context_insensitive(&pag);
        assert!(!e.config().context_sensitive);
    }
}
