//! The worklist driver of Algorithm 4, shared by DYNSUM and STASUM.
//!
//! The driver walks only the context-dependent **global** edges
//! (`assignglobal`, `entry_i`, `exit_i`) according to the `R_RP` RSM of
//! Figure 3(b); at every configuration it asks a *summary provider* for
//! the local-edge closure. DYNSUM's provider computes concrete partial
//! points-to summaries on demand and caches them; STASUM's provider
//! instantiates precomputed relative summaries.

use std::collections::HashSet;
use std::rc::Rc;

use dynsum_cfl::{
    Budget, BudgetExceeded, CtxId, Direction, FieldStackId, PointsToSet, QueryResult, QueryStats,
    StackPool, StepKind, Trace, TraceStep,
};
use dynsum_pag::{CallSiteId, EdgeKind, FieldId, NodeId, Pag};

use crate::engine::{ctx_clear, ctx_pop, ctx_push, EngineConfig};
use crate::summary::Summary;

/// A source of local-edge summaries for the driver. Called once per
/// worklist configuration whose node has local edges.
pub(crate) type SummaryProvider<'a> = dyn FnMut(
        &mut StackPool<FieldId>,
        &mut Budget,
        &mut QueryStats,
        NodeId,
        FieldStackId,
        Direction,
    ) -> Result<(Rc<Summary>, StepKind), BudgetExceeded>
    + 'a;

/// Runs Algorithm 4 from `(start, ∅, S1, start_ctx)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive(
    pag: &Pag,
    fields: &mut StackPool<FieldId>,
    ctxs: &mut StackPool<CallSiteId>,
    config: &EngineConfig,
    start: NodeId,
    start_ctx: CtxId,
    provider: &mut SummaryProvider<'_>,
    mut trace: Option<&mut Trace>,
) -> QueryResult {
    let mut budget = Budget::new(config.budget);
    let mut stats = QueryStats::default();
    let mut pts = PointsToSet::new();

    let init = (start, FieldStackId::EMPTY, Direction::S1, start_ctx);
    let mut seen: HashSet<(NodeId, FieldStackId, Direction, CtxId)> = HashSet::new();
    seen.insert(init);
    let mut wl = vec![init];
    let mut over_budget = false;

    'drive: while let Some((u, f, s, c)) = wl.pop() {
        stats.steps += 1;

        // Lines 5–9: reuse or compute the summary; nodes without local
        // edges take the trivial summary (§4.3).
        let (summary, kind) = if pag.has_local_edge(u) {
            match provider(fields, &mut budget, &mut stats, u, f, s) {
                Ok(pair) => pair,
                Err(BudgetExceeded) => {
                    over_budget = true;
                    break 'drive;
                }
            }
        } else {
            (
                Rc::new(Summary::trivial(pag, u, f, s)),
                StepKind::NoLocalEdges,
            )
        };

        if let Some(tr) = trace.as_deref_mut() {
            tr.push(TraceStep {
                node: u,
                field_stack: fields.to_vec(f),
                state: s,
                ctx: ctxs.to_vec(c),
                kind,
            });
        }

        // Lines 10–11: objects adopt the current calling context.
        for &o in &summary.objs {
            pts.insert(o, c);
            if let Some(tr) = trace.as_deref_mut() {
                tr.push(TraceStep {
                    node: pag.obj_node(o),
                    field_stack: fields.to_vec(f),
                    state: s,
                    ctx: ctxs.to_vec(c),
                    kind: StepKind::ObjectFound,
                });
            }
        }

        // Lines 12–28: follow the global edges of each boundary tuple.
        for &(x, f1, s1) in &summary.boundaries {
            let step = |n: NodeId, c2: CtxId, seen: &mut HashSet<_>, wl: &mut Vec<_>| {
                let item = (n, f1, s1, c2);
                if seen.insert(item) {
                    wl.push(item);
                }
            };
            let result: Result<(), BudgetExceeded> = (|| {
                match s1 {
                    Direction::S1 => {
                        for &eid in pag.in_edges(x) {
                            let e = *pag.edge(eid);
                            match e.kind {
                                EdgeKind::Exit(i) => {
                                    budget.charge()?;
                                    stats.edges_traversed += 1;
                                    if let Some(c2) = ctx_push(ctxs, c, i, pag, config)? {
                                        step(e.src, c2, &mut seen, &mut wl);
                                    }
                                }
                                EdgeKind::Entry(i) => {
                                    budget.charge()?;
                                    stats.edges_traversed += 1;
                                    if let Some(c2) = ctx_pop(ctxs, c, i, pag, config)? {
                                        step(e.src, c2, &mut seen, &mut wl);
                                    }
                                }
                                EdgeKind::AssignGlobal => {
                                    budget.charge()?;
                                    stats.edges_traversed += 1;
                                    step(e.src, ctx_clear(), &mut seen, &mut wl);
                                }
                                _ => {}
                            }
                        }
                    }
                    Direction::S2 => {
                        for &eid in pag.out_edges(x) {
                            let e = *pag.edge(eid);
                            match e.kind {
                                EdgeKind::Exit(i) => {
                                    budget.charge()?;
                                    stats.edges_traversed += 1;
                                    if let Some(c2) = ctx_pop(ctxs, c, i, pag, config)? {
                                        step(e.dst, c2, &mut seen, &mut wl);
                                    }
                                }
                                EdgeKind::Entry(i) => {
                                    budget.charge()?;
                                    stats.edges_traversed += 1;
                                    if let Some(c2) = ctx_push(ctxs, c, i, pag, config)? {
                                        step(e.dst, c2, &mut seen, &mut wl);
                                    }
                                }
                                EdgeKind::AssignGlobal => {
                                    budget.charge()?;
                                    stats.edges_traversed += 1;
                                    step(e.dst, ctx_clear(), &mut seen, &mut wl);
                                }
                                _ => {}
                            }
                        }
                    }
                }
                Ok(())
            })();
            if result.is_err() {
                over_budget = true;
                break 'drive;
            }
        }
    }

    if over_budget {
        QueryResult::over_budget(pts, stats)
    } else {
        QueryResult::resolved(pts, stats)
    }
}
