//! The worklist driver of Algorithm 4, shared by DYNSUM and STASUM.
//!
//! The driver walks only the context-dependent **global** edges
//! (`assignglobal`, `entry_i`, `exit_i`) according to the `R_RP` RSM of
//! Figure 3(b); at every configuration it asks a *summary provider* for
//! the local-edge closure. DYNSUM's provider computes concrete partial
//! points-to summaries on demand and caches them; STASUM's provider
//! instantiates precomputed relative summaries.

use std::sync::Arc;

use dynsum_cfl::{
    CtxId, Direction, FieldFrame, FieldStackId, FxHashSet, Interrupt, PointsToSet, QueryResult,
    QueryStats, StackPool, StepKind, Ticket, Trace, TraceStep,
};
use dynsum_pag::{AdjClass, CallSiteId, NodeId, Pag};

use crate::engine::{ctx_clear, ctx_pop, ctx_push, EngineConfig};
use crate::summary::Summary;

/// Reusable driver state: worklist + seen-set buffers that persist
/// across queries (cleared, not reallocated, per query) and the shared
/// empty summary handed out for boundary-free no-local-edge nodes
/// without a per-visit allocation.
#[derive(Debug)]
pub(crate) struct DriveScratch {
    seen: FxHashSet<(NodeId, FieldStackId, Direction, CtxId)>,
    wl: Vec<(NodeId, FieldStackId, Direction, CtxId)>,
    empty: Arc<Summary>,
}

impl Default for DriveScratch {
    fn default() -> Self {
        DriveScratch {
            seen: FxHashSet::default(),
            wl: Vec::new(),
            empty: Arc::new(Summary::default()),
        }
    }
}

/// The complete per-handle working state of the summary-driven engines
/// (DYNSUM / STASUM): interning pools, driver worklist buffers, and PPTA
/// scratch. Owned by the legacy engine structs and by
/// [`Session`](crate::Session) query handles alike.
#[derive(Debug, Default)]
pub(crate) struct DriveParts {
    pub(crate) fields: StackPool<FieldFrame>,
    pub(crate) ctxs: StackPool<CallSiteId>,
    pub(crate) drive: DriveScratch,
    pub(crate) ppta: crate::ppta::PptaScratch,
}

/// A source of local-edge summaries for the driver. Called once per
/// worklist configuration whose node has local edges.
pub(crate) type SummaryProvider<'a> = dyn FnMut(
        &mut StackPool<FieldFrame>,
        &mut Ticket,
        &mut QueryStats,
        NodeId,
        FieldStackId,
        Direction,
    ) -> Result<(Arc<Summary>, StepKind), Interrupt>
    + 'a;

/// Runs Algorithm 4 from `(start, ∅, S1, start_ctx)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive(
    pag: &Pag,
    fields: &mut StackPool<FieldFrame>,
    ctxs: &mut StackPool<CallSiteId>,
    scratch: &mut DriveScratch,
    config: &EngineConfig,
    start: NodeId,
    start_ctx: CtxId,
    ticket: &mut Ticket,
    provider: &mut SummaryProvider<'_>,
    mut trace: Option<&mut Trace>,
) -> QueryResult {
    let mut stats = QueryStats::default();
    let mut pts = PointsToSet::new();

    let init = (start, FieldStackId::EMPTY, Direction::S1, start_ctx);
    scratch.seen.clear();
    scratch.wl.clear();
    let DriveScratch { seen, wl, empty } = scratch;
    seen.insert(init);
    wl.push(init);
    let mut interrupted: Option<Interrupt> = None;

    'drive: while let Some((u, f, s, c)) = wl.pop() {
        stats.steps += 1;

        // Lines 5–9: reuse or compute the summary; nodes without local
        // edges take the trivial summary (§4.3) — the shared empty one
        // when they are not boundaries either (no allocation).
        let (summary, kind) = if pag.has_local_edge(u) {
            match provider(fields, ticket, &mut stats, u, f, s) {
                Ok(pair) => pair,
                Err(kind) => {
                    interrupted = Some(kind);
                    break 'drive;
                }
            }
        } else if Summary::trivial_has_boundary(pag, u, s) {
            (
                Arc::new(Summary::trivial(pag, u, f, s)),
                StepKind::NoLocalEdges,
            )
        } else {
            (Arc::clone(empty), StepKind::NoLocalEdges)
        };

        if let Some(tr) = trace.as_deref_mut() {
            tr.push(TraceStep {
                node: u,
                field_stack: fields
                    .to_vec(f)
                    .into_iter()
                    .map(FieldFrame::field)
                    .collect(),
                state: s,
                ctx: ctxs.to_vec(c),
                kind,
            });
        }

        // Lines 10–11: objects adopt the current calling context.
        for &o in &summary.objs {
            pts.insert(o, c);
            if let Some(tr) = trace.as_deref_mut() {
                tr.push(TraceStep {
                    node: pag.obj_node(o),
                    field_stack: fields
                        .to_vec(f)
                        .into_iter()
                        .map(FieldFrame::field)
                        .collect(),
                    state: s,
                    ctx: ctxs.to_vec(c),
                    kind: StepKind::ObjectFound,
                });
            }
        }

        // Lines 12–28: follow the global edges of each boundary tuple —
        // straight iteration over the three global kind segments.
        for &(x, f1, s1) in &summary.boundaries {
            let step = |n: NodeId, c2: CtxId, seen: &mut FxHashSet<_>, wl: &mut Vec<_>| {
                let item = (n, f1, s1, c2);
                if seen.insert(item) {
                    wl.push(item);
                }
            };
            let result: Result<(), Interrupt> = (|| {
                match s1 {
                    Direction::S1 => {
                        for &a in pag.in_seg(x, AdjClass::AssignGlobal) {
                            ticket.charge()?;
                            stats.edges_traversed += 1;
                            step(a.node, ctx_clear(), seen, wl);
                        }
                        for &a in pag.in_seg(x, AdjClass::Entry) {
                            ticket.charge()?;
                            stats.edges_traversed += 1;
                            if let Some(c2) = ctx_pop(ctxs, c, a.site(), pag, config)? {
                                step(a.node, c2, seen, wl);
                            }
                        }
                        for &a in pag.in_seg(x, AdjClass::Exit) {
                            ticket.charge()?;
                            stats.edges_traversed += 1;
                            if let Some(c2) = ctx_push(ctxs, c, a.site(), pag, config)? {
                                step(a.node, c2, seen, wl);
                            }
                        }
                    }
                    Direction::S2 => {
                        for &a in pag.out_seg(x, AdjClass::AssignGlobal) {
                            ticket.charge()?;
                            stats.edges_traversed += 1;
                            step(a.node, ctx_clear(), seen, wl);
                        }
                        for &a in pag.out_seg(x, AdjClass::Entry) {
                            ticket.charge()?;
                            stats.edges_traversed += 1;
                            if let Some(c2) = ctx_push(ctxs, c, a.site(), pag, config)? {
                                step(a.node, c2, seen, wl);
                            }
                        }
                        for &a in pag.out_seg(x, AdjClass::Exit) {
                            ticket.charge()?;
                            stats.edges_traversed += 1;
                            if let Some(c2) = ctx_pop(ctxs, c, a.site(), pag, config)? {
                                step(a.node, c2, seen, wl);
                            }
                        }
                    }
                }
                Ok(())
            })();
            if let Err(kind) = result {
                interrupted = Some(kind);
                break 'drive;
            }
        }
    }

    match interrupted {
        Some(kind) => QueryResult::interrupted(pts, stats, kind),
        None => QueryResult::resolved(pts, stats),
    }
}
