//! DYNSUM — the paper's contribution (Algorithm 4).
//!
//! A worklist driver over configurations `(u, f, s, c)` that handles only
//! the **global** (context-dependent) edges itself, delegating all local
//! traversal to the partial points-to analysis of [Algorithm 3](crate::ppta)
//! and memorizing each `(u, f, s) → Summary` in a cross-query cache. The
//! summaries are context-independent, so a summary computed while
//! answering one query under one calling context is reused verbatim under
//! any other context or query — without any precision loss (§4).

use std::rc::Rc;

use dynsum_cfl::{
    Budget, BudgetExceeded, CtxId, Direction, FieldStackId, QueryResult, QueryStats, StackPool,
    StepKind, Trace,
};
use dynsum_pag::{CallSiteId, FieldId, NodeId, Pag, VarId};

use crate::driver::{drive, DriveScratch};
use crate::engine::{ClientCheck, DemandPointsTo, EngineConfig};
use crate::ppta;
use crate::ppta::PptaScratch;
use crate::summary::{Summary, SummaryCache};

/// The DYNSUM demand-driven points-to engine.
///
/// Construct once per PAG and issue any number of queries; the summary
/// cache persists and grows across queries (that persistence is the whole
/// point — Figures 4 and 5 of the paper measure it).
///
/// # Examples
///
/// ```
/// use dynsum_core::{DemandPointsTo, DynSum};
/// use dynsum_pag::PagBuilder;
///
/// let mut b = PagBuilder::new();
/// let m = b.add_method("main", None)?;
/// let v = b.add_local("v", m, None)?;
/// let o = b.add_obj("o1", None, Some(m))?;
/// b.add_new(o, v)?;
/// let pag = b.finish();
///
/// let mut engine = DynSum::new(&pag);
/// let result = engine.points_to(v);
/// assert!(result.resolved);
/// assert!(result.pts.contains_obj(o));
/// # Ok::<(), dynsum_pag::BuildError>(())
/// ```
#[derive(Debug)]
pub struct DynSum<'p> {
    pag: &'p Pag,
    fields: StackPool<FieldId>,
    ctxs: StackPool<CallSiteId>,
    cache: SummaryCache,
    config: EngineConfig,
    tracing: bool,
    last_trace: Option<Trace>,
    scratch: DriveScratch,
    ppta_scratch: PptaScratch,
}

impl<'p> DynSum<'p> {
    /// Creates an engine with the default configuration (75k budget).
    pub fn new(pag: &'p Pag) -> Self {
        Self::with_config(pag, EngineConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(pag: &'p Pag, config: EngineConfig) -> Self {
        DynSum {
            pag,
            fields: StackPool::new(),
            ctxs: StackPool::new(),
            cache: SummaryCache::new(),
            config,
            tracing: false,
            last_trace: None,
            scratch: DriveScratch::default(),
            ppta_scratch: PptaScratch::default(),
        }
    }

    /// Enables or disables step tracing (Table 1). Tracing is off by
    /// default and costs nothing when off.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Takes the trace recorded by the most recent query, if tracing was
    /// enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.last_trace.take()
    }

    /// The summary cache (size, hit/miss counters).
    pub fn cache(&self) -> &SummaryCache {
        &self.cache
    }

    /// Evicts the summaries of one method, keeping everything else.
    ///
    /// This is the incremental-analysis story the paper motivates for
    /// JIT compilers and IDEs (§1, §7): when an edit invalidates a
    /// single method body, only that method's context-independent
    /// summaries need recomputing — summaries are keyed by node, and
    /// local edges never cross method boundaries, so summaries of
    /// untouched methods stay valid. Returns the number of evicted
    /// entries.
    ///
    /// The caller is responsible for re-creating the engine if the
    /// *graph* object itself changed; this API models the common
    /// IDE case where queries continue against a freshly rebuilt PAG
    /// with identical ids for untouched methods.
    pub fn invalidate_method(&mut self, method: dynsum_pag::MethodId) -> usize {
        let pag = self.pag;
        self.cache
            .evict_where(|&(node, _, _)| pag.method_of(node) == Some(method))
    }

    /// Evicts summaries for every method in `methods` (bulk form of
    /// [`invalidate_method`](Self::invalidate_method)).
    pub fn invalidate_methods(&mut self, methods: &[dynsum_pag::MethodId]) -> usize {
        let pag = self.pag;
        self.cache
            .evict_where(|&(node, _, _)| pag.method_of(node).is_some_and(|m| methods.contains(&m)))
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Answers `pointsTo(v, c)` for an explicit initial context given as
    /// call-site labels from innermost caller outwards (bottom-to-top of
    /// the paper's stack notation).
    pub fn points_to_in(&mut self, v: VarId, ctx: &[CallSiteId]) -> QueryResult {
        let c0 = self.ctxs.from_slice(ctx);
        self.run(v, c0)
    }

    fn run(&mut self, v: VarId, c0: CtxId) -> QueryResult {
        let pag = self.pag;
        let config = self.config;
        let mut trace = self.tracing.then(Trace::new);
        let cache = &mut self.cache;
        let ppta_scratch = &mut self.ppta_scratch;
        let cache_on = config.cache_summaries;

        // Algorithm 4, lines 5–9: the summary provider reuses the cache
        // or computes a fresh PPTA (Algorithm 3). Partial results of an
        // over-budget PPTA are never cached.
        let mut provider = |fields: &mut StackPool<FieldId>,
                            budget: &mut Budget,
                            stats: &mut QueryStats,
                            u: NodeId,
                            f: FieldStackId,
                            s: Direction|
         -> Result<(Rc<Summary>, StepKind), BudgetExceeded> {
            let key = (u, f, s);
            if cache_on {
                if let Some(sum) = cache.lookup(key) {
                    stats.cache_hits += 1;
                    return Ok((sum, StepKind::PptaReused));
                }
            }
            stats.cache_misses += 1;
            let sum = ppta::compute(pag, fields, ppta_scratch, &config, budget, stats, u, f, s)?;
            let rc = Rc::new(sum);
            if cache_on {
                cache.insert(key, Rc::clone(&rc));
            }
            Ok((rc, StepKind::PptaComputed))
        };

        let result = drive(
            pag,
            &mut self.fields,
            &mut self.ctxs,
            &mut self.scratch,
            &config,
            pag.var_node(v),
            c0,
            &mut provider,
            trace.as_mut(),
        );
        self.last_trace = trace;
        result
    }
}

impl DemandPointsTo for DynSum<'_> {
    fn name(&self) -> &'static str {
        "DYNSUM"
    }

    /// DYNSUM has no refinement: the client predicate is ignored and the
    /// precise answer is computed directly (Table 2: full precision).
    fn query(&mut self, v: VarId, _satisfied: ClientCheck<'_>) -> QueryResult {
        self.run(v, CtxId::EMPTY)
    }

    fn summary_count(&self) -> usize {
        self.cache.len()
    }

    fn reset(&mut self) {
        self.cache.clear();
        self.fields = StackPool::new();
        self.ctxs = StackPool::new();
        self.last_trace = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsum_pag::PagBuilder;

    /// id(p){return p} called from two sites with distinct objects: a
    /// context-sensitive analysis must not mix the results.
    fn two_callers() -> (Pag, VarId, VarId, dynsum_pag::ObjId, dynsum_pag::ObjId) {
        let mut b = PagBuilder::new();
        let main = b.add_method("main", None).unwrap();
        let id = b.add_method("id", None).unwrap();
        let a1 = b.add_local("a1", main, None).unwrap();
        let a2 = b.add_local("a2", main, None).unwrap();
        let r1 = b.add_local("r1", main, None).unwrap();
        let r2 = b.add_local("r2", main, None).unwrap();
        let p = b.add_local("p", id, None).unwrap();
        let ret = b.add_local("ret", id, None).unwrap();
        let o1 = b.add_obj("o1", None, Some(main)).unwrap();
        let o2 = b.add_obj("o2", None, Some(main)).unwrap();
        b.add_new(o1, a1).unwrap();
        b.add_new(o2, a2).unwrap();
        b.add_assign(p, ret).unwrap();
        let s1 = b.add_call_site("1", main).unwrap();
        let s2 = b.add_call_site("2", main).unwrap();
        b.add_entry(s1, a1, p).unwrap();
        b.add_entry(s2, a2, p).unwrap();
        b.add_exit(s1, ret, r1).unwrap();
        b.add_exit(s2, ret, r2).unwrap();
        (b.finish(), r1, r2, o1, o2)
    }

    #[test]
    fn context_sensitivity_separates_call_sites() {
        let (pag, r1, r2, o1, o2) = two_callers();
        let mut e = DynSum::new(&pag);
        let p1 = e.points_to(r1);
        assert!(p1.resolved);
        assert_eq!(p1.pts.objects().into_iter().collect::<Vec<_>>(), vec![o1]);
        let p2 = e.points_to(r2);
        assert_eq!(p2.pts.objects().into_iter().collect::<Vec<_>>(), vec![o2]);
    }

    #[test]
    fn second_query_reuses_summaries() {
        let (pag, r1, r2, ..) = two_callers();
        let mut e = DynSum::new(&pag);
        let p1 = e.points_to(r1);
        assert_eq!(p1.stats.cache_hits, 0);
        let before = e.summary_count();
        assert!(before > 0);
        let p2 = e.points_to(r2);
        assert!(
            p2.stats.cache_hits > 0,
            "the callee's summary must be reused across contexts"
        );
        assert!(p2.stats.edges_traversed < p1.stats.edges_traversed);
    }

    #[test]
    fn cache_disabled_recomputes() {
        let (pag, r1, r2, ..) = two_callers();
        let config = EngineConfig {
            cache_summaries: false,
            ..EngineConfig::default()
        };
        let mut e = DynSum::with_config(&pag, config);
        e.points_to(r1);
        let p2 = e.points_to(r2);
        assert_eq!(p2.stats.cache_hits, 0);
        assert_eq!(e.summary_count(), 0);
    }

    #[test]
    fn globals_clear_context() {
        // o flows through a global: m1 writes G, m2 reads it.
        let mut b = PagBuilder::new();
        let m1 = b.add_method("m1", None).unwrap();
        let m2 = b.add_method("m2", None).unwrap();
        let v = b.add_local("v", m1, None).unwrap();
        let w = b.add_local("w", m2, None).unwrap();
        let g = b.add_global("G", None).unwrap();
        let o = b.add_obj("o", None, Some(m1)).unwrap();
        b.add_new(o, v).unwrap();
        b.add_assign(v, g).unwrap();
        b.add_assign(g, w).unwrap();
        let pag = b.finish();
        let mut e = DynSum::new(&pag);
        let r = e.points_to(w);
        assert!(r.resolved);
        assert!(r.pts.contains_obj(o));
    }

    #[test]
    fn budget_exhaustion_reports_unresolved() {
        let (pag, r1, ..) = two_callers();
        let config = EngineConfig {
            budget: 2,
            ..EngineConfig::default()
        };
        let mut e = DynSum::with_config(&pag, config);
        let r = e.points_to(r1);
        assert!(!r.resolved);
    }

    #[test]
    fn tracing_records_steps_and_reuse() {
        let (pag, r1, r2, ..) = two_callers();
        let mut e = DynSum::new(&pag);
        e.set_tracing(true);
        e.points_to(r1);
        let t1 = e.take_trace().unwrap();
        assert!(!t1.is_empty());
        assert_eq!(t1.reuse_count(), 0);
        e.points_to(r2);
        let t2 = e.take_trace().unwrap();
        assert!(t2.reuse_count() > 0);
        assert!(t2.len() <= t1.len());
    }

    #[test]
    fn reset_clears_cache() {
        let (pag, r1, ..) = two_callers();
        let mut e = DynSum::new(&pag);
        e.points_to(r1);
        assert!(e.summary_count() > 0);
        e.reset();
        assert_eq!(e.summary_count(), 0);
        // Still answers correctly after reset.
        assert!(e.points_to(r1).resolved);
    }

    #[test]
    fn invalidation_evicts_only_the_edited_method() {
        let (pag, r1, r2, ..) = two_callers();
        let mut e = DynSum::new(&pag);
        e.points_to(r1);
        e.points_to(r2);
        let before = e.summary_count();
        assert!(before > 0);
        // "Edit" the callee: its summaries go, main's stay.
        let id = pag.find_method("id").unwrap();
        let evicted = e.invalidate_method(id);
        assert!(evicted > 0);
        assert_eq!(e.summary_count(), before - evicted);
        // Queries still come out right and repopulate the cache.
        let r = e.points_to(r1);
        assert!(r.resolved);
        assert!(e.summary_count() >= before - evicted);
        // Invalidating an untouched method evicts nothing new for `id`.
        let main = pag.find_method("main").unwrap();
        let evicted_main = e.invalidate_methods(&[main]);
        assert!(evicted_main > 0, "main's summaries existed too");
    }

    #[test]
    fn query_with_explicit_context() {
        let (pag, ..) = two_callers();
        // pointsTo(ret, [site1]) must see only o1: the exit edge at site 1
        // is the only realizable return.
        let ret = pag.find_var("ret").unwrap();
        let s1 = pag.find_call_site("1").unwrap();
        let o1 = pag.find_obj("o1").unwrap();
        let mut e = DynSum::new(&pag);
        let r = e.points_to_in(ret, &[s1]);
        assert!(r.resolved);
        assert_eq!(
            r.pts.objects().into_iter().collect::<Vec<_>>(),
            vec![o1],
            "context [1] must restrict the formal's sources to site 1"
        );
    }
}
