//! DYNSUM — the paper's contribution (Algorithm 4).
//!
//! A worklist driver over configurations `(u, f, s, c)` that handles only
//! the **global** (context-dependent) edges itself, delegating all local
//! traversal to the partial points-to analysis of [Algorithm 3](crate::ppta)
//! and memorizing each `(u, f, s) → Summary` in a cross-query cache. The
//! summaries are context-independent, so a summary computed while
//! answering one query under one calling context is reused verbatim under
//! any other context or query — without any precision loss (§4).
//!
//! Budget accounting is **deterministic**: a cache hit charges the
//! summary's recorded cold-computation [cost](crate::Summary::cost) in
//! one lump instead of re-traversing, so every query's outcome is a pure
//! function of `(pag, config, query)` — independent of cache state and
//! query order. This is what lets [`Session::run_batch`](crate::Session)
//! return results byte-identical to sequential execution while still
//! reaping the wall-clock benefit of reuse.

use std::sync::Arc;

use dynsum_cfl::{
    Direction, FieldFrame, FieldStackId, Interrupt, QueryControl, QueryResult, QueryStats,
    StackPool, StepKind, Ticket, Trace,
};
use dynsum_pag::{CallSiteId, NodeId, Pag, VarId};

use crate::driver::{drive, DriveParts};
use crate::engine::{ClientCheck, DemandPointsTo, EngineConfig};
use crate::ppta;
use crate::summary::{Summary, SummaryCache};

/// Runs one DYNSUM query over borrowed per-handle state.
///
/// `base` is an optional **frozen** shared cache layered under the
/// mutable `cache` shard: handle-local lookups consult the shard first,
/// then the base; fresh summaries always land in the shard. The legacy
/// [`DynSum`] engine passes `base: None` and its own cache as the shard;
/// [`Session`](crate::Session) query handles pass the session cache as
/// `base`. Keys are field-stack-pool-relative, so `parts.fields` must be
/// the pool (or a clone of the pool) the `base` keys were interned in.
///
/// The context pool is per-query scratch (cleared here), making the
/// result — including raw context ids in the points-to set — a
/// deterministic function of `(pag, config, v, ctx)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dynsum_query(
    pag: &Pag,
    config: &EngineConfig,
    base: Option<&SummaryCache>,
    cache: &mut SummaryCache,
    parts: &mut DriveParts,
    v: VarId,
    ctx: &[CallSiteId],
    control: &QueryControl,
    trace: Option<&mut Trace>,
) -> QueryResult {
    let DriveParts {
        fields,
        ctxs,
        drive: drive_scratch,
        ppta: ppta_scratch,
    } = parts;
    ctxs.clear();
    let c0 = ctxs.from_slice(ctx);
    let cache_on = config.cache_summaries;

    // Algorithm 4, lines 5–9: the summary provider reuses the cache
    // or computes a fresh PPTA (Algorithm 3). Partial results of an
    // over-budget PPTA are never cached, and every reuse charges the
    // summary's cold cost so budget outcomes are cache-independent.
    let mut provider = |fields: &mut StackPool<FieldFrame>,
                        ticket: &mut Ticket,
                        stats: &mut QueryStats,
                        u: NodeId,
                        f: FieldStackId,
                        s: Direction|
     -> Result<(Arc<Summary>, StepKind), Interrupt> {
        let key = (u, f, s);
        if cache_on {
            // Base first: on a warm stream most hits live in the shared
            // session cache, so probing it before the (small, disjoint)
            // shard saves a hash probe on the hot path. A key is never
            // in both — shard inserts only keys that missed both.
            if let Some(sum) = base.and_then(|b| b.get(key)).or_else(|| cache.get(key)) {
                cache.record_hit();
                stats.cache_hits += 1;
                if config.deterministic_reuse {
                    ticket.charge_n(sum.cost)?;
                }
                return Ok((sum, StepKind::PptaReused));
            }
            cache.record_miss();
        }
        stats.cache_misses += 1;
        let sum = ppta::compute(pag, fields, ppta_scratch, config, ticket, stats, u, f, s)?;
        let arc = Arc::new(sum);
        if cache_on {
            cache.insert(key, Arc::clone(&arc));
        }
        Ok((arc, StepKind::PptaComputed))
    };

    let mut ticket = Ticket::with_control(config.budget, control);
    let result = drive(
        pag,
        fields,
        ctxs,
        drive_scratch,
        config,
        pag.var_node(v),
        c0,
        &mut ticket,
        &mut provider,
        trace,
    );
    // Size-capped lifecycle: sweep the mutable cache down to the cap
    // after every query. For the legacy engine that bounds the whole
    // cache; for a session handle it bounds the in-flight shard (the
    // shared cache is capped again at the absorb merge point). Safe at
    // any cap — deterministic reuse makes outcomes cache-independent.
    if let Some(cap) = config.max_cached_summaries {
        cache.enforce_cap(cap);
    }
    result
}

/// The DYNSUM demand-driven points-to engine.
///
/// Construct once per PAG and issue any number of queries; the summary
/// cache persists and grows across queries (that persistence is the whole
/// point — Figures 4 and 5 of the paper measure it). For sharing one
/// warm cache across threads, see [`Session`](crate::Session).
///
/// # Examples
///
/// ```
/// use dynsum_core::{DemandPointsTo, DynSum};
/// use dynsum_pag::PagBuilder;
///
/// let mut b = PagBuilder::new();
/// let m = b.add_method("main", None)?;
/// let v = b.add_local("v", m, None)?;
/// let o = b.add_obj("o1", None, Some(m))?;
/// b.add_new(o, v)?;
/// let pag = b.finish();
///
/// let mut engine = DynSum::new(&pag);
/// let result = engine.points_to(v);
/// assert!(result.resolved);
/// assert!(result.pts.contains_obj(o));
/// # Ok::<(), dynsum_pag::BuildError>(())
/// ```
#[derive(Debug)]
pub struct DynSum<'p> {
    pag: &'p Pag,
    parts: DriveParts,
    cache: SummaryCache,
    config: EngineConfig,
    control: QueryControl,
    tracing: bool,
    last_trace: Option<Trace>,
}

impl<'p> DynSum<'p> {
    /// Creates an engine with the default configuration (75k budget).
    pub fn new(pag: &'p Pag) -> Self {
        Self::with_config(pag, EngineConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(pag: &'p Pag, config: EngineConfig) -> Self {
        DynSum {
            pag,
            parts: DriveParts::default(),
            cache: SummaryCache::new(),
            config,
            control: QueryControl::default(),
            tracing: false,
            last_trace: None,
        }
    }

    /// Attaches a [`QueryControl`] (cancel token / deadline) observed by
    /// every subsequent query until replaced. The default control never
    /// interrupts.
    pub fn set_control(&mut self, control: QueryControl) {
        self.control = control;
    }

    /// Enables or disables step tracing (Table 1). Tracing is off by
    /// default and costs nothing when off.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Takes the trace recorded by the most recent query, if tracing was
    /// enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.last_trace.take()
    }

    /// The summary cache (size, hit/miss counters).
    pub fn cache(&self) -> &SummaryCache {
        &self.cache
    }

    /// Evicts the summaries of one method, keeping everything else.
    ///
    /// This is the incremental-analysis story the paper motivates for
    /// JIT compilers and IDEs (§1, §7): when an edit invalidates a
    /// single method body, only that method's context-independent
    /// summaries need recomputing — summaries are keyed by node, and
    /// local edges never cross method boundaries, so summaries of
    /// untouched methods stay valid. Returns the number of evicted
    /// entries.
    ///
    /// The caller is responsible for re-creating the engine if the
    /// *graph* object itself changed; this API models the common
    /// IDE case where queries continue against a freshly rebuilt PAG
    /// with identical ids for untouched methods.
    pub fn invalidate_method(&mut self, method: dynsum_pag::MethodId) -> usize {
        let pag = self.pag;
        self.cache
            .evict_where(|&(node, _, _)| pag.method_of(node) == Some(method))
    }

    /// Evicts summaries for every method in `methods` (bulk form of
    /// [`invalidate_method`](Self::invalidate_method)).
    pub fn invalidate_methods(&mut self, methods: &[dynsum_pag::MethodId]) -> usize {
        let pag = self.pag;
        self.cache
            .evict_where(|&(node, _, _)| pag.method_of(node).is_some_and(|m| methods.contains(&m)))
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Answers `pointsTo(v, c)` for an explicit initial context given as
    /// call-site labels from innermost caller outwards (bottom-to-top of
    /// the paper's stack notation).
    pub fn points_to_in(&mut self, v: VarId, ctx: &[CallSiteId]) -> QueryResult {
        self.run(v, ctx)
    }

    fn run(&mut self, v: VarId, ctx: &[CallSiteId]) -> QueryResult {
        let mut trace = self.tracing.then(Trace::new);
        let result = dynsum_query(
            self.pag,
            &self.config,
            None,
            &mut self.cache,
            &mut self.parts,
            v,
            ctx,
            &self.control,
            trace.as_mut(),
        );
        self.last_trace = trace;
        result
    }
}

impl DemandPointsTo for DynSum<'_> {
    fn name(&self) -> &'static str {
        "DYNSUM"
    }

    /// DYNSUM has no refinement: the client predicate is ignored and the
    /// precise answer is computed directly (Table 2: full precision).
    fn query(&mut self, v: VarId, _satisfied: ClientCheck<'_>) -> QueryResult {
        self.run(v, &[])
    }

    fn summary_count(&self) -> usize {
        self.cache.len()
    }

    fn reset(&mut self) {
        self.cache.clear();
        self.parts = DriveParts::default();
        self.last_trace = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsum_pag::PagBuilder;

    /// id(p){return p} called from two sites with distinct objects: a
    /// context-sensitive analysis must not mix the results.
    fn two_callers() -> (Pag, VarId, VarId, dynsum_pag::ObjId, dynsum_pag::ObjId) {
        let mut b = PagBuilder::new();
        let main = b.add_method("main", None).unwrap();
        let id = b.add_method("id", None).unwrap();
        let a1 = b.add_local("a1", main, None).unwrap();
        let a2 = b.add_local("a2", main, None).unwrap();
        let r1 = b.add_local("r1", main, None).unwrap();
        let r2 = b.add_local("r2", main, None).unwrap();
        let p = b.add_local("p", id, None).unwrap();
        let ret = b.add_local("ret", id, None).unwrap();
        let o1 = b.add_obj("o1", None, Some(main)).unwrap();
        let o2 = b.add_obj("o2", None, Some(main)).unwrap();
        b.add_new(o1, a1).unwrap();
        b.add_new(o2, a2).unwrap();
        b.add_assign(p, ret).unwrap();
        let s1 = b.add_call_site("1", main).unwrap();
        let s2 = b.add_call_site("2", main).unwrap();
        b.add_entry(s1, a1, p).unwrap();
        b.add_entry(s2, a2, p).unwrap();
        b.add_exit(s1, ret, r1).unwrap();
        b.add_exit(s2, ret, r2).unwrap();
        (b.finish(), r1, r2, o1, o2)
    }

    #[test]
    fn context_sensitivity_separates_call_sites() {
        let (pag, r1, r2, o1, o2) = two_callers();
        let mut e = DynSum::new(&pag);
        let p1 = e.points_to(r1);
        assert!(p1.resolved);
        assert_eq!(p1.pts.objects().into_iter().collect::<Vec<_>>(), vec![o1]);
        let p2 = e.points_to(r2);
        assert_eq!(p2.pts.objects().into_iter().collect::<Vec<_>>(), vec![o2]);
    }

    #[test]
    fn second_query_reuses_summaries() {
        let (pag, r1, r2, ..) = two_callers();
        let mut e = DynSum::new(&pag);
        let p1 = e.points_to(r1);
        assert_eq!(p1.stats.cache_hits, 0);
        let before = e.summary_count();
        assert!(before > 0);
        let p2 = e.points_to(r2);
        assert!(
            p2.stats.cache_hits > 0,
            "the callee's summary must be reused across contexts"
        );
        assert!(p2.stats.edges_traversed < p1.stats.edges_traversed);
    }

    #[test]
    fn cache_disabled_recomputes() {
        let (pag, r1, r2, ..) = two_callers();
        let config = EngineConfig {
            cache_summaries: false,
            ..EngineConfig::default()
        };
        let mut e = DynSum::with_config(&pag, config);
        e.points_to(r1);
        let p2 = e.points_to(r2);
        assert_eq!(p2.stats.cache_hits, 0);
        assert_eq!(e.summary_count(), 0);
    }

    #[test]
    fn caching_never_changes_outcomes() {
        // Deterministic budget accounting: with any budget, the cached
        // and cache-free runs agree exactly on resolution and results.
        let (pag, r1, r2, ..) = two_callers();
        for budget in [1, 2, 4, 8, 16, 64, 75_000] {
            let cached = EngineConfig {
                budget,
                ..EngineConfig::default()
            };
            let uncached = EngineConfig {
                cache_summaries: false,
                ..cached
            };
            let mut warm = DynSum::with_config(&pag, cached);
            let mut cold = DynSum::with_config(&pag, uncached);
            for v in [r1, r2, r1, r2, r1] {
                let a = warm.points_to(v);
                let b = cold.points_to(v);
                assert_eq!(a.resolved, b.resolved, "budget {budget}");
                assert_eq!(a.pts, b.pts, "budget {budget}");
            }
        }
    }

    #[test]
    fn size_cap_bounds_the_cache_without_changing_answers() {
        let (pag, r1, r2, o1, o2) = two_callers();
        let mut uncapped = DynSum::new(&pag);
        let want1 = uncapped.points_to(r1);
        let want2 = uncapped.points_to(r2);
        let full = uncapped.summary_count();
        assert!(full > 1);
        for cap in [0usize, 1, 2, full] {
            let config = EngineConfig {
                max_cached_summaries: Some(cap),
                ..EngineConfig::default()
            };
            let mut e = DynSum::with_config(&pag, config);
            // Interleave and repeat: eviction happens mid-stream.
            for _ in 0..3 {
                let a = e.points_to(r1);
                assert_eq!(a.resolved, want1.resolved, "cap {cap}");
                assert_eq!(a.pts, want1.pts, "cap {cap}");
                let b = e.points_to(r2);
                assert_eq!(b.pts, want2.pts, "cap {cap}");
                assert!(e.summary_count() <= cap, "cap {cap} not enforced");
            }
            if cap == 0 {
                assert!(e.cache().evictions() > 0);
            }
        }
        assert!(want1.pts.contains_obj(o1) && want2.pts.contains_obj(o2));
    }

    #[test]
    fn free_reuse_mode_restores_warm_resolution() {
        // With deterministic accounting (the default), a budget-starved
        // query stays starved no matter how warm the cache gets — and
        // returns the same partial set every time. With the paper's
        // free-reuse economics, repeating the query ratchets: partial
        // PPTAs cached by earlier attempts are free, so it eventually
        // fits the budget.
        let (pag, r1, ..) = two_callers();
        let det = EngineConfig {
            budget: 4,
            ..EngineConfig::default()
        };
        let mut e = DynSum::with_config(&pag, det);
        let first = e.points_to(r1);
        assert!(!first.resolved);
        for _ in 0..10 {
            let r = e.points_to(r1);
            assert!(!r.resolved, "deterministic reuse never ratchets");
            assert_eq!(r.pts, first.pts);
        }
        let free = EngineConfig {
            deterministic_reuse: false,
            ..det
        };
        let mut e = DynSum::with_config(&pag, free);
        let resolved = (0..10).any(|_| e.points_to(r1).resolved);
        assert!(resolved, "free reuse must eventually fit the budget");
    }

    #[test]
    fn globals_clear_context() {
        // o flows through a global: m1 writes G, m2 reads it.
        let mut b = PagBuilder::new();
        let m1 = b.add_method("m1", None).unwrap();
        let m2 = b.add_method("m2", None).unwrap();
        let v = b.add_local("v", m1, None).unwrap();
        let w = b.add_local("w", m2, None).unwrap();
        let g = b.add_global("G", None).unwrap();
        let o = b.add_obj("o", None, Some(m1)).unwrap();
        b.add_new(o, v).unwrap();
        b.add_assign(v, g).unwrap();
        b.add_assign(g, w).unwrap();
        let pag = b.finish();
        let mut e = DynSum::new(&pag);
        let r = e.points_to(w);
        assert!(r.resolved);
        assert!(r.pts.contains_obj(o));
    }

    #[test]
    fn budget_exhaustion_reports_unresolved() {
        let (pag, r1, ..) = two_callers();
        let config = EngineConfig {
            budget: 2,
            ..EngineConfig::default()
        };
        let mut e = DynSum::with_config(&pag, config);
        let r = e.points_to(r1);
        assert!(!r.resolved);
    }

    #[test]
    fn tracing_records_steps_and_reuse() {
        let (pag, r1, r2, ..) = two_callers();
        let mut e = DynSum::new(&pag);
        e.set_tracing(true);
        e.points_to(r1);
        let t1 = e.take_trace().unwrap();
        assert!(!t1.is_empty());
        assert_eq!(t1.reuse_count(), 0);
        e.points_to(r2);
        let t2 = e.take_trace().unwrap();
        assert!(t2.reuse_count() > 0);
        assert!(t2.len() <= t1.len());
    }

    #[test]
    fn reset_clears_cache() {
        let (pag, r1, ..) = two_callers();
        let mut e = DynSum::new(&pag);
        e.points_to(r1);
        assert!(e.summary_count() > 0);
        e.reset();
        assert_eq!(e.summary_count(), 0);
        // Still answers correctly after reset.
        assert!(e.points_to(r1).resolved);
    }

    #[test]
    fn invalidation_evicts_only_the_edited_method() {
        let (pag, r1, r2, ..) = two_callers();
        let mut e = DynSum::new(&pag);
        e.points_to(r1);
        e.points_to(r2);
        let before = e.summary_count();
        assert!(before > 0);
        // "Edit" the callee: its summaries go, main's stay.
        let id = pag.find_method("id").unwrap();
        let evicted = e.invalidate_method(id);
        assert!(evicted > 0);
        assert_eq!(e.summary_count(), before - evicted);
        // Queries still come out right and repopulate the cache.
        let r = e.points_to(r1);
        assert!(r.resolved);
        assert!(e.summary_count() >= before - evicted);
        // Invalidating an untouched method evicts nothing new for `id`.
        let main = pag.find_method("main").unwrap();
        let evicted_main = e.invalidate_methods(&[main]);
        assert!(evicted_main > 0, "main's summaries existed too");
    }

    #[test]
    fn query_with_explicit_context() {
        let (pag, ..) = two_callers();
        // pointsTo(ret, [site1]) must see only o1: the exit edge at site 1
        // is the only realizable return.
        let ret = pag.find_var("ret").unwrap();
        let s1 = pag.find_call_site("1").unwrap();
        let o1 = pag.find_obj("o1").unwrap();
        let mut e = DynSum::new(&pag);
        let r = e.points_to_in(ret, &[s1]);
        assert!(r.resolved);
        assert_eq!(
            r.pts.objects().into_iter().collect::<Vec<_>>(),
            vec![o1],
            "context [1] must restrict the formal's sources to site 1"
        );
    }
}
