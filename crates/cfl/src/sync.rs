//! The workspace's single gateway to synchronization primitives.
//!
//! Every concurrency kernel in the workspace — the [`CancelToken`]
//! flag, the clock-eviction reference bits, the work-stealing batch
//! cursor, the daemon's stop flag and cancel registry — imports its
//! atomics, mutexes and thread-spawning through this module instead of
//! `std` directly. By default the re-exports *are* `std::sync` /
//! `std::thread`, so production builds are untouched; under the
//! `model-check` feature they switch to the vendored `loom` shim's
//! instrumented types, and the same kernel code becomes explorable by
//! the bounded schedule checker (`crates/modelcheck`).
//!
//! The `make lint-sync` gate forbids raw `std::sync::atomic` /
//! `std::thread` imports outside this file, so new concurrency cannot
//! silently bypass instrumentation.
//!
//! [`CancelToken`]: crate::CancelToken
//!
//! # What is (and is not) instrumented
//!
//! * **Atomics and [`Mutex`]** switch to model-aware types: every
//!   operation becomes a scheduling + store-visibility choice point.
//! * **[`Arc`]** is always `std`'s — its internal refcount is not a
//!   kernel under test.
//! * **[`thread::spawn`] / [`thread::sleep`] / [`thread::yield_now`]**
//!   switch, becoming virtual-thread operations inside a model run.
//! * **[`thread::scope`] / [`thread::Builder`] /
//!   [`thread::available_parallelism`]** stay `std` in both modes: the
//!   checker does not model scoped spawning (harnesses drive kernels
//!   with `spawn` + `join` instead), and code using them keeps working
//!   under the feature because the instrumented atomics fall back to
//!   their `std` behavior on non-virtual threads.

#[cfg(not(feature = "model-check"))]
pub use std::sync::{Arc, LockResult, Mutex, MutexGuard, PoisonError};

#[cfg(feature = "model-check")]
pub use loom::sync::{Arc, LockResult, Mutex, MutexGuard, PoisonError};

/// Atomic types routed through the facade.
pub mod atomic {
    #[cfg(not(feature = "model-check"))]
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

    #[cfg(feature = "model-check")]
    pub use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

/// Thread spawning routed through the facade.
pub mod thread {
    #[cfg(not(feature = "model-check"))]
    pub use std::thread::{sleep, spawn, yield_now, JoinHandle};

    #[cfg(feature = "model-check")]
    pub use loom::thread::{sleep, spawn, yield_now, JoinHandle};

    // Deliberately std in both modes — see the module docs above.
    pub use std::thread::{available_parallelism, scope, Builder, Scope, ScopedJoinHandle};
}
