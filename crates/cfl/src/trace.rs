//! Step tracing for the DYNSUM driver — the columns of the paper's
//! Table 1.

use dynsum_pag::{CallSiteId, FieldId, NodeId, Pag};

use crate::rsm::Direction;

/// How a traversal step was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// The partial points-to summary for this configuration was computed
    /// fresh by Algorithm 3.
    PptaComputed,
    /// The summary was found in the cache — the paper marks these steps
    /// *reuse* in Table 1.
    PptaReused,
    /// The node had no local edges, so no PPTA was needed (§4.3).
    NoLocalEdges,
    /// A global edge was crossed by the worklist driver (Algorithm 4).
    GlobalEdge,
    /// An object was reported into the points-to set.
    ObjectFound,
}

impl StepKind {
    /// Short display tag.
    pub fn tag(self) -> &'static str {
        match self {
            StepKind::PptaComputed => "ppta",
            StepKind::PptaReused => "reuse",
            StepKind::NoLocalEdges => "skip",
            StepKind::GlobalEdge => "global",
            StepKind::ObjectFound => "object",
        }
    }
}

/// One row of a DYNSUM traversal trace: the `(v, f, s, c)` configuration
/// of Table 1 plus what happened there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Current node.
    pub node: NodeId,
    /// Field stack, bottom-to-top.
    pub field_stack: Vec<FieldId>,
    /// RSM direction state.
    pub state: Direction,
    /// Context stack, bottom-to-top.
    pub ctx: Vec<CallSiteId>,
    /// What the driver did at this configuration.
    pub kind: StepKind,
}

impl TraceStep {
    /// Renders the step like a Table 1 row, resolving ids to names
    /// against the graph that produced it.
    pub fn render(&self, pag: &Pag) -> String {
        let fields: Vec<&str> = self
            .field_stack
            .iter()
            .map(|&f| pag.field_name(f))
            .collect();
        let ctx: Vec<String> = self
            .ctx
            .iter()
            .map(|&c| pag.call_site(c).label.clone())
            .collect();
        format!(
            "{:<16} [{}] {} [{}] {}",
            pag.node_label(self.node),
            fields.join(","),
            self.state,
            ctx.join(","),
            self.kind.tag()
        )
    }
}

/// A recorder for traversal traces. The engines accept an
/// `Option<&mut Trace>`; passing `None` keeps tracing strictly zero-cost.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    steps: Vec<TraceStep>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { steps: Vec::new() }
    }

    /// Appends a step.
    pub fn push(&mut self, step: TraceStep) {
        self.steps.push(step);
    }

    /// The recorded steps, in order.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of steps satisfied from the summary cache.
    pub fn reuse_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.kind == StepKind::PptaReused)
            .count()
    }

    /// Renders the whole trace, one row per line, against `pag`.
    pub fn render(&self, pag: &Pag) -> String {
        let mut out = String::new();
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(&format!("{i:>4}  {}\n", s.render(pag)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynsum_pag::PagBuilder;

    #[test]
    fn trace_records_and_counts_reuse() {
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let v = b.add_local("v", m, None).unwrap();
        let pag = b.finish();
        let node = pag.var_node(v);

        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(TraceStep {
            node,
            field_stack: vec![],
            state: Direction::S1,
            ctx: vec![],
            kind: StepKind::PptaComputed,
        });
        t.push(TraceStep {
            node,
            field_stack: vec![],
            state: Direction::S1,
            ctx: vec![],
            kind: StepKind::PptaReused,
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.reuse_count(), 1);
        let rendered = t.render(&pag);
        assert!(rendered.contains("v"));
        assert!(rendered.contains("reuse"));
    }

    #[test]
    fn step_renders_fields_and_ctx() {
        let mut b = PagBuilder::new();
        let m = b.add_method("m", None).unwrap();
        let v = b.add_local("v", m, None).unwrap();
        let f = b.field("elems");
        let site = b.add_call_site("22", m).unwrap();
        let _ = (f, site);
        let pag = b.finish();
        let step = TraceStep {
            node: pag.var_node(v),
            field_stack: vec![pag.find_field("elems").unwrap()],
            state: Direction::S2,
            ctx: vec![pag.find_call_site("22").unwrap()],
            kind: StepKind::GlobalEdge,
        };
        let line = step.render(&pag);
        assert!(line.contains("elems"));
        assert!(line.contains("S2"));
        assert!(line.contains("22"));
    }
}
