//! # dynsum-cfl — CFL-reachability machinery
//!
//! Shared infrastructure for the demand-driven points-to engines of
//! *On-Demand Dynamic Summary-based Points-to Analysis* (CGO 2012):
//!
//! * [`StackPool`]/[`StackId`] — hash-consed persistent stacks, used both
//!   for **field stacks** ([`FieldStackId`]: unmatched field
//!   parentheses of the `L_FT` language, tagged by provenance as
//!   [`FieldFrame`]s) and **context stacks** ([`CtxId`]: unmatched
//!   call-site parentheses of `R_RP`);
//! * [`Direction`] — the two traversal states `S1`/`S2` of the
//!   `pointsTo`/`alias` RSM (Figure 3), with the transition tables
//!   documented;
//! * [`Budget`] — per-query edge-traversal budgets (75,000 by default,
//!   §5.2) plus [`with_stack`] for running deep recursive queries;
//! * [`Ticket`]/[`QueryControl`]/[`CancelToken`]/[`Interrupt`] — the
//!   interrupt-aware extension of the budget: cooperative cancellation,
//!   deadlines and deterministic fault-injection fuses, all observed at
//!   budget-charge granularity and unwinding on the budget's sound
//!   partial-result channel;
//! * [`FxHasher`]/[`FxHashMap`]/[`FxHashSet`] — the vendored fast hasher
//!   behind every hot-path table (worklist dedup, interning, caches) —
//!   plus [`StableHasher`], the *frozen* FNV-1a variant whose output is
//!   part of persistent on-disk formats (snapshot fingerprints);
//! * [`PointsToSet`], [`QueryResult`], [`QueryStats`] — context-qualified
//!   results and deterministic work counters;
//! * [`Trace`] — the `(v, f, s, c)` step recorder behind the paper's
//!   Table 1;
//! * [`sync`] — the synchronization facade every concurrency kernel in
//!   the workspace imports (`std` by default, loom-instrumented under
//!   the `model-check` feature for bounded schedule exploration).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod hash;
mod query;
mod rsm;
mod stack;
pub mod sync;
mod trace;

pub use budget::{
    with_stack, Budget, BudgetExceeded, CancelToken, Interrupt, QueryControl, Ticket,
    ANALYSIS_STACK_BYTES,
};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher, StableHasher};
pub use query::{CtxId, FieldFrame, FieldStackId, Outcome, PointsToSet, QueryResult, QueryStats};
pub use rsm::Direction;
pub use stack::{StackId, StackPool};
pub use trace::{StepKind, Trace, TraceStep};

// The whole CFL substrate is shared by the `Session` API's parallel
// query handles: every type here must stay `Send + Sync` (no `Rc`, no
// interior mutability). Compile-time check, so a regression fails the
// build of this test module rather than a distant downstream crate.
#[cfg(test)]
mod thread_safety {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn substrate_types_cross_threads() {
        assert_send_sync::<StackPool<u32>>();
        assert_send_sync::<StackId<u32>>();
        assert_send_sync::<PointsToSet>();
        assert_send_sync::<QueryResult>();
        assert_send_sync::<QueryStats>();
        assert_send_sync::<Budget>();
        assert_send_sync::<Ticket>();
        assert_send_sync::<QueryControl>();
        assert_send_sync::<CancelToken>();
        assert_send_sync::<Interrupt>();
        assert_send_sync::<Outcome>();
        assert_send_sync::<Trace>();
        assert_send_sync::<Direction>();
    }
}
