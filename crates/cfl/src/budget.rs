//! Traversal budgets and interrupt-aware query tickets.
//!
//! Demand-driven CFL-reachability analyses bound the work spent on a
//! single query: once a pre-set number of PAG edge traversals is
//! exceeded, the query is answered conservatively (§5.2 fixes the limit
//! at 75,000 edges for all engines). A [`Budget`] counts edge traversals
//! and reports exhaustion as a hard error that unwinds the query.
//!
//! A [`Ticket`] extends the budget into the general interruption
//! mechanism: the same per-edge charge that trips on exhaustion also
//! observes a shared [`CancelToken`], an optional wall-clock deadline,
//! and an optional deterministic fuse ([`QueryControl::fuse`]), all at
//! budget-charge granularity. Every trip unwinds through the engines
//! exactly like budget exhaustion — the proven sound-partial-result
//! channel — just tagged with a different [`Interrupt`] kind.

/// Error raised when a query exhausts its traversal budget (or one of the
/// auxiliary depth caps that guard against runaway recursion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded;

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "traversal budget exceeded")
    }
}

impl std::error::Error for BudgetExceeded {}

/// A per-query traversal budget: one unit is one PAG edge traversal,
/// matching the unit the paper uses (§5.2).
///
/// # Examples
///
/// ```
/// use dynsum_cfl::Budget;
///
/// let mut b = Budget::new(2);
/// assert!(b.charge().is_ok());
/// assert!(b.charge().is_ok());
/// assert!(b.charge().is_err());
/// assert_eq!(b.used(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    limit: u64,
    used: u64,
}

impl Budget {
    /// The paper's default per-query edge-traversal limit (§5.2).
    pub const DEFAULT_LIMIT: u64 = 75_000;

    /// Creates a budget with the given edge-traversal limit.
    pub fn new(limit: u64) -> Self {
        Budget { limit, used: 0 }
    }

    /// Creates an effectively unlimited budget.
    pub fn unlimited() -> Self {
        Budget {
            limit: u64::MAX,
            used: 0,
        }
    }

    /// Charges one edge traversal.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] once the limit is reached; the current
    /// query should then be answered conservatively.
    #[inline]
    pub fn charge(&mut self) -> Result<(), BudgetExceeded> {
        if self.used >= self.limit {
            return Err(BudgetExceeded);
        }
        self.used += 1;
        Ok(())
    }

    /// Charges `n` edge traversals at once.
    ///
    /// This is the deterministic-accounting primitive behind summary
    /// reuse: when a cached summary is served instead of being recomputed,
    /// the engine charges the summary's recorded cold-computation cost in
    /// one lump, so a query's budget outcome is identical whether the
    /// summary was reused or recomputed — and therefore independent of
    /// cache state, query order, and thread count.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] when the lump does not fit the remaining
    /// budget, exactly as `n` individual [`charge`](Self::charge) calls
    /// would have failed partway through. Like `charge`, the failed lump
    /// is not deducted.
    #[inline]
    pub fn charge_n(&mut self, n: u64) -> Result<(), BudgetExceeded> {
        // Saturating: `unlimited()` uses u64::MAX as the limit and must
        // keep accepting charges without overflowing `used`.
        let after = self.used.saturating_add(n);
        if after > self.limit {
            return Err(BudgetExceeded);
        }
        self.used = after;
        Ok(())
    }

    /// Edge traversals consumed so far.
    #[inline]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The configured limit.
    #[inline]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Remaining traversals before exhaustion.
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.limit - self.used
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::new(Budget::DEFAULT_LIMIT)
    }
}

/// Why a query was interrupted before resolving.
///
/// All three kinds unwind through the engines on the identical channel:
/// a failed charge aborts the traversal and the partial points-to set
/// computed so far is returned as a sound under-approximation. Only the
/// tag differs, so clients can distinguish "ran out of budget" from
/// "was told to stop" from "took too long".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Interrupt {
    /// The edge-traversal budget (or a depth cap) was exhausted.
    Budget,
    /// A shared [`CancelToken`] was cancelled.
    Cancelled,
    /// The query's deadline passed.
    Deadline,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Budget => f.write_str("traversal budget exceeded"),
            Interrupt::Cancelled => f.write_str("query cancelled"),
            Interrupt::Deadline => f.write_str("query deadline exceeded"),
        }
    }
}

impl std::error::Error for Interrupt {}

impl From<BudgetExceeded> for Interrupt {
    fn from(_: BudgetExceeded) -> Self {
        Interrupt::Budget
    }
}

/// A shared cancellation flag: one writer (the client losing interest)
/// and any number of in-flight queries polling it at budget-charge
/// granularity.
///
/// Wrap it in an [`Arc`](std::sync::Arc) to share it between the
/// requesting thread and the query workers; cancelling is a single
/// relaxed atomic store and is irrevocable for the token's lifetime.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use dynsum_cfl::CancelToken;
///
/// let token = Arc::new(CancelToken::new());
/// assert!(!token.is_cancelled());
/// token.cancel();
/// assert!(token.is_cancelled());
/// ```
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: crate::sync::atomic::AtomicBool,
}

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation of every query holding this token.
    pub fn cancel(&self) {
        // Ordering::Relaxed — the flag is a sticky monotone boolean
        // (false→true once, never back) carrying no payload: pollers
        // need eventual visibility, not an ordering edge over other
        // data. Callers that pair cancellation with shared state (the
        // daemon's reply channel) get their happens-before from that
        // channel, not from this store. Model-checked: no lost
        // cancellation (crates/modelcheck, `cancel_token_*`).
        self.flag
            .store(true, crate::sync::atomic::Ordering::Relaxed);
    }

    /// `true` once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        // Ordering::Relaxed — see `cancel`: a poll may lag the store by
        // a bounded number of charges (the `poll_every` promptness
        // bound already tolerates that), but can never un-see `true`.
        self.flag.load(crate::sync::atomic::Ordering::Relaxed)
    }
}

/// Per-query interruption controls attached to a [`Ticket`].
///
/// The default control has no external signals: a ticket built from it
/// behaves exactly like a plain [`Budget`] (one compare-and-increment
/// per charge, no polling).
#[derive(Debug, Clone, Default)]
pub struct QueryControl {
    /// Shared cancellation flag, polled every
    /// [`poll_every`](Self::poll_every) charges.
    pub cancel: Option<std::sync::Arc<CancelToken>>,
    /// Absolute deadline, checked every [`poll_every`](Self::poll_every)
    /// charges.
    pub deadline: Option<std::time::Instant>,
    /// How many charges may pass between polls of the external signals
    /// (cancel token, deadline). `0` is treated as `1`. This is the
    /// promptness bound: a cancelled query traverses at most this many
    /// further edges before unwinding.
    pub poll_every: u64,
    /// Deterministic trip point: fail the first charge once `used`
    /// reaches the given count, with the given kind. This is the
    /// instrumented-ticket hook fault injection and the promptness
    /// regression tests use — it simulates a cancellation or deadline
    /// arriving at an exact, reproducible moment, independent of wall
    /// clock and thread timing.
    pub fuse: Option<(u64, Interrupt)>,
}

impl QueryControl {
    /// Default poll granularity: external signals are observed at least
    /// every this many edge charges.
    pub const DEFAULT_POLL_EVERY: u64 = 64;

    /// A control with no signals attached (the plain-budget behavior).
    pub fn new() -> Self {
        QueryControl::default()
    }

    /// Attaches a shared cancellation token.
    pub fn cancelled_by(mut self, token: std::sync::Arc<CancelToken>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets an absolute deadline.
    pub fn deadline_at(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `timeout` from now.
    pub fn timeout(self, timeout: std::time::Duration) -> Self {
        self.deadline_at(std::time::Instant::now() + timeout)
    }

    /// Sets the poll granularity (see [`poll_every`](Self::poll_every)).
    pub fn poll_every(mut self, every: u64) -> Self {
        self.poll_every = every;
        self
    }

    /// Arms the deterministic fuse: trip with `kind` once `charges`
    /// charges have been spent.
    pub fn fused_after(mut self, charges: u64, kind: Interrupt) -> Self {
        self.fuse = Some((charges, kind));
        self
    }

    fn effective_poll_every(&self) -> u64 {
        if self.poll_every == 0 {
            QueryControl::DEFAULT_POLL_EVERY
        } else {
            self.poll_every
        }
    }
}

/// An interrupt-aware query ticket: a [`Budget`] fused with the
/// cancellation, deadline and fault-injection signals of a
/// [`QueryControl`].
///
/// The hot path stays one branch: `charge` compares `used` against a
/// precomputed `stop` mark — the minimum of the budget limit, the next
/// poll point and the fuse point — and only falls into the cold path
/// when the mark is hit. With no control attached the mark *is* the
/// limit, so a plain ticket costs exactly what a plain [`Budget`] does.
///
/// Trips are **sticky**: once a ticket has tripped, every further charge
/// fails with the same [`Interrupt`], so an unwinding engine cannot
/// accidentally resume.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use dynsum_cfl::{CancelToken, Interrupt, QueryControl, Ticket};
///
/// let token = Arc::new(CancelToken::new());
/// let control = QueryControl::new().cancelled_by(Arc::clone(&token)).poll_every(8);
/// let mut t = Ticket::with_control(1_000, &control);
/// assert!(t.charge().is_ok());
/// token.cancel();
/// // The trip lands within one poll window (≤ 8 further charges).
/// let tripped = (0..8).find_map(|_| t.charge().err());
/// assert_eq!(tripped, Some(Interrupt::Cancelled));
/// assert!(t.charge().is_err(), "trips are sticky");
/// ```
#[derive(Debug, Clone)]
pub struct Ticket {
    used: u64,
    limit: u64,
    /// `charge` takes the cold path when `used >= stop`; kept at
    /// `min(limit, next poll point, fuse point)`, or `0` after a trip.
    stop: u64,
    poll_every: u64,
    cancel: Option<std::sync::Arc<CancelToken>>,
    deadline: Option<std::time::Instant>,
    fuse: Option<(u64, Interrupt)>,
    tripped: Option<Interrupt>,
}

impl Ticket {
    /// A plain ticket with the given edge-traversal limit and no
    /// external signals — the drop-in replacement for
    /// [`Budget::new`].
    pub fn new(limit: u64) -> Self {
        Ticket::with_control(limit, &QueryControl::default())
    }

    /// An effectively unlimited plain ticket.
    pub fn unlimited() -> Self {
        Ticket::new(u64::MAX)
    }

    /// A ticket with the given limit observing `control`'s signals.
    pub fn with_control(limit: u64, control: &QueryControl) -> Self {
        let mut t = Ticket {
            used: 0,
            limit,
            stop: 0,
            poll_every: control.effective_poll_every(),
            cancel: control.cancel.clone(),
            deadline: control.deadline,
            fuse: control.fuse,
            tripped: None,
        };
        // Poll once up front: a token cancelled (or a deadline expired)
        // before the query starts trips on the very first charge instead
        // of running a whole poll window for nothing.
        if let Some(kind) = t.poll_signals() {
            let _ = t.trip(kind);
        } else {
            t.recompute_stop();
        }
        t
    }

    /// Charges one edge traversal.
    ///
    /// # Errors
    ///
    /// Returns the [`Interrupt`] kind once the budget is exhausted, the
    /// token is cancelled, the deadline has passed, or the fuse blows;
    /// the current query should then be answered conservatively.
    #[inline]
    pub fn charge(&mut self) -> Result<(), Interrupt> {
        if self.used >= self.stop {
            return self.charge_cold();
        }
        self.used += 1;
        Ok(())
    }

    /// The cold half of [`charge`](Self::charge): re-validate every
    /// signal, then either trip or advance the stop mark.
    #[cold]
    fn charge_cold(&mut self) -> Result<(), Interrupt> {
        if let Some(kind) = self.tripped {
            return Err(kind);
        }
        if let Some((at, kind)) = self.fuse {
            if self.used >= at {
                return self.trip(kind);
            }
        }
        if self.used >= self.limit {
            return self.trip(Interrupt::Budget);
        }
        if let Some(kind) = self.poll_signals() {
            return self.trip(kind);
        }
        self.used += 1;
        self.recompute_stop();
        Ok(())
    }

    /// Charges `n` edge traversals at once — the deterministic-reuse
    /// lump (see [`Budget::charge_n`]). The external signals are polled
    /// once per lump; the fuse trips when the lump would carry `used`
    /// past the fuse point, exactly as `n` unit charges would have
    /// tripped it partway through.
    ///
    /// # Errors
    ///
    /// As [`charge`](Self::charge); a failed lump is not deducted.
    pub fn charge_n(&mut self, n: u64) -> Result<(), Interrupt> {
        if let Some(kind) = self.tripped {
            return Err(kind);
        }
        let after = self.used.saturating_add(n);
        if let Some((at, kind)) = self.fuse {
            if after > at {
                return self.trip(kind);
            }
        }
        if after > self.limit {
            return self.trip(Interrupt::Budget);
        }
        if n > 0 {
            if let Some(kind) = self.poll_signals() {
                return self.trip(kind);
            }
        }
        self.used = after;
        self.recompute_stop();
        Ok(())
    }

    fn poll_signals(&self) -> Option<Interrupt> {
        if self
            .cancel
            .as_deref()
            .is_some_and(CancelToken::is_cancelled)
        {
            return Some(Interrupt::Cancelled);
        }
        if self
            .deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
        {
            return Some(Interrupt::Deadline);
        }
        None
    }

    fn trip(&mut self, kind: Interrupt) -> Result<(), Interrupt> {
        self.tripped = Some(kind);
        // `used >= 0` always holds, so every further charge takes the
        // cold path and re-reports the sticky trip.
        self.stop = 0;
        Err(kind)
    }

    fn recompute_stop(&mut self) {
        let mut stop = self.limit;
        if self.cancel.is_some() || self.deadline.is_some() {
            stop = stop.min(self.used.saturating_add(self.poll_every));
        }
        if let Some((at, _)) = self.fuse {
            stop = stop.min(at);
        }
        self.stop = stop;
    }

    /// Edge traversals consumed so far.
    #[inline]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The configured edge-traversal limit.
    #[inline]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// The sticky interrupt, once the ticket has tripped.
    #[inline]
    pub fn tripped(&self) -> Option<Interrupt> {
        self.tripped
    }
}

/// Runs `f` on a dedicated thread with `stack_bytes` of stack.
///
/// The recursive engines (NOREFINE / REFINEPTS, Algorithm 1) can recurse
/// once per traversed edge, so a 75,000-edge budget implies deep native
/// stacks. Benchmark binaries and stress tests wrap whole experiment runs
/// in this helper; unit-scale graphs do not need it.
///
/// # Panics
///
/// Propagates panics from `f` and panics if the OS refuses to spawn the
/// thread.
pub fn with_stack<T: Send>(stack_bytes: usize, f: impl FnOnce() -> T + Send) -> T {
    crate::sync::thread::scope(|scope| {
        crate::sync::thread::Builder::new()
            .stack_size(stack_bytes)
            .spawn_scoped(scope, f)
            .expect("failed to spawn analysis thread")
            .join()
            .expect("analysis thread panicked")
    })
}

/// Default stack size for [`with_stack`] when running paper-scale budgets
/// (256 MiB comfortably covers 75,000 nested frames).
pub const ANALYSIS_STACK_BYTES: usize = 256 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustion_is_sticky() {
        let mut b = Budget::new(1);
        assert!(b.charge().is_ok());
        assert!(b.charge().is_err());
        assert!(b.charge().is_err());
        assert_eq!(b.used(), 1);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn lump_charges_match_unit_charges() {
        // charge_n(n) succeeds exactly when n charge() calls would.
        let mut lump = Budget::new(5);
        let mut unit = Budget::new(5);
        assert!(lump.charge_n(3).is_ok());
        for _ in 0..3 {
            unit.charge().unwrap();
        }
        assert_eq!(lump.used(), unit.used());
        assert!(lump.charge_n(3).is_err());
        assert_eq!(lump.used(), 3, "a failed lump is not deducted");
        assert!(lump.charge_n(2).is_ok());
        assert!(lump.charge_n(0).is_ok(), "empty lumps always fit");
        assert!(lump.charge().is_err());
    }

    #[test]
    fn lump_charges_never_overflow_unlimited() {
        let mut b = Budget::unlimited();
        b.charge_n(u64::MAX - 1).unwrap();
        // Saturating accounting: an unlimited budget keeps accepting.
        assert!(b.charge_n(u64::MAX).is_ok());
        assert!(b.charge().is_err(), "saturated exactly at the limit");
    }

    #[test]
    fn default_matches_paper() {
        assert_eq!(Budget::default().limit(), 75_000);
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let mut b = Budget::unlimited();
        for _ in 0..1_000_000 {
            b.charge().unwrap();
        }
        assert_eq!(b.used(), 1_000_000);
    }

    #[test]
    fn plain_ticket_matches_budget_exactly() {
        // A ticket without control signals must reproduce Budget's
        // accounting bit for bit: same trip point, same sticky error,
        // same lump semantics.
        let mut b = Budget::new(5);
        let mut t = Ticket::new(5);
        for _ in 0..5 {
            assert_eq!(b.charge().is_ok(), t.charge().is_ok());
        }
        assert!(b.charge().is_err());
        assert_eq!(t.charge(), Err(Interrupt::Budget));
        assert_eq!(t.used(), b.used());
        assert_eq!(t.tripped(), Some(Interrupt::Budget));

        let mut t = Ticket::new(5);
        assert!(t.charge_n(3).is_ok());
        assert_eq!(t.charge_n(3), Err(Interrupt::Budget));
        assert_eq!(t.used(), 3, "a failed lump is not deducted");
    }

    #[test]
    fn unlimited_ticket_never_trips() {
        let mut t = Ticket::unlimited();
        for _ in 0..100_000 {
            t.charge().unwrap();
        }
        t.charge_n(u64::MAX).unwrap();
        assert!(t.tripped().is_none());
    }

    #[test]
    fn cancellation_lands_within_one_poll_window() {
        use std::sync::Arc;
        let token = Arc::new(CancelToken::new());
        let control = QueryControl::new()
            .cancelled_by(Arc::clone(&token))
            .poll_every(16);
        let mut t = Ticket::with_control(1_000_000, &control);
        for _ in 0..100 {
            t.charge().unwrap();
        }
        token.cancel();
        let mut extra = 0u64;
        let kind = loop {
            match t.charge() {
                Ok(()) => extra += 1,
                Err(k) => break k,
            }
        };
        assert_eq!(kind, Interrupt::Cancelled);
        assert!(extra <= 16, "promptness: {extra} charges after cancel");
        assert_eq!(t.charge(), Err(Interrupt::Cancelled), "sticky");
        assert_eq!(t.charge_n(1), Err(Interrupt::Cancelled), "sticky lumps");
    }

    #[test]
    fn pre_cancelled_token_trips_within_the_first_window() {
        use std::sync::Arc;
        let token = Arc::new(CancelToken::new());
        token.cancel();
        let control = QueryControl::new()
            .cancelled_by(token)
            .poll_every(QueryControl::DEFAULT_POLL_EVERY);
        let mut t = Ticket::with_control(u64::MAX, &control);
        let mut spent = 0u64;
        while t.charge().is_ok() {
            spent += 1;
        }
        assert!(spent <= QueryControl::DEFAULT_POLL_EVERY);
        assert_eq!(t.tripped(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn expired_deadline_trips_as_deadline() {
        let past = std::time::Instant::now();
        let control = QueryControl::new().deadline_at(past).poll_every(4);
        let mut t = Ticket::with_control(u64::MAX, &control);
        let mut spent = 0u64;
        while t.charge().is_ok() {
            spent += 1;
        }
        assert!(spent <= 4);
        assert_eq!(t.tripped(), Some(Interrupt::Deadline));
    }

    #[test]
    fn fuse_trips_at_the_exact_charge() {
        let control = QueryControl::new().fused_after(10, Interrupt::Cancelled);
        let mut t = Ticket::with_control(1_000, &control);
        for _ in 0..10 {
            t.charge().unwrap();
        }
        assert_eq!(t.charge(), Err(Interrupt::Cancelled));
        assert_eq!(t.used(), 10, "the tripping charge is not deducted");

        // Lump charges observe the fuse exactly like unit charges: the
        // lump that would carry `used` past the fuse point trips.
        let mut t = Ticket::with_control(1_000, &control);
        t.charge_n(10).unwrap();
        assert_eq!(t.charge_n(1), Err(Interrupt::Cancelled));
        assert_eq!(t.used(), 10);
    }

    #[test]
    fn fuse_kind_wins_over_budget_at_the_same_point() {
        // A deadline fuse at the budget limit reports Deadline, so an
        // injected trip is attributed to the injection, not the budget.
        let control = QueryControl::new().fused_after(3, Interrupt::Deadline);
        let mut t = Ticket::with_control(3, &control);
        for _ in 0..3 {
            t.charge().unwrap();
        }
        assert_eq!(t.charge(), Err(Interrupt::Deadline));
    }

    #[test]
    fn zero_poll_every_defaults_sanely() {
        let control = QueryControl::new().poll_every(0);
        assert_eq!(
            control.effective_poll_every(),
            QueryControl::DEFAULT_POLL_EVERY
        );
        let mut t = Ticket::with_control(100, &control);
        for _ in 0..100 {
            t.charge().unwrap();
        }
        assert_eq!(t.charge(), Err(Interrupt::Budget));
    }

    #[test]
    fn with_stack_runs_and_returns() {
        let out = with_stack(4 * 1024 * 1024, || {
            // Deliberately recurse deeper than a tiny stack would allow.
            fn go(n: u32) -> u32 {
                if n == 0 {
                    0
                } else {
                    1 + go(n - 1)
                }
            }
            go(10_000)
        });
        assert_eq!(out, 10_000);
    }
}
