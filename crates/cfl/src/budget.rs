//! Traversal budgets.
//!
//! Demand-driven CFL-reachability analyses bound the work spent on a
//! single query: once a pre-set number of PAG edge traversals is
//! exceeded, the query is answered conservatively (§5.2 fixes the limit
//! at 75,000 edges for all engines). A [`Budget`] counts edge traversals
//! and reports exhaustion as a hard error that unwinds the query.

/// Error raised when a query exhausts its traversal budget (or one of the
/// auxiliary depth caps that guard against runaway recursion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded;

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "traversal budget exceeded")
    }
}

impl std::error::Error for BudgetExceeded {}

/// A per-query traversal budget: one unit is one PAG edge traversal,
/// matching the unit the paper uses (§5.2).
///
/// # Examples
///
/// ```
/// use dynsum_cfl::Budget;
///
/// let mut b = Budget::new(2);
/// assert!(b.charge().is_ok());
/// assert!(b.charge().is_ok());
/// assert!(b.charge().is_err());
/// assert_eq!(b.used(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    limit: u64,
    used: u64,
}

impl Budget {
    /// The paper's default per-query edge-traversal limit (§5.2).
    pub const DEFAULT_LIMIT: u64 = 75_000;

    /// Creates a budget with the given edge-traversal limit.
    pub fn new(limit: u64) -> Self {
        Budget { limit, used: 0 }
    }

    /// Creates an effectively unlimited budget.
    pub fn unlimited() -> Self {
        Budget {
            limit: u64::MAX,
            used: 0,
        }
    }

    /// Charges one edge traversal.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] once the limit is reached; the current
    /// query should then be answered conservatively.
    #[inline]
    pub fn charge(&mut self) -> Result<(), BudgetExceeded> {
        if self.used >= self.limit {
            return Err(BudgetExceeded);
        }
        self.used += 1;
        Ok(())
    }

    /// Charges `n` edge traversals at once.
    ///
    /// This is the deterministic-accounting primitive behind summary
    /// reuse: when a cached summary is served instead of being recomputed,
    /// the engine charges the summary's recorded cold-computation cost in
    /// one lump, so a query's budget outcome is identical whether the
    /// summary was reused or recomputed — and therefore independent of
    /// cache state, query order, and thread count.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] when the lump does not fit the remaining
    /// budget, exactly as `n` individual [`charge`](Self::charge) calls
    /// would have failed partway through. Like `charge`, the failed lump
    /// is not deducted.
    #[inline]
    pub fn charge_n(&mut self, n: u64) -> Result<(), BudgetExceeded> {
        // Saturating: `unlimited()` uses u64::MAX as the limit and must
        // keep accepting charges without overflowing `used`.
        let after = self.used.saturating_add(n);
        if after > self.limit {
            return Err(BudgetExceeded);
        }
        self.used = after;
        Ok(())
    }

    /// Edge traversals consumed so far.
    #[inline]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The configured limit.
    #[inline]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Remaining traversals before exhaustion.
    #[inline]
    pub fn remaining(&self) -> u64 {
        self.limit - self.used
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::new(Budget::DEFAULT_LIMIT)
    }
}

/// Runs `f` on a dedicated thread with `stack_bytes` of stack.
///
/// The recursive engines (NOREFINE / REFINEPTS, Algorithm 1) can recurse
/// once per traversed edge, so a 75,000-edge budget implies deep native
/// stacks. Benchmark binaries and stress tests wrap whole experiment runs
/// in this helper; unit-scale graphs do not need it.
///
/// # Panics
///
/// Propagates panics from `f` and panics if the OS refuses to spawn the
/// thread.
pub fn with_stack<T: Send>(stack_bytes: usize, f: impl FnOnce() -> T + Send) -> T {
    std::thread::scope(|scope| {
        std::thread::Builder::new()
            .stack_size(stack_bytes)
            .spawn_scoped(scope, f)
            .expect("failed to spawn analysis thread")
            .join()
            .expect("analysis thread panicked")
    })
}

/// Default stack size for [`with_stack`] when running paper-scale budgets
/// (256 MiB comfortably covers 75,000 nested frames).
pub const ANALYSIS_STACK_BYTES: usize = 256 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustion_is_sticky() {
        let mut b = Budget::new(1);
        assert!(b.charge().is_ok());
        assert!(b.charge().is_err());
        assert!(b.charge().is_err());
        assert_eq!(b.used(), 1);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn lump_charges_match_unit_charges() {
        // charge_n(n) succeeds exactly when n charge() calls would.
        let mut lump = Budget::new(5);
        let mut unit = Budget::new(5);
        assert!(lump.charge_n(3).is_ok());
        for _ in 0..3 {
            unit.charge().unwrap();
        }
        assert_eq!(lump.used(), unit.used());
        assert!(lump.charge_n(3).is_err());
        assert_eq!(lump.used(), 3, "a failed lump is not deducted");
        assert!(lump.charge_n(2).is_ok());
        assert!(lump.charge_n(0).is_ok(), "empty lumps always fit");
        assert!(lump.charge().is_err());
    }

    #[test]
    fn lump_charges_never_overflow_unlimited() {
        let mut b = Budget::unlimited();
        b.charge_n(u64::MAX - 1).unwrap();
        // Saturating accounting: an unlimited budget keeps accepting.
        assert!(b.charge_n(u64::MAX).is_ok());
        assert!(b.charge().is_err(), "saturated exactly at the limit");
    }

    #[test]
    fn default_matches_paper() {
        assert_eq!(Budget::default().limit(), 75_000);
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let mut b = Budget::unlimited();
        for _ in 0..1_000_000 {
            b.charge().unwrap();
        }
        assert_eq!(b.used(), 1_000_000);
    }

    #[test]
    fn with_stack_runs_and_returns() {
        let out = with_stack(4 * 1024 * 1024, || {
            // Deliberately recurse deeper than a tiny stack would allow.
            fn go(n: u32) -> u32 {
                if n == 0 {
                    0
                } else {
                    1 + go(n - 1)
                }
            }
            go(10_000)
        });
        assert_eq!(out, 10_000);
    }
}
