//! A fast, non-cryptographic hasher for the analysis hot paths.
//!
//! Every inner loop of the demand-driven engines deduplicates
//! configurations through a hash table: the worklist `seen` sets, the
//! PPTA `visited` set, the [`StackPool`](crate::StackPool) interning
//! table, and the summary cache. `std`'s default SipHash-1-3 is
//! DoS-resistant but costs tens of cycles per lookup on the 8–16 byte
//! keys these tables use; the engines hash *trusted, internally
//! generated* ids, so that resistance buys nothing here.
//!
//! This module vendors the FxHash algorithm (the Firefox / rustc hasher:
//! per-word `rotate ^ mulitply` mixing) behind the std `Hasher` trait —
//! the workspace is offline, so the `rustc-hash` crate is reimplemented
//! rather than depended upon. Collections keyed by untrusted external
//! input should keep the std default.
//!
//! ```
//! use dynsum_cfl::{FxHashMap, FxHashSet};
//!
//! let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
//! assert!(seen.insert((1, 2)));
//! assert!(!seen.insert((1, 2)));
//! let mut table: FxHashMap<u64, &str> = FxHashMap::default();
//! table.insert(7, "seven");
//! assert_eq!(table.get(&7), Some(&"seven"));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiplicative constant (π in fixed point, as in rustc-hash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash state: one 64-bit word, mixed per written word.
///
/// Quality is adequate for the dense integer ids this workspace hashes;
/// it is **not** collision-resistant against adversarial keys.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the byte stream; the tail is padded into
        // one final word. Keys in this workspace are fixed-size tuples of
        // u32/u64, which take the sized fast paths below instead.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A **format-stable** 64-bit hasher (FNV-1a) for persistent artifacts.
///
/// [`FxHasher`] is free to evolve — it only ever feeds in-process hash
/// tables. `StableHasher` is the opposite contract: its output is written
/// into on-disk formats (the snapshot header's PAG fingerprint, config
/// digest and payload checksum — see `dynsum-core`'s `snapshot` module),
/// so the algorithm below is **frozen**. Changing it silently invalidates
/// every existing snapshot (they would all degrade to cold starts); bump
/// the snapshot format version instead of editing this hasher.
///
/// Unlike the std `Hasher` defaults, every sized `write_*` method is
/// overridden to feed **little-endian** bytes, so the digest is identical
/// across platforms of either endianness.
///
/// ```
/// use std::hash::Hasher;
/// use dynsum_cfl::StableHasher;
///
/// let mut a = StableHasher::default();
/// a.write_u32(7);
/// a.write_u64(9);
/// let mut b = StableHasher::default();
/// b.write_u32(7);
/// b.write_u64(9);
/// assert_eq!(a.finish(), b.finish());
/// // The empty-input digest is the FNV-1a offset basis — pinned, since
/// // the value is part of the snapshot format.
/// assert_eq!(StableHasher::default().finish(), 0xcbf2_9ce4_8422_2325);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StableHasher {
    hash: u64,
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher { hash: FNV_OFFSET }
    }
}

impl StableHasher {
    /// Creates a hasher in the initial (offset-basis) state.
    pub fn new() -> Self {
        StableHasher::default()
    }
}

impl Hasher for StableHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        // usize width varies by platform; widen so 32- and 64-bit hosts
        // agree on the digest.
        self.write(&(i as u64).to_le_bytes());
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (deterministic: no per-map seeding).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        let key = (3u32, 7u32, 1u8, 0u32);
        assert_eq!(hash_of(&key), hash_of(&key));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn stable_hasher_is_pinned_forever() {
        // These values are baked into the persistent snapshot format
        // (PAG fingerprint / config digest / payload checksum). If this
        // test fails, the hasher changed: revert it, or bump the
        // snapshot format version and re-pin.
        let mut h = StableHasher::new();
        h.write(b"dynsum");
        assert_eq!(h.finish(), 0xaae1_f28a_1c1b_412b);
        let mut h = StableHasher::default();
        h.write_u32(0xdead_beef);
        h.write_u64(0x0123_4567_89ab_cdef);
        h.write_u8(1);
        h.write_usize(42);
        assert_eq!(h.finish(), 0x350d_672b_a4ed_cff4);
        // Sized writes are little-endian byte writes, so the digest is
        // endianness-independent.
        let mut a = StableHasher::new();
        a.write_u16(0x1234);
        let mut b = StableHasher::new();
        b.write(&[0x34, 0x12]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_ids() {
        // Dense sequential ids (the workspace's key shape) must spread.
        let hashes: std::collections::HashSet<u64> =
            (0u32..1024).map(|i| hash_of(&(i, i + 1))).collect();
        assert_eq!(hashes.len(), 1024, "nearby tuples must not collide");
    }

    #[test]
    fn unsized_write_matches_padding_rules() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let long = h.finish();
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let short = h.finish();
        assert_ne!(long, short);
    }

    #[test]
    fn collections_work() {
        let mut set: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            set.insert(i);
        }
        assert_eq!(set.len(), 100);
        let mut map: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        map.insert((4, 2), 42);
        assert_eq!(map[&(4, 2)], 42);
    }
}
