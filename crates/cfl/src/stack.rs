//! Hash-consed persistent stacks.
//!
//! The demand-driven analyses carry two stacks through every traversal
//! step: the **field stack** (unmatched `load(f)` labels, Algorithm 3) and
//! the **context stack** (unmatched call-site parentheses, Algorithm 4).
//! Both are immutable and shared across millions of worklist entries, and
//! both serve as summary-cache key components, so they are interned: a
//! stack is a 4-byte [`StackId`], push/pop are O(1) hash-table operations,
//! and equality is id equality.

use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::Arc;

use crate::hash::FxHashMap;

/// An interned stack handle, branded by element type so field stacks and
/// context stacks cannot be mixed up.
///
/// Ids are only meaningful relative to the [`StackPool`] that produced
/// them. The empty stack is [`StackId::EMPTY`] in every pool.
pub struct StackId<E> {
    raw: u32,
    _marker: PhantomData<E>,
}

impl<E> StackId<E> {
    /// The empty stack (valid in every pool).
    pub const EMPTY: StackId<E> = StackId {
        raw: 0,
        _marker: PhantomData,
    };

    /// Raw interned index; 0 is the empty stack.
    #[inline]
    pub const fn as_raw(self) -> u32 {
        self.raw
    }

    /// Reconstructs a handle from a raw index (must come from the same
    /// pool).
    #[inline]
    pub const fn from_raw(raw: u32) -> Self {
        StackId {
            raw,
            _marker: PhantomData,
        }
    }

    /// `true` for the empty stack.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.raw == 0
    }
}

// Manual impls: derives would bound `E`, which is only a phantom brand.
impl<E> Copy for StackId<E> {}
impl<E> Clone for StackId<E> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E> PartialEq for StackId<E> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<E> Eq for StackId<E> {}
impl<E> PartialOrd for StackId<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for StackId<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.raw.cmp(&other.raw)
    }
}
impl<E> Hash for StackId<E> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}
impl<E> std::fmt::Debug for StackId<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stack{}", self.raw)
    }
}

/// The flat storage of a pool (or of a pool's frozen prefix): the node
/// arena plus the interning table. Table keys are `(element, parent raw
/// id)` with **global** raw ids, so a frozen core and a private
/// extension compose without rewriting either.
#[derive(Debug, Clone)]
struct PoolCore<E> {
    /// `nodes[i]` backs `StackId(first + i)` where `first` is 1 for a
    /// base core and `base_len + 1` for an extension.
    nodes: Vec<(E, StackId<E>, u32)>,
    /// Interning table; push is one probe of this map. Keyed by dense
    /// in-tree ids, so the fast non-SipHash hasher is safe here.
    table: FxHashMap<(E, u32), StackId<E>>,
}

// Manual impl: a derive would bound `E: Default`, which element types
// need not satisfy.
impl<E> Default for PoolCore<E> {
    fn default() -> Self {
        PoolCore {
            nodes: Vec::new(),
            table: FxHashMap::default(),
        }
    }
}

/// Arena of hash-consed stacks over element type `E`.
///
/// A pool is a **frozen shared prefix** (an `Arc` installed by
/// [`freeze`](Self::freeze), shared O(1) between clones) plus a private
/// copy-on-extend tail. Cloning a freshly frozen pool is a reference
/// bump, not a deep copy — that is how a
/// [`Session`](../dynsum_core/struct.Session.html) hands every batch
/// worker an aligned field-stack pool without re-copying the interning
/// table each batch. Ids stay globally aligned across a pool and all
/// clones taken after the same freeze: pushes that re-derive a frozen
/// stack return its frozen id, and fresh pushes extend privately past
/// the frozen prefix exactly as they would have extended the original.
///
/// # Examples
///
/// ```
/// use dynsum_cfl::{StackId, StackPool};
///
/// let mut pool: StackPool<u32> = StackPool::new();
/// let s = pool.push(StackId::EMPTY, 7);
/// let t = pool.push(s, 9);
/// assert_eq!(pool.peek(t), Some(9));
/// let (top, rest) = pool.pop(t).unwrap();
/// assert_eq!(top, 9);
/// assert_eq!(rest, s);
/// // Hash-consing: the same sequence yields the same id.
/// let s2 = pool.push(StackId::EMPTY, 7);
/// assert_eq!(s, s2);
/// ```
#[derive(Debug, Clone)]
pub struct StackPool<E> {
    /// Frozen prefix (ids `1..=base_len`), shared between clones;
    /// `None` until the first [`freeze`](Self::freeze).
    base: Option<Arc<PoolCore<E>>>,
    /// `base.nodes.len()`, cached flat: `node()` runs on every stack
    /// pop/peek/depth of the inner analysis loops, and reading the
    /// length through the `Arc` would put a pointer chase on that path.
    base_len: u32,
    /// Private extension; `ext.nodes[i]` backs `StackId(base_len+i+1)`.
    ext: PoolCore<E>,
}

impl<E: Copy + Eq + Hash> StackPool<E> {
    /// Creates a pool containing only the empty stack.
    pub fn new() -> Self {
        StackPool {
            base: None,
            base_len: 0,
            ext: PoolCore::default(),
        }
    }

    /// Number of distinct non-empty stacks interned so far.
    pub fn len(&self) -> usize {
        self.base_len as usize + self.ext.nodes.len()
    }

    /// `true` when no non-empty stack has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn node(&self, s: StackId<E>) -> Option<&(E, StackId<E>, u32)> {
        if s.raw == 0 {
            return None;
        }
        let i = (s.raw - 1) as usize;
        let base_len = self.base_len as usize;
        if i < base_len {
            Some(&self.base.as_ref().expect("base_len > 0").nodes[i])
        } else {
            Some(&self.ext.nodes[i - base_len])
        }
    }

    /// Pushes `elem`, returning the interned result.
    pub fn push(&mut self, s: StackId<E>, elem: E) -> StackId<E> {
        let key = (elem, s.raw);
        if self.base_len > 0 {
            if let Some(&id) = self.base.as_ref().expect("base_len > 0").table.get(&key) {
                return id;
            }
        }
        if let Some(&id) = self.ext.table.get(&key) {
            return id;
        }
        let depth = self.depth(s) as u32 + 1;
        let id = StackId::from_raw(self.len() as u32 + 1);
        self.ext.nodes.push((elem, s, depth));
        self.ext.table.insert(key, id);
        id
    }

    /// Freezes the pool's current contents into the shared prefix, so
    /// that [`Clone`] is an O(1) reference bump instead of a deep copy
    /// until the next private push. Interned ids are unchanged. A no-op
    /// when nothing was pushed since the last freeze.
    ///
    /// When this pool holds the only reference to its current prefix
    /// (the steady state of a session pool whose per-batch clones have
    /// been dropped), the rebuild moves the existing storage and costs
    /// only the private tail; otherwise the prefix is copied once.
    pub fn freeze(&mut self) {
        if self.ext.nodes.is_empty() {
            return;
        }
        let mut core = match self.base.take() {
            Some(arc) => Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone()),
            None => PoolCore::default(),
        };
        core.nodes.append(&mut self.ext.nodes);
        core.table.extend(self.ext.table.drain());
        self.base_len = core.nodes.len() as u32;
        self.base = Some(Arc::new(core));
    }

    /// Length of the frozen prefix this pool shares with `other`: ids
    /// `1..=shared_base_len` intern the **same stacks** in both pools
    /// (they hold the same `Arc`). 0 when the pools share nothing —
    /// callers must then translate every id. The cheap identity test
    /// behind [`Session::absorb`](../dynsum_core/struct.Session.html)'s
    /// fast path.
    pub fn shared_base_len(&self, other: &StackPool<E>) -> usize {
        match (&self.base, &other.base) {
            (Some(a), Some(b)) if Arc::ptr_eq(a, b) => a.nodes.len(),
            _ => 0,
        }
    }

    /// Exports every interned (non-empty) stack in id order `1..=len()`
    /// as `(top element, parent id)` pairs — the pool's persistent wire
    /// form, re-importable with [`import`](Self::import).
    ///
    /// A stack's parent is always interned before the stack itself, so
    /// every yielded parent id is strictly smaller than the id of the
    /// pair that carries it (`0`, the empty stack, is always valid).
    /// That ordering is what makes the flat pair list self-contained:
    /// replaying it through [`push`](Self::push) rebuilds the exact same
    /// id assignment. Both the frozen prefix and the private extension
    /// are exported; clone-sharing is a memory optimization, not part of
    /// the pool's logical content.
    ///
    /// # Examples
    ///
    /// ```
    /// use dynsum_cfl::{StackId, StackPool};
    ///
    /// let mut pool: StackPool<u8> = StackPool::new();
    /// let s = pool.from_slice(&[7, 9]);
    /// pool.freeze();
    /// let t = pool.push(s, 11); // extends past the frozen prefix
    ///
    /// let pairs: Vec<(u8, StackId<u8>)> = pool.export().collect();
    /// let rebuilt = StackPool::import(pairs).expect("valid export");
    /// assert_eq!(rebuilt.len(), pool.len());
    /// assert_eq!(rebuilt.to_vec(t), vec![7, 9, 11]); // ids align
    /// ```
    pub fn export(&self) -> impl Iterator<Item = (E, StackId<E>)> + '_ {
        let frozen = self.base.as_deref().map_or(&[][..], |c| c.nodes.as_slice());
        frozen
            .iter()
            .chain(self.ext.nodes.iter())
            .map(|&(elem, parent, _)| (elem, parent))
    }

    /// Rebuilds a pool from pairs produced by [`export`](Self::export),
    /// assigning ids `1..=n` in order. Returns `None` when the pairs are
    /// not a valid export — a parent id at or beyond the id being defined
    /// (forward/self reference), or a duplicate `(element, parent)` pair
    /// (which would collapse under hash-consing and shift every later
    /// id). Untrusted inputs (snapshot files) rely on this validation to
    /// fail loudly instead of silently mis-aligning ids.
    ///
    /// The rebuilt pool answers every operation identically to the
    /// exported one, under the same ids. It is returned unfrozen; call
    /// [`freeze`](Self::freeze) if cheap clones are needed.
    pub fn import<I>(pairs: I) -> Option<StackPool<E>>
    where
        I: IntoIterator<Item = (E, StackId<E>)>,
    {
        let mut pool = StackPool::new();
        for (i, (elem, parent)) in pairs.into_iter().enumerate() {
            let id = u32::try_from(i).ok()?.checked_add(1)?;
            if parent.as_raw() >= id {
                return None;
            }
            if pool.push(parent, elem).as_raw() != id {
                return None;
            }
        }
        Some(pool)
    }

    /// Pops the top element, returning it with the remaining stack;
    /// `None` on the empty stack.
    #[inline]
    pub fn pop(&self, s: StackId<E>) -> Option<(E, StackId<E>)> {
        self.node(s).map(|&(e, parent, _)| (e, parent))
    }

    /// The top element, if any.
    #[inline]
    pub fn peek(&self, s: StackId<E>) -> Option<E> {
        self.node(s).map(|&(e, _, _)| e)
    }

    /// Number of elements in the stack.
    #[inline]
    pub fn depth(&self, s: StackId<E>) -> usize {
        self.node(s).map_or(0, |&(_, _, d)| d as usize)
    }

    /// Elements bottom-to-top (push order).
    pub fn to_vec(&self, s: StackId<E>) -> Vec<E> {
        let mut out = Vec::with_capacity(self.depth(s));
        let mut cur = s;
        while let Some((e, parent)) = self.pop(cur) {
            out.push(e);
            cur = parent;
        }
        out.reverse();
        out
    }

    /// Forgets every interned stack (the empty stack remains valid),
    /// keeping the private backing allocations for reuse. Any frozen
    /// shared prefix is dropped too — after `clear` the pool interns
    /// exactly like a fresh one.
    ///
    /// Outstanding non-empty [`StackId`]s are invalidated. Engines use
    /// this to make pools **per-query scratch**: clearing at query start
    /// makes every interned id a deterministic function of that query
    /// alone, independent of what was interned by earlier queries — the
    /// property that lets parallel query batches return results
    /// byte-identical to sequential execution.
    pub fn clear(&mut self) {
        self.base = None;
        self.base_len = 0;
        self.ext.nodes.clear();
        self.ext.table.clear();
    }

    /// Interns a stack from elements given bottom-to-top.
    pub fn from_slice(&mut self, elems: &[E]) -> StackId<E> {
        let mut s = StackId::EMPTY;
        for &e in elems {
            s = self.push(s, e);
        }
        s
    }

    /// `true` when `prefix` (read top-down) matches the topmost
    /// `depth(prefix)` elements of `s`. Used by STASUM when applying a
    /// relative summary to a concrete stack.
    pub fn is_top_prefix(&self, s: StackId<E>, prefix: &[E]) -> bool {
        let mut cur = s;
        for &want in prefix {
            match self.pop(cur) {
                Some((e, parent)) if e == want => cur = parent,
                _ => return false,
            }
        }
        true
    }

    /// Removes the topmost `n` elements; `None` if the stack is shorter.
    pub fn pop_n(&self, s: StackId<E>, n: usize) -> Option<StackId<E>> {
        let mut cur = s;
        for _ in 0..n {
            cur = self.pop(cur)?.1;
        }
        Some(cur)
    }
}

impl<E: Copy + Eq + Hash + Ord> StackPool<E> {
    /// Content-based total order on two stacks of this pool: by depth,
    /// then elementwise from the top. Unlike comparing raw [`StackId`]s
    /// (which reflect interning history), the result depends only on the
    /// stacks' contents — engines sort summary boundaries with this so
    /// traversal order, and with it the partial result of an over-budget
    /// query, is identical in every pool.
    pub fn cmp_stacks(&self, a: StackId<E>, b: StackId<E>) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if a == b {
            // Hash-consing: equal ids ⟺ equal contents.
            return Ordering::Equal;
        }
        let (da, db) = (self.depth(a), self.depth(b));
        if da != db {
            return da.cmp(&db);
        }
        let (mut x, mut y) = (a, b);
        while x != y {
            let (ex, px) = self.pop(x).expect("equal depth, not exhausted");
            let (ey, py) = self.pop(y).expect("equal depth, not exhausted");
            match ex.cmp(&ey) {
                Ordering::Equal => {
                    x = px;
                    y = py;
                }
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl<E: Copy + Eq + Hash> Default for StackPool<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stack_properties() {
        let pool: StackPool<u8> = StackPool::new();
        assert!(StackId::<u8>::EMPTY.is_empty());
        assert_eq!(pool.depth(StackId::EMPTY), 0);
        assert_eq!(pool.peek(StackId::EMPTY), None);
        assert_eq!(pool.pop(StackId::EMPTY), None);
        assert!(pool.to_vec(StackId::EMPTY).is_empty());
    }

    #[test]
    fn push_pop_round_trip() {
        let mut pool = StackPool::new();
        let s1 = pool.push(StackId::EMPTY, 'a');
        let s2 = pool.push(s1, 'b');
        assert_eq!(pool.depth(s2), 2);
        assert_eq!(pool.peek(s2), Some('b'));
        assert_eq!(pool.pop(s2), Some(('b', s1)));
        assert_eq!(pool.to_vec(s2), vec!['a', 'b']);
    }

    #[test]
    fn hash_consing_dedups() {
        let mut pool = StackPool::new();
        let a = pool.from_slice(&[1, 2, 3]);
        let b = pool.from_slice(&[1, 2, 3]);
        let c = pool.from_slice(&[1, 2]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(pool.len(), 3); // [1], [1,2], [1,2,3]
    }

    #[test]
    fn top_prefix_checks_topdown() {
        let mut pool = StackPool::new();
        let s = pool.from_slice(&[1, 2, 3]); // top = 3
        assert!(pool.is_top_prefix(s, &[]));
        assert!(pool.is_top_prefix(s, &[3]));
        assert!(pool.is_top_prefix(s, &[3, 2]));
        assert!(pool.is_top_prefix(s, &[3, 2, 1]));
        assert!(!pool.is_top_prefix(s, &[2]));
        assert!(!pool.is_top_prefix(s, &[3, 2, 1, 0]));
    }

    #[test]
    fn content_order_ignores_interning_history() {
        use std::cmp::Ordering;
        // Pool 1 interns [2,9] before [1,3]; pool 2 the other way round.
        let mut p1 = StackPool::new();
        let hi1 = p1.from_slice(&[2, 9]);
        let lo1 = p1.from_slice(&[1, 3]);
        let mut p2 = StackPool::new();
        let lo2 = p2.from_slice(&[1, 3]);
        let hi2 = p2.from_slice(&[2, 9]);
        // Raw ids disagree across pools; content order does not.
        assert!(hi1.as_raw() < lo1.as_raw());
        assert!(lo2.as_raw() < hi2.as_raw());
        assert_eq!(p1.cmp_stacks(lo1, hi1), Ordering::Less);
        assert_eq!(p2.cmp_stacks(lo2, hi2), Ordering::Less);
        // Depth dominates; equal ids are equal; top element decides.
        let short = p1.from_slice(&[9]);
        assert_eq!(p1.cmp_stacks(short, hi1), Ordering::Less);
        assert_eq!(p1.cmp_stacks(hi1, hi1), Ordering::Equal);
        let a = p1.from_slice(&[5, 1]);
        let b = p1.from_slice(&[4, 2]);
        assert_eq!(p1.cmp_stacks(a, b), Ordering::Less, "top 1 < top 2");
    }

    #[test]
    fn clear_resets_interning_deterministically() {
        let mut pool = StackPool::new();
        let a = pool.from_slice(&[7, 8, 9]);
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.depth(StackId::EMPTY), 0);
        // Interning the same sequence after clear yields the same ids as
        // a fresh pool would.
        let b = pool.from_slice(&[7, 8, 9]);
        assert_eq!(a, b);
        let mut fresh = StackPool::new();
        assert_eq!(fresh.from_slice(&[7, 8, 9]), b);
    }

    #[test]
    fn freeze_preserves_ids_and_shares_storage() {
        let mut pool = StackPool::new();
        let a = pool.from_slice(&[1, 2, 3]);
        let b = pool.from_slice(&[4]);
        pool.freeze();
        // Frozen contents answer identically.
        assert_eq!(pool.to_vec(a), vec![1, 2, 3]);
        assert_eq!(pool.to_vec(b), vec![4]);
        assert_eq!(pool.len(), 4);
        // Re-pushing a frozen stack returns its frozen id.
        assert_eq!(pool.from_slice(&[1, 2, 3]), a);
        // A clone taken after freeze shares the whole prefix.
        let snap = pool.clone();
        assert_eq!(pool.shared_base_len(&snap), 4);
        assert_eq!(snap.to_vec(a), vec![1, 2, 3]);
        // Freezing again with no new pushes is a no-op (still shared).
        pool.freeze();
        assert_eq!(pool.shared_base_len(&snap), 4);
    }

    #[test]
    fn snapshot_extends_like_a_deep_clone() {
        // The alignment invariant absorb relies on: a post-freeze clone
        // pushed further interns exactly the ids a deep copy would.
        let mut pool = StackPool::new();
        pool.from_slice(&[7, 8]);
        pool.freeze();
        let mut snap = pool.clone();
        let mut deep = StackPool::new();
        deep.from_slice(&[7, 8]);
        let s1 = snap.from_slice(&[7, 9]);
        let s2 = deep.from_slice(&[7, 9]);
        assert_eq!(s1, s2);
        assert_eq!(snap.len(), deep.len());
        // Private extension does not leak back into the original.
        assert_eq!(pool.len(), 2);
        // Ids at or below the shared prefix denote the same stacks.
        let shared = pool.shared_base_len(&snap);
        assert_eq!(shared, 2);
        for raw in 1..=shared as u32 {
            let id = StackId::from_raw(raw);
            assert_eq!(pool.to_vec(id), snap.to_vec(id));
        }
    }

    #[test]
    fn unrelated_pools_share_nothing() {
        let mut a = StackPool::new();
        a.from_slice(&[1]);
        a.freeze();
        let mut b = StackPool::new();
        b.from_slice(&[1]);
        b.freeze();
        assert_eq!(a.shared_base_len(&b), 0, "distinct Arcs never alias");
        let unfrozen: StackPool<u16> = StackPool::new();
        assert_eq!(unfrozen.shared_base_len(&unfrozen.clone()), 0);
    }

    #[test]
    fn clear_drops_the_frozen_prefix() {
        let mut pool = StackPool::new();
        let a = pool.from_slice(&[5, 6]);
        pool.freeze();
        let snap = pool.clone();
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.shared_base_len(&snap), 0);
        // Interning after clear matches a fresh pool again.
        assert_eq!(pool.from_slice(&[5, 6]), a);
    }

    #[test]
    fn freeze_mid_stream_keeps_push_pop_consistent() {
        let mut pool = StackPool::new();
        let s1 = pool.from_slice(&[1, 2]);
        pool.freeze();
        let s2 = pool.push(s1, 3); // crosses the frozen/private border
        assert_eq!(pool.pop(s2), Some((3, s1)));
        assert_eq!(pool.depth(s2), 3);
        assert_eq!(pool.to_vec(s2), vec![1, 2, 3]);
        assert!(pool.is_top_prefix(s2, &[3, 2, 1]));
        assert_eq!(pool.pop_n(s2, 2), Some(pool.from_slice(&[1])));
    }

    #[test]
    fn export_import_round_trips_across_the_freeze_border() {
        let mut pool = StackPool::new();
        let a = pool.from_slice(&[1u16, 2, 3]);
        pool.freeze();
        let b = pool.push(a, 9); // private extension past the prefix
        let c = pool.from_slice(&[4]);
        let rebuilt = StackPool::import(pool.export()).expect("valid");
        assert_eq!(rebuilt.len(), pool.len());
        for s in [a, b, c] {
            assert_eq!(rebuilt.to_vec(s), pool.to_vec(s));
            assert_eq!(rebuilt.depth(s), pool.depth(s));
        }
        // Re-interning a known stack hits the same id in both pools.
        let mut rebuilt = rebuilt;
        assert_eq!(rebuilt.from_slice(&[1, 2, 3]), a);
    }

    #[test]
    fn import_rejects_malformed_pair_lists() {
        // Forward reference: pair 1 (id 1) naming parent 1 or later.
        assert!(StackPool::import(vec![(5u16, StackId::from_raw(1))]).is_none());
        assert!(StackPool::import(vec![(5u16, StackId::from_raw(7))]).is_none());
        // Duplicate (element, parent): hash-consing would collapse it
        // and shift every later id.
        let dup = vec![
            (5u16, StackId::EMPTY),
            (5u16, StackId::EMPTY),
            (6u16, StackId::from_raw(2)),
        ];
        assert!(StackPool::import(dup).is_none());
        // The empty export is a valid (empty) pool.
        let empty = StackPool::<u16>::import(std::iter::empty()).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn pop_n_behaviour() {
        let mut pool = StackPool::new();
        let s = pool.from_slice(&[1, 2, 3]);
        assert_eq!(pool.pop_n(s, 0), Some(s));
        assert_eq!(pool.pop_n(s, 2), Some(pool.from_slice(&[1])));
        assert_eq!(pool.pop_n(s, 3), Some(StackId::EMPTY));
        assert_eq!(pool.pop_n(s, 4), None);
    }

    proptest! {
        #[test]
        fn from_slice_to_vec_round_trips(elems in proptest::collection::vec(0u16..64, 0..24)) {
            let mut pool = StackPool::new();
            let s = pool.from_slice(&elems);
            prop_assert_eq!(pool.to_vec(s), elems.clone());
            prop_assert_eq!(pool.depth(s), elems.len());
        }

        #[test]
        fn interning_is_injective(
            a in proptest::collection::vec(0u16..8, 0..12),
            b in proptest::collection::vec(0u16..8, 0..12),
        ) {
            let mut pool = StackPool::new();
            let sa = pool.from_slice(&a);
            let sb = pool.from_slice(&b);
            prop_assert_eq!(sa == sb, a == b);
        }

        #[test]
        fn push_then_pop_is_identity(
            base in proptest::collection::vec(0u16..8, 0..12),
            elem in 0u16..8,
        ) {
            let mut pool = StackPool::new();
            let s = pool.from_slice(&base);
            let pushed = pool.push(s, elem);
            prop_assert_eq!(pool.pop(pushed), Some((elem, s)));
        }
    }
}
