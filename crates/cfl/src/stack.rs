//! Hash-consed persistent stacks.
//!
//! The demand-driven analyses carry two stacks through every traversal
//! step: the **field stack** (unmatched `load(f)` labels, Algorithm 3) and
//! the **context stack** (unmatched call-site parentheses, Algorithm 4).
//! Both are immutable and shared across millions of worklist entries, and
//! both serve as summary-cache key components, so they are interned: a
//! stack is a 4-byte [`StackId`], push/pop are O(1) hash-table operations,
//! and equality is id equality.

use std::hash::Hash;
use std::marker::PhantomData;

use crate::hash::FxHashMap;

/// An interned stack handle, branded by element type so field stacks and
/// context stacks cannot be mixed up.
///
/// Ids are only meaningful relative to the [`StackPool`] that produced
/// them. The empty stack is [`StackId::EMPTY`] in every pool.
pub struct StackId<E> {
    raw: u32,
    _marker: PhantomData<E>,
}

impl<E> StackId<E> {
    /// The empty stack (valid in every pool).
    pub const EMPTY: StackId<E> = StackId {
        raw: 0,
        _marker: PhantomData,
    };

    /// Raw interned index; 0 is the empty stack.
    #[inline]
    pub const fn as_raw(self) -> u32 {
        self.raw
    }

    /// Reconstructs a handle from a raw index (must come from the same
    /// pool).
    #[inline]
    pub const fn from_raw(raw: u32) -> Self {
        StackId {
            raw,
            _marker: PhantomData,
        }
    }

    /// `true` for the empty stack.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.raw == 0
    }
}

// Manual impls: derives would bound `E`, which is only a phantom brand.
impl<E> Copy for StackId<E> {}
impl<E> Clone for StackId<E> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E> PartialEq for StackId<E> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<E> Eq for StackId<E> {}
impl<E> PartialOrd for StackId<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for StackId<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.raw.cmp(&other.raw)
    }
}
impl<E> Hash for StackId<E> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}
impl<E> std::fmt::Debug for StackId<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stack{}", self.raw)
    }
}

/// Arena of hash-consed stacks over element type `E`.
///
/// # Examples
///
/// ```
/// use dynsum_cfl::{StackId, StackPool};
///
/// let mut pool: StackPool<u32> = StackPool::new();
/// let s = pool.push(StackId::EMPTY, 7);
/// let t = pool.push(s, 9);
/// assert_eq!(pool.peek(t), Some(9));
/// let (top, rest) = pool.pop(t).unwrap();
/// assert_eq!(top, 9);
/// assert_eq!(rest, s);
/// // Hash-consing: the same sequence yields the same id.
/// let s2 = pool.push(StackId::EMPTY, 7);
/// assert_eq!(s, s2);
/// ```
#[derive(Debug, Clone)]
pub struct StackPool<E> {
    /// `nodes[i]` backs `StackId(i + 1)`.
    nodes: Vec<(E, StackId<E>, u32)>,
    /// Interning table; push is one probe of this map. Keyed by dense
    /// in-tree ids, so the fast non-SipHash hasher is safe here.
    table: FxHashMap<(E, u32), StackId<E>>,
}

impl<E: Copy + Eq + Hash> StackPool<E> {
    /// Creates a pool containing only the empty stack.
    pub fn new() -> Self {
        StackPool {
            nodes: Vec::new(),
            table: FxHashMap::default(),
        }
    }

    /// Number of distinct non-empty stacks interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no non-empty stack has been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    #[inline]
    fn node(&self, s: StackId<E>) -> Option<&(E, StackId<E>, u32)> {
        if s.raw == 0 {
            None
        } else {
            Some(&self.nodes[(s.raw - 1) as usize])
        }
    }

    /// Pushes `elem`, returning the interned result.
    pub fn push(&mut self, s: StackId<E>, elem: E) -> StackId<E> {
        if let Some(&id) = self.table.get(&(elem, s.raw)) {
            return id;
        }
        let depth = self.depth(s) as u32 + 1;
        let id = StackId::from_raw(self.nodes.len() as u32 + 1);
        self.nodes.push((elem, s, depth));
        self.table.insert((elem, s.raw), id);
        id
    }

    /// Pops the top element, returning it with the remaining stack;
    /// `None` on the empty stack.
    #[inline]
    pub fn pop(&self, s: StackId<E>) -> Option<(E, StackId<E>)> {
        self.node(s).map(|&(e, parent, _)| (e, parent))
    }

    /// The top element, if any.
    #[inline]
    pub fn peek(&self, s: StackId<E>) -> Option<E> {
        self.node(s).map(|&(e, _, _)| e)
    }

    /// Number of elements in the stack.
    #[inline]
    pub fn depth(&self, s: StackId<E>) -> usize {
        self.node(s).map_or(0, |&(_, _, d)| d as usize)
    }

    /// Elements bottom-to-top (push order).
    pub fn to_vec(&self, s: StackId<E>) -> Vec<E> {
        let mut out = Vec::with_capacity(self.depth(s));
        let mut cur = s;
        while let Some((e, parent)) = self.pop(cur) {
            out.push(e);
            cur = parent;
        }
        out.reverse();
        out
    }

    /// Forgets every interned stack (the empty stack remains valid),
    /// keeping the backing allocations for reuse.
    ///
    /// Outstanding non-empty [`StackId`]s are invalidated. Engines use
    /// this to make pools **per-query scratch**: clearing at query start
    /// makes every interned id a deterministic function of that query
    /// alone, independent of what was interned by earlier queries — the
    /// property that lets parallel query batches return results
    /// byte-identical to sequential execution.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.table.clear();
    }

    /// Interns a stack from elements given bottom-to-top.
    pub fn from_slice(&mut self, elems: &[E]) -> StackId<E> {
        let mut s = StackId::EMPTY;
        for &e in elems {
            s = self.push(s, e);
        }
        s
    }

    /// `true` when `prefix` (read top-down) matches the topmost
    /// `depth(prefix)` elements of `s`. Used by STASUM when applying a
    /// relative summary to a concrete stack.
    pub fn is_top_prefix(&self, s: StackId<E>, prefix: &[E]) -> bool {
        let mut cur = s;
        for &want in prefix {
            match self.pop(cur) {
                Some((e, parent)) if e == want => cur = parent,
                _ => return false,
            }
        }
        true
    }

    /// Removes the topmost `n` elements; `None` if the stack is shorter.
    pub fn pop_n(&self, s: StackId<E>, n: usize) -> Option<StackId<E>> {
        let mut cur = s;
        for _ in 0..n {
            cur = self.pop(cur)?.1;
        }
        Some(cur)
    }
}

impl<E: Copy + Eq + Hash + Ord> StackPool<E> {
    /// Content-based total order on two stacks of this pool: by depth,
    /// then elementwise from the top. Unlike comparing raw [`StackId`]s
    /// (which reflect interning history), the result depends only on the
    /// stacks' contents — engines sort summary boundaries with this so
    /// traversal order, and with it the partial result of an over-budget
    /// query, is identical in every pool.
    pub fn cmp_stacks(&self, a: StackId<E>, b: StackId<E>) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if a == b {
            // Hash-consing: equal ids ⟺ equal contents.
            return Ordering::Equal;
        }
        let (da, db) = (self.depth(a), self.depth(b));
        if da != db {
            return da.cmp(&db);
        }
        let (mut x, mut y) = (a, b);
        while x != y {
            let (ex, px) = self.pop(x).expect("equal depth, not exhausted");
            let (ey, py) = self.pop(y).expect("equal depth, not exhausted");
            match ex.cmp(&ey) {
                Ordering::Equal => {
                    x = px;
                    y = py;
                }
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl<E: Copy + Eq + Hash> Default for StackPool<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stack_properties() {
        let pool: StackPool<u8> = StackPool::new();
        assert!(StackId::<u8>::EMPTY.is_empty());
        assert_eq!(pool.depth(StackId::EMPTY), 0);
        assert_eq!(pool.peek(StackId::EMPTY), None);
        assert_eq!(pool.pop(StackId::EMPTY), None);
        assert!(pool.to_vec(StackId::EMPTY).is_empty());
    }

    #[test]
    fn push_pop_round_trip() {
        let mut pool = StackPool::new();
        let s1 = pool.push(StackId::EMPTY, 'a');
        let s2 = pool.push(s1, 'b');
        assert_eq!(pool.depth(s2), 2);
        assert_eq!(pool.peek(s2), Some('b'));
        assert_eq!(pool.pop(s2), Some(('b', s1)));
        assert_eq!(pool.to_vec(s2), vec!['a', 'b']);
    }

    #[test]
    fn hash_consing_dedups() {
        let mut pool = StackPool::new();
        let a = pool.from_slice(&[1, 2, 3]);
        let b = pool.from_slice(&[1, 2, 3]);
        let c = pool.from_slice(&[1, 2]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(pool.len(), 3); // [1], [1,2], [1,2,3]
    }

    #[test]
    fn top_prefix_checks_topdown() {
        let mut pool = StackPool::new();
        let s = pool.from_slice(&[1, 2, 3]); // top = 3
        assert!(pool.is_top_prefix(s, &[]));
        assert!(pool.is_top_prefix(s, &[3]));
        assert!(pool.is_top_prefix(s, &[3, 2]));
        assert!(pool.is_top_prefix(s, &[3, 2, 1]));
        assert!(!pool.is_top_prefix(s, &[2]));
        assert!(!pool.is_top_prefix(s, &[3, 2, 1, 0]));
    }

    #[test]
    fn content_order_ignores_interning_history() {
        use std::cmp::Ordering;
        // Pool 1 interns [2,9] before [1,3]; pool 2 the other way round.
        let mut p1 = StackPool::new();
        let hi1 = p1.from_slice(&[2, 9]);
        let lo1 = p1.from_slice(&[1, 3]);
        let mut p2 = StackPool::new();
        let lo2 = p2.from_slice(&[1, 3]);
        let hi2 = p2.from_slice(&[2, 9]);
        // Raw ids disagree across pools; content order does not.
        assert!(hi1.as_raw() < lo1.as_raw());
        assert!(lo2.as_raw() < hi2.as_raw());
        assert_eq!(p1.cmp_stacks(lo1, hi1), Ordering::Less);
        assert_eq!(p2.cmp_stacks(lo2, hi2), Ordering::Less);
        // Depth dominates; equal ids are equal; top element decides.
        let short = p1.from_slice(&[9]);
        assert_eq!(p1.cmp_stacks(short, hi1), Ordering::Less);
        assert_eq!(p1.cmp_stacks(hi1, hi1), Ordering::Equal);
        let a = p1.from_slice(&[5, 1]);
        let b = p1.from_slice(&[4, 2]);
        assert_eq!(p1.cmp_stacks(a, b), Ordering::Less, "top 1 < top 2");
    }

    #[test]
    fn clear_resets_interning_deterministically() {
        let mut pool = StackPool::new();
        let a = pool.from_slice(&[7, 8, 9]);
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.depth(StackId::EMPTY), 0);
        // Interning the same sequence after clear yields the same ids as
        // a fresh pool would.
        let b = pool.from_slice(&[7, 8, 9]);
        assert_eq!(a, b);
        let mut fresh = StackPool::new();
        assert_eq!(fresh.from_slice(&[7, 8, 9]), b);
    }

    #[test]
    fn pop_n_behaviour() {
        let mut pool = StackPool::new();
        let s = pool.from_slice(&[1, 2, 3]);
        assert_eq!(pool.pop_n(s, 0), Some(s));
        assert_eq!(pool.pop_n(s, 2), Some(pool.from_slice(&[1])));
        assert_eq!(pool.pop_n(s, 3), Some(StackId::EMPTY));
        assert_eq!(pool.pop_n(s, 4), None);
    }

    proptest! {
        #[test]
        fn from_slice_to_vec_round_trips(elems in proptest::collection::vec(0u16..64, 0..24)) {
            let mut pool = StackPool::new();
            let s = pool.from_slice(&elems);
            prop_assert_eq!(pool.to_vec(s), elems.clone());
            prop_assert_eq!(pool.depth(s), elems.len());
        }

        #[test]
        fn interning_is_injective(
            a in proptest::collection::vec(0u16..8, 0..12),
            b in proptest::collection::vec(0u16..8, 0..12),
        ) {
            let mut pool = StackPool::new();
            let sa = pool.from_slice(&a);
            let sb = pool.from_slice(&b);
            prop_assert_eq!(sa == sb, a == b);
        }

        #[test]
        fn push_then_pop_is_identity(
            base in proptest::collection::vec(0u16..8, 0..12),
            elem in 0u16..8,
        ) {
            let mut pool = StackPool::new();
            let s = pool.from_slice(&base);
            let pushed = pool.push(s, elem);
            prop_assert_eq!(pool.pop(pushed), Some((elem, s)));
        }
    }
}
