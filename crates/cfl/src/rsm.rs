//! The recursive state machines of Figure 3.
//!
//! The paper formulates field-sensitivity as the CFL `L_FT` (productions
//! (2) and (3), §3.2) and context-sensitivity as the CFL `R_RP` (§3.3).
//! Operationally the analyses run the two RSMs of Figure 3 side by side:
//!
//! * the `pointsTo`/`alias` RSM has two states — `S1`, traversing a
//!   `flowsTo̅` path *backwards* along value flow, and `S2`, traversing a
//!   `flowsTo` path *forwards* — with the field stack tracking unmatched
//!   `load(f)` parentheses;
//! * the `R_RP` RSM pushes/pops call sites on the context stack at
//!   `entry_i`/`exit_i` edges, allowing partially balanced strings
//!   (a realizable path may start and end in different methods).
//!
//! This module defines the direction state shared by every engine and
//! documents the transition tables; the transitions themselves are
//! implemented by the engines in `dynsum-core`.

/// Direction state of the `pointsTo`/`alias` RSM (Figure 3(a)).
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// `S1`: walking a `flowsTo̅` path — backwards along value flow,
    /// computing `pointsTo` of the current node. Transitions (with the
    /// current field stack `f`):
    ///
    /// | incident edge (real orientation) | action |
    /// |----------------------------------|--------|
    /// | in-`new` `o → v`, `f = ∅`        | report object `o` |
    /// | in-`new` `o → v`, `f ≠ ∅`        | switch to `S2` at `o`'s defining variable (`new new̅`) |
    /// | in-`assign` `x → v`              | continue `S1` at `x` |
    /// | in-`load(g)` `b → v`             | push `g`, continue `S1` at base `b` |
    /// | in-global edge                   | boundary: leave the method (Algorithm 3 line 15) |
    S1,
    /// `S2`: walking a `flowsTo` path — forwards along value flow,
    /// chasing the aliases of a base variable. Transitions:
    ///
    /// | incident edge (real orientation) | action |
    /// |----------------------------------|--------|
    /// | out-`assign` `v → x`             | continue `S2` at `x` |
    /// | out-`load(g)` `v → t`, top = `g` | pop `g`, continue `S2` at target `t` |
    /// | out-`store(g)` `v → b`           | push `g`, switch to `S1` at base `b` |
    /// | in-`store(g)` `x → v`, top = `g` | pop `g`, switch to `S1` at value `x` |
    /// | out-global edge                  | boundary: leave the method (Algorithm 3 line 28) |
    S2,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn flip(self) -> Direction {
        match self {
            Direction::S1 => Direction::S2,
            Direction::S2 => Direction::S1,
        }
    }

    /// Short display name (`"S1"` / `"S2"`).
    pub fn name(self) -> &'static str {
        match self {
            Direction::S1 => "S1",
            Direction::S2 => "S2",
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involutive() {
        assert_eq!(Direction::S1.flip(), Direction::S2);
        assert_eq!(Direction::S2.flip(), Direction::S1);
        assert_eq!(Direction::S1.flip().flip(), Direction::S1);
    }

    #[test]
    fn names() {
        assert_eq!(Direction::S1.to_string(), "S1");
        assert_eq!(Direction::S2.to_string(), "S2");
    }

    #[test]
    fn ordering_is_stable() {
        assert!(Direction::S1 < Direction::S2);
    }
}
