//! Query and result types shared by all demand-driven engines.

use std::collections::BTreeSet;

use dynsum_pag::{CallSiteId, FieldId, ObjId};

use crate::hash::FxHashSet;
use crate::stack::StackId;

/// Interned field stack (unmatched `load(f)` labels).
pub type FieldStackId = StackId<FieldId>;

/// Interned context stack (unmatched call-site parentheses; the paper's
/// call stack `c`).
pub type CtxId = StackId<CallSiteId>;

/// A context-qualified points-to set: the result of
/// `pointsTo(v, c)` — pairs of abstract object and the calling context of
/// its allocation (the paper's heap abstraction, §3.3).
///
/// Engines with different memorization strategies can attach different —
/// equally sound — context representations to the same object, so
/// cross-engine precision comparisons use [`PointsToSet::objects`].
///
/// # Examples
///
/// ```
/// use dynsum_cfl::{CtxId, PointsToSet};
/// use dynsum_pag::ObjId;
///
/// let mut pts = PointsToSet::new();
/// pts.insert(ObjId::from_raw(3), CtxId::EMPTY);
/// pts.insert(ObjId::from_raw(3), CtxId::EMPTY);
/// assert_eq!(pts.len(), 1);
/// assert!(pts.contains_obj(ObjId::from_raw(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PointsToSet {
    // A hash set so the traversal-time dedup insert is O(1) with the
    // fast hasher; the ordered views below sort on demand (results are
    // consumed far less often than they are inserted into).
    items: FxHashSet<(ObjId, CtxId)>,
}

impl PointsToSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        PointsToSet {
            items: FxHashSet::default(),
        }
    }

    /// Inserts an `(object, allocation context)` pair; returns `true` if
    /// it was new.
    pub fn insert(&mut self, obj: ObjId, ctx: CtxId) -> bool {
        self.items.insert((obj, ctx))
    }

    /// Unions another set into this one.
    pub fn extend_from(&mut self, other: &PointsToSet) {
        self.items.extend(other.items.iter().copied());
    }

    /// Number of `(object, context)` pairs.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no object was found.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` if any pair mentions `obj`.
    pub fn contains_obj(&self, obj: ObjId) -> bool {
        self.items.iter().any(|&(o, _)| o == obj)
    }

    /// Iterates over `(object, context)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, CtxId)> + '_ {
        let mut pairs: Vec<(ObjId, CtxId)> = self.items.iter().copied().collect();
        pairs.sort_unstable();
        pairs.into_iter()
    }

    /// The deduplicated object set, independent of heap contexts — the
    /// basis for cross-engine precision comparison.
    pub fn objects(&self) -> BTreeSet<ObjId> {
        self.items.iter().map(|&(o, _)| o).collect()
    }
}

impl FromIterator<(ObjId, CtxId)> for PointsToSet {
    fn from_iter<I: IntoIterator<Item = (ObjId, CtxId)>>(iter: I) -> Self {
        PointsToSet {
            items: iter.into_iter().collect(),
        }
    }
}

impl Extend<(ObjId, CtxId)> for PointsToSet {
    fn extend<I: IntoIterator<Item = (ObjId, CtxId)>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

/// Per-query work counters, the deterministic performance metric used by
/// the benchmark harness alongside wall-clock time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// PAG edge traversals (the paper's budget unit).
    pub edges_traversed: u64,
    /// Summary-cache hits (DYNSUM) or memo hits (REFINEPTS).
    pub cache_hits: u64,
    /// Summary-cache misses that triggered a fresh PPTA run.
    pub cache_misses: u64,
    /// Worklist items processed (Algorithm 4) or recursive calls made
    /// (Algorithm 1).
    pub steps: u64,
    /// Refinement iterations executed (REFINEPTS only).
    pub refinement_iterations: u64,
}

impl QueryStats {
    /// Accumulates another query's counters into this one.
    pub fn absorb(&mut self, other: &QueryStats) {
        self.edges_traversed += other.edges_traversed;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.steps += other.steps;
        self.refinement_iterations += other.refinement_iterations;
    }
}

/// The outcome of one demand query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// The points-to set computed so far. Complete when
    /// [`resolved`](Self::resolved) is `true`; a partial under-approximation
    /// otherwise (clients must then answer conservatively).
    pub pts: PointsToSet,
    /// `true` when the query finished within budget; `false` when the
    /// traversal budget or a depth cap was exhausted.
    pub resolved: bool,
    /// Work counters for this query.
    pub stats: QueryStats,
}

impl QueryResult {
    /// A resolved result with the given set and counters.
    pub fn resolved(pts: PointsToSet, stats: QueryStats) -> Self {
        QueryResult {
            pts,
            resolved: true,
            stats,
        }
    }

    /// An over-budget result carrying whatever was computed before the
    /// budget tripped.
    pub fn over_budget(pts: PointsToSet, stats: QueryStats) -> Self {
        QueryResult {
            pts,
            resolved: false,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(i: u32) -> ObjId {
        ObjId::from_raw(i)
    }

    #[test]
    fn points_to_set_dedups_and_sorts() {
        let mut s = PointsToSet::new();
        assert!(s.insert(obj(2), CtxId::EMPTY));
        assert!(s.insert(obj(1), CtxId::EMPTY));
        assert!(!s.insert(obj(2), CtxId::EMPTY));
        let objs: Vec<_> = s.iter().map(|(o, _)| o).collect();
        assert_eq!(objs, vec![obj(1), obj(2)]);
        assert_eq!(s.objects().len(), 2);
    }

    #[test]
    fn same_object_different_contexts_kept() {
        let mut s = PointsToSet::new();
        s.insert(obj(1), CtxId::EMPTY);
        s.insert(obj(1), CtxId::from_raw(5));
        assert_eq!(s.len(), 2);
        assert_eq!(s.objects().len(), 1);
    }

    #[test]
    fn extend_from_unions() {
        let mut a = PointsToSet::new();
        a.insert(obj(1), CtxId::EMPTY);
        let mut b = PointsToSet::new();
        b.insert(obj(2), CtxId::EMPTY);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn stats_absorb_adds() {
        let mut a = QueryStats {
            edges_traversed: 1,
            cache_hits: 2,
            cache_misses: 3,
            steps: 4,
            refinement_iterations: 5,
        };
        a.absorb(&a.clone());
        assert_eq!(a.edges_traversed, 2);
        assert_eq!(a.refinement_iterations, 10);
    }

    #[test]
    fn query_result_constructors() {
        let r = QueryResult::resolved(PointsToSet::new(), QueryStats::default());
        assert!(r.resolved);
        let r = QueryResult::over_budget(PointsToSet::new(), QueryStats::default());
        assert!(!r.resolved);
    }
}
