//! Query and result types shared by all demand-driven engines.

use std::collections::BTreeSet;

use dynsum_pag::{CallSiteId, FieldId, ObjId};

use crate::hash::FxHashSet;
use crate::stack::StackId;

/// One unmatched field parenthesis, tagged with the grammar production
/// that pushed it (Sridharan–Bodík, Figure 3(a)).
///
/// The balanced-parentheses grammar has **two** kinds of field
/// parentheses, and they discharge at different productions:
///
/// * [`Get`](FieldFrame::Get) — an unmatched `load(f)̅` label: the
///   search walked a load *backwards* (it needs the contents of
///   `base.f`). It may only be discharged by an **in-store** `store(f)`
///   on an aliased base — the stored value feeds the pending field.
/// * [`Put`](FieldFrame::Put) — an unmatched `store(f)` label: the
///   search walked a store *forwards* (the tracked value was stored
///   into `base.f`; the `store(f) alias load(f)` detour). It may only
///   be discharged by an **out-load** `load(f)` on an aliased base.
///
/// Popping a frame at the wrong production fabricates a store/load
/// pairing no realizable path witnesses — e.g. a field with loads but
/// no stores would "match" a load against another load — so every
/// engine's pop rules compare the whole frame, not just the field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FieldFrame {
    /// Pushed walking a load backwards; popped at an in-store.
    Get(FieldId),
    /// Pushed walking a store forwards; popped at an out-load.
    Put(FieldId),
}

impl FieldFrame {
    /// The field this parenthesis is labelled with.
    #[inline]
    pub fn field(self) -> FieldId {
        match self {
            FieldFrame::Get(f) | FieldFrame::Put(f) => f,
        }
    }
}

/// Interned field stack (unmatched field parentheses, tagged by
/// provenance — see [`FieldFrame`]).
pub type FieldStackId = StackId<FieldFrame>;

/// Interned context stack (unmatched call-site parentheses; the paper's
/// call stack `c`).
pub type CtxId = StackId<CallSiteId>;

/// A context-qualified points-to set: the result of
/// `pointsTo(v, c)` — pairs of abstract object and the calling context of
/// its allocation (the paper's heap abstraction, §3.3).
///
/// Engines with different memorization strategies can attach different —
/// equally sound — context representations to the same object, so
/// cross-engine precision comparisons use [`PointsToSet::objects`].
///
/// # Examples
///
/// ```
/// use dynsum_cfl::{CtxId, PointsToSet};
/// use dynsum_pag::ObjId;
///
/// let mut pts = PointsToSet::new();
/// pts.insert(ObjId::from_raw(3), CtxId::EMPTY);
/// pts.insert(ObjId::from_raw(3), CtxId::EMPTY);
/// assert_eq!(pts.len(), 1);
/// assert!(pts.contains_obj(ObjId::from_raw(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PointsToSet {
    // A hash set so the traversal-time dedup insert is O(1) with the
    // fast hasher; the ordered views below sort on demand (results are
    // consumed far less often than they are inserted into).
    items: FxHashSet<(ObjId, CtxId)>,
}

impl PointsToSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        PointsToSet {
            items: FxHashSet::default(),
        }
    }

    /// Inserts an `(object, allocation context)` pair; returns `true` if
    /// it was new.
    pub fn insert(&mut self, obj: ObjId, ctx: CtxId) -> bool {
        self.items.insert((obj, ctx))
    }

    /// Unions another set into this one.
    pub fn extend_from(&mut self, other: &PointsToSet) {
        self.items.extend(other.items.iter().copied());
    }

    /// Number of `(object, context)` pairs.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no object was found.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` if any pair mentions `obj`.
    pub fn contains_obj(&self, obj: ObjId) -> bool {
        self.items.iter().any(|&(o, _)| o == obj)
    }

    /// Iterates over `(object, context)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, CtxId)> + '_ {
        let mut pairs: Vec<(ObjId, CtxId)> = self.items.iter().copied().collect();
        pairs.sort_unstable();
        pairs.into_iter()
    }

    /// The deduplicated object set, independent of heap contexts — the
    /// basis for cross-engine precision comparison.
    pub fn objects(&self) -> BTreeSet<ObjId> {
        self.items.iter().map(|&(o, _)| o).collect()
    }

    /// Order-independent [`StableHasher`](crate::StableHasher) digest of
    /// the full `(object, context)` content. Two sets digest equal iff
    /// they are equal, regardless of insertion order, platform or hash
    /// seed — the byte-identity check the differential fuzzer and the
    /// parallel-batch tests compare across thread counts.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut h = crate::StableHasher::new();
        h.write_u64(self.items.len() as u64);
        for (o, c) in self.iter() {
            h.write_u32(o.as_raw());
            h.write_u32(c.as_raw());
        }
        h.finish()
    }
}

impl FromIterator<(ObjId, CtxId)> for PointsToSet {
    fn from_iter<I: IntoIterator<Item = (ObjId, CtxId)>>(iter: I) -> Self {
        PointsToSet {
            items: iter.into_iter().collect(),
        }
    }
}

impl Extend<(ObjId, CtxId)> for PointsToSet {
    fn extend<I: IntoIterator<Item = (ObjId, CtxId)>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

/// Per-query work counters, the deterministic performance metric used by
/// the benchmark harness alongside wall-clock time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// PAG edge traversals (the paper's budget unit).
    pub edges_traversed: u64,
    /// Summary-cache hits (DYNSUM) or memo hits (REFINEPTS).
    pub cache_hits: u64,
    /// Summary-cache misses that triggered a fresh PPTA run.
    pub cache_misses: u64,
    /// Worklist items processed (Algorithm 4) or recursive calls made
    /// (Algorithm 1).
    pub steps: u64,
    /// Refinement iterations executed (REFINEPTS only).
    pub refinement_iterations: u64,
}

impl QueryStats {
    /// Accumulates another query's counters into this one.
    pub fn absorb(&mut self, other: &QueryStats) {
        self.edges_traversed += other.edges_traversed;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.steps += other.steps;
        self.refinement_iterations += other.refinement_iterations;
    }
}

/// How a demand query ended.
///
/// Every non-[`Resolved`](Outcome::Resolved) outcome carries a **sound
/// partial** points-to set: the traversal unwound on the budget-abort
/// channel, which only ever under-approximates. Clients must answer
/// conservatively for all of them; the tag says *why* the query stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Outcome {
    /// The query finished: the points-to set is complete.
    Resolved,
    /// The edge-traversal budget (or a depth cap) was exhausted.
    OverBudget,
    /// A shared [`CancelToken`](crate::CancelToken) was cancelled
    /// mid-query.
    Cancelled,
    /// The query's deadline passed mid-query.
    DeadlineExceeded,
    /// The query panicked and was isolated by the batch runner; the
    /// points-to set is empty (nothing from the poisoned evaluation is
    /// trusted).
    Panicked,
}

impl Outcome {
    /// `true` only for [`Resolved`](Outcome::Resolved).
    #[inline]
    pub fn is_resolved(self) -> bool {
        matches!(self, Outcome::Resolved)
    }

    /// The outcome for a query interrupted with `kind`.
    pub fn from_interrupt(kind: crate::Interrupt) -> Self {
        match kind {
            crate::Interrupt::Budget => Outcome::OverBudget,
            crate::Interrupt::Cancelled => Outcome::Cancelled,
            crate::Interrupt::Deadline => Outcome::DeadlineExceeded,
        }
    }

    /// Stable one-byte tag written into [`QueryResult::fingerprint`].
    ///
    /// `OverBudget = 0` and `Resolved = 1` reproduce the historical
    /// `u8::from(resolved)` encoding, so fingerprints of uninterrupted
    /// queries are unchanged across this extension (pinned by test).
    pub fn tag(self) -> u8 {
        match self {
            Outcome::OverBudget => 0,
            Outcome::Resolved => 1,
            Outcome::Cancelled => 2,
            Outcome::DeadlineExceeded => 3,
            Outcome::Panicked => 4,
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Outcome::Resolved => "resolved",
            Outcome::OverBudget => "over-budget",
            Outcome::Cancelled => "cancelled",
            Outcome::DeadlineExceeded => "deadline-exceeded",
            Outcome::Panicked => "panicked",
        };
        f.write_str(s)
    }
}

/// The outcome of one demand query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// The points-to set computed so far. Complete when
    /// [`resolved`](Self::resolved) is `true`; a partial under-approximation
    /// otherwise (clients must then answer conservatively).
    pub pts: PointsToSet,
    /// `true` when the query finished within budget; `false` when the
    /// traversal budget or a depth cap was exhausted, the query was
    /// cancelled, its deadline passed, or it panicked. Kept in sync with
    /// [`outcome`](Self::outcome) by the constructors — this is the flag
    /// conservative clients branch on.
    pub resolved: bool,
    /// Why the query ended ([`Outcome`]); refines
    /// [`resolved`](Self::resolved).
    pub outcome: Outcome,
    /// Work counters for this query.
    pub stats: QueryStats,
}

impl QueryResult {
    /// A resolved result with the given set and counters.
    pub fn resolved(pts: PointsToSet, stats: QueryStats) -> Self {
        QueryResult {
            pts,
            resolved: true,
            outcome: Outcome::Resolved,
            stats,
        }
    }

    /// An over-budget result carrying whatever was computed before the
    /// budget tripped.
    pub fn over_budget(pts: PointsToSet, stats: QueryStats) -> Self {
        QueryResult {
            pts,
            resolved: false,
            outcome: Outcome::OverBudget,
            stats,
        }
    }

    /// A result for a query interrupted with `kind`, carrying the sound
    /// partial set computed before the trip. `Interrupt::Budget` yields
    /// exactly [`over_budget`](Self::over_budget).
    pub fn interrupted(pts: PointsToSet, stats: QueryStats, kind: crate::Interrupt) -> Self {
        QueryResult {
            pts,
            resolved: false,
            outcome: Outcome::from_interrupt(kind),
            stats,
        }
    }

    /// The result recorded for a query whose evaluation panicked and was
    /// isolated by the batch runner: an empty set (nothing from the
    /// poisoned evaluation is trusted), which is still a sound
    /// under-approximation for conservative clients.
    pub fn panicked() -> Self {
        QueryResult {
            pts: PointsToSet::new(),
            resolved: false,
            outcome: Outcome::Panicked,
            stats: QueryStats::default(),
        }
    }

    /// Stable digest of the *answer* — the outcome tag plus the full
    /// points-to content ([`PointsToSet::fingerprint`]) — excluding the
    /// work counters, which measure effort rather than meaning.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut h = crate::StableHasher::new();
        h.write_u8(self.outcome.tag());
        h.write_u64(self.pts.fingerprint());
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(i: u32) -> ObjId {
        ObjId::from_raw(i)
    }

    #[test]
    fn points_to_set_dedups_and_sorts() {
        let mut s = PointsToSet::new();
        assert!(s.insert(obj(2), CtxId::EMPTY));
        assert!(s.insert(obj(1), CtxId::EMPTY));
        assert!(!s.insert(obj(2), CtxId::EMPTY));
        let objs: Vec<_> = s.iter().map(|(o, _)| o).collect();
        assert_eq!(objs, vec![obj(1), obj(2)]);
        assert_eq!(s.objects().len(), 2);
    }

    #[test]
    fn same_object_different_contexts_kept() {
        let mut s = PointsToSet::new();
        s.insert(obj(1), CtxId::EMPTY);
        s.insert(obj(1), CtxId::from_raw(5));
        assert_eq!(s.len(), 2);
        assert_eq!(s.objects().len(), 1);
    }

    #[test]
    fn extend_from_unions() {
        let mut a = PointsToSet::new();
        a.insert(obj(1), CtxId::EMPTY);
        let mut b = PointsToSet::new();
        b.insert(obj(2), CtxId::EMPTY);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn stats_absorb_adds() {
        let mut a = QueryStats {
            edges_traversed: 1,
            cache_hits: 2,
            cache_misses: 3,
            steps: 4,
            refinement_iterations: 5,
        };
        a.absorb(&a.clone());
        assert_eq!(a.edges_traversed, 2);
        assert_eq!(a.refinement_iterations, 10);
    }

    #[test]
    fn query_result_constructors() {
        let r = QueryResult::resolved(PointsToSet::new(), QueryStats::default());
        assert!(r.resolved);
        assert_eq!(r.outcome, Outcome::Resolved);
        let r = QueryResult::over_budget(PointsToSet::new(), QueryStats::default());
        assert!(!r.resolved);
        assert_eq!(r.outcome, Outcome::OverBudget);
        let r = QueryResult::panicked();
        assert!(!r.resolved && r.pts.is_empty());
        assert_eq!(r.outcome, Outcome::Panicked);
    }

    #[test]
    fn interrupted_budget_is_exactly_over_budget() {
        use crate::Interrupt;
        let mut pts = PointsToSet::new();
        pts.insert(obj(9), CtxId::EMPTY);
        let a = QueryResult::over_budget(pts.clone(), QueryStats::default());
        let b = QueryResult::interrupted(pts.clone(), QueryStats::default(), Interrupt::Budget);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // The other interrupt kinds are distinguishable in the digest.
        let c = QueryResult::interrupted(pts.clone(), QueryStats::default(), Interrupt::Cancelled);
        let d = QueryResult::interrupted(pts, QueryStats::default(), Interrupt::Deadline);
        assert!(!c.resolved && !d.resolved);
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(c.fingerprint(), d.fingerprint());
    }

    #[test]
    fn outcome_tags_preserve_the_historical_encoding() {
        // Fingerprints of uninterrupted queries must not change across
        // the Outcome extension: OverBudget/Resolved reproduce the old
        // `u8::from(resolved)` values, and every tag is distinct.
        assert_eq!(Outcome::OverBudget.tag(), 0);
        assert_eq!(Outcome::Resolved.tag(), 1);
        let tags: std::collections::BTreeSet<u8> = [
            Outcome::Resolved,
            Outcome::OverBudget,
            Outcome::Cancelled,
            Outcome::DeadlineExceeded,
            Outcome::Panicked,
        ]
        .into_iter()
        .map(Outcome::tag)
        .collect();
        assert_eq!(tags.len(), 5);
    }

    #[test]
    fn fingerprint_is_insertion_order_independent() {
        let mut a = PointsToSet::new();
        a.insert(obj(1), CtxId::EMPTY);
        a.insert(obj(2), CtxId::from_raw(7));
        let mut b = PointsToSet::new();
        b.insert(obj(2), CtxId::from_raw(7));
        b.insert(obj(1), CtxId::EMPTY);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.insert(obj(3), CtxId::EMPTY);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn result_fingerprint_separates_resolution_not_stats() {
        let mut pts = PointsToSet::new();
        pts.insert(obj(4), CtxId::EMPTY);
        let resolved = QueryResult::resolved(pts.clone(), QueryStats::default());
        let partial = QueryResult::over_budget(pts.clone(), QueryStats::default());
        assert_ne!(resolved.fingerprint(), partial.fingerprint());
        let expensive = QueryResult::resolved(
            pts,
            QueryStats {
                edges_traversed: 1_000_000,
                ..QueryStats::default()
            },
        );
        assert_eq!(resolved.fingerprint(), expensive.fingerprint());
    }
}
